#!/usr/bin/env python3
"""The SL6 migration campaign of the HERA experiments.

Reproduces the situation described in section 3.3 of the paper: the HERA
experiments (ZEUS, H1, HERMES) run their validation suites on all five
sp-system configurations while migrating from SL5 to SL6/64bit.  The example

* validates the three experiments everywhere,
* prints the figure-3 style summary matrix,
* shows the regression reports and diagnoses for the failing SL6 runs,
* opens intervention tickets routed to the host IT department or the
  experiment, and finally
* plans the next migration (SL7 + ROOT 6, the "next challenge").

Run with::

    python examples/sl6_migration_campaign.py
"""

from __future__ import annotations

from repro import SPSystem
from repro.environment.configuration import next_generation_configuration
from repro.experiments import build_hera_experiments
from repro.migration.planner import MigrationPlanner
from repro.reporting.summary import ValidationSummaryBuilder
from repro.scheduler import CampaignSpec


def main() -> None:
    system = SPSystem()
    system.provision_standard_images()
    experiments = build_hera_experiments(scale=0.2)
    for experiment in experiments:
        system.register_experiment(experiment)
        print(
            f"registered {experiment.name}: DPHEP level "
            f"{int(experiment.preservation_level)}, {experiment.total_test_count()} tests"
        )

    print("\nValidating every experiment on every configuration...")
    campaign = system.submit(CampaignSpec(workers=2)).result()
    all_results = campaign.by_experiment()
    runs = [result.run for results in all_results.values() for result in results]

    print("\n" + "=" * 72)
    print("Figure-3 style summary matrix")
    print("=" * 72)
    matrix = ValidationSummaryBuilder().from_runs(runs)
    print(matrix.render_text())

    print("\n" + "=" * 72)
    print("Problems found during the SL6/64bit migration")
    print("=" * 72)
    for experiment_name, results in sorted(all_results.items()):
        for result in results:
            if result.successful or result.run.configuration_key != "SL6_64bit_gcc4.4":
                continue
            print(f"\n{experiment_name} on {result.run.configuration_key}:")
            print(f"  regression report: {result.regression_report.summary()}")
            for name in result.regression_report.regression_names()[:5]:
                print(f"    regressed test: {name}")
            print(f"  diagnosis by category: {result.diagnosis.by_category()}")
            for ticket in result.tickets[:5]:
                print(f"  ticket {ticket.ticket_id} -> {ticket.party.value}: {ticket.description}")

    print("\n" + "=" * 72)
    print("Open intervention tickets by responsible party")
    print("=" * 72)
    for party in ("host IT department", "experiment"):
        tickets = [
            ticket for ticket in system.interventions.open_tickets()
            if ticket.party.value == party
        ]
        print(f"  {party}: {len(tickets)} open ticket(s)")

    print("\n" + "=" * 72)
    print("Planning the next challenge: SL7 with ROOT 6")
    print("=" * 72)
    sl7 = next_generation_configuration()
    planner = MigrationPlanner()
    for experiment in experiments:
        plan = planner.plan(
            experiment, system.configuration("SL5_64bit_gcc4.4"), sl7
        )
        print(
            f"  {experiment.name}: {len(plan.items)} item(s) to fix, "
            f"predicted pass fraction {plan.predicted_pass_fraction:.0%}, "
            f"estimated effort {plan.total_effort_person_weeks:.1f} person-weeks"
        )
        for item in plan.ordered_items()[:3]:
            print(
                f"      {item.item_type} {item.name}: {', '.join(item.categories)} "
                f"(blocks {item.blocking} item(s))"
            )

    print(f"\nTotal validation runs recorded: {system.total_runs()}")


if __name__ == "__main__":
    main()
