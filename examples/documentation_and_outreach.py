#!/usr/bin/env python3
"""Levels 1 and 2: documentation archive and simplified outreach data.

Most of the sp-system targets the technical preservation levels 3 and 4, but
Table 1 of the paper also defines level 1 (additional documentation, for
publication-related info search) and level 2 (data in a simplified format,
for outreach and simple training analyses).  This example exercises both:

1. the HERA documentation corpora are archived and searched, and each
   experiment's level-1 completeness is assessed;
2. an H1 micro-DST produced by the full analysis chain is exported into the
   simplified outreach format and a "training analysis" (plain event counting
   in Q² bins, no experiment software needed) is run on it.

Run with::

    python examples/documentation_and_outreach.py
"""

from __future__ import annotations

from repro.hepdata.dst import DSTProducer, MicroDSTProducer
from repro.hepdata.generator import GeneratorSettings, MonteCarloGenerator
from repro.hepdata.reconstruction import EventReconstruction
from repro.hepdata.simulation import DetectorSimulation, detector_for_experiment
from repro.preservation.documentation import (
    DocumentationArchive,
    default_hera_documentation,
)
from repro.preservation.outreach import SimplifiedDatasetExporter, run_training_analysis
from repro.storage.common_storage import CommonStorage


def main() -> None:
    storage = CommonStorage()

    # ------------------------------------------------------------------ level 1
    print("Level 1: documentation archive")
    print("=" * 60)
    archive = DocumentationArchive(storage)
    for item in default_hera_documentation():
        archive.archive(item)
    print(f"archived {len(archive)} documents for the HERA experiments\n")

    for experiment in ("H1", "ZEUS", "HERMES"):
        report = archive.level1_report(experiment)
        status = "complete" if report.complete else f"missing {report.missing_categories}"
        print(f"  {experiment}: {report.n_documents} documents, level-1 coverage {status}")

    print("\nPublication related info search (the level-1 use case):")
    for query in ("cross section", "calibration", "spectrometer"):
        matches = archive.search(query)
        print(f"  query {query!r}: {len(matches)} hit(s)")
        for item in matches:
            print(f"    [{item.experiment}] {item.title} ({item.year})")

    # ------------------------------------------------------------------ level 2
    print("\nLevel 2: simplified data format for outreach")
    print("=" * 60)
    print("producing an analysis-level micro-DST with the full H1 toy chain...")
    generator = MonteCarloGenerator(GeneratorSettings(process="nc_dis"))
    record = generator.generate(300, seed=2013)
    simulated = DetectorSimulation(detector_for_experiment("H1")).simulate(record, seed=2014)
    reconstructed = EventReconstruction().reconstruct(simulated)
    micro_dst = MicroDSTProducer().produce(DSTProducer().produce(reconstructed))
    print(f"  micro-DST with {len(micro_dst)} events")

    exporter = SimplifiedDatasetExporter(storage)
    dataset = exporter.export(
        "H1", "open-data-2013", micro_dst,
        provenance="toy nc_dis sample, full simulation and reconstruction chain",
    )
    print(f"  exported simplified dataset {dataset.name!r} with {len(dataset)} rows")
    print("  schema:")
    for name, unit, description in dataset.schema:
        unit_text = f" [{unit}]" if unit else ""
        print(f"    {name}{unit_text}: {description}")

    print("\nSimple training analysis on the simplified data (no experiment software):")
    result = run_training_analysis(dataset)
    print(f"  events analysed:        {result.n_events}")
    print(f"  mean charged multiplicity: {result.mean_multiplicity:.1f}")
    print(f"  DIS fraction (Q2 > 4 GeV2): {result.dis_fraction:.0%}")
    print("  events per Q2 bin:")
    for label, count in result.events_per_q2_bin.items():
        bar = "#" * max(1, count // 2) if count else ""
        print(f"    Q2 {label:>14}: {count:4d} {bar}")

    print(f"\ncommon storage now holds {storage.total_documents()} documents "
          "(documentation + outreach datasets)")


if __name__ == "__main__":
    main()
