#!/usr/bin/env python3
"""A parallel validation campaign over the simulated sp-system worker pool.

The regular operation of the sp-system validates every preserved experiment
on every preserved environment.  This example drives that matrix through the
campaign scheduler instead of cell-by-cell ``validate`` calls: the
(experiments x configurations x rounds) matrix is expanded into a job DAG,
dispatched over four simulated client machines, and the content-hash build
cache replays every identical package build of the second round.  The
scientific output — run documents and catalogue records — is bit-identical
to the sequential path; only the campaign's wall-clock story changes.

Run with::

    python examples/parallel_campaign.py [output-directory]
"""

from __future__ import annotations

import sys

from repro import SPSystem
from repro.core.runner import RunnerSettings
from repro.experiments import build_hera_experiments
from repro.reporting.export import catalog_to_rows, rows_to_text
from repro.reporting.summary import ValidationSummaryBuilder


def main() -> None:
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    for experiment in build_hera_experiments(scale=0.15):
        system.register_experiment(experiment)
    print(f"provisioned {len(system.configurations())} configurations, "
          f"{len(system.experiments())} experiments")

    print("\nRunning a 2-round campaign over 4 simulated workers...")
    campaign = system.run_campaign(workers=4, rounds=2)
    print(f"  {campaign.n_cells} matrix cells, {len(campaign.dag)} scheduled tasks")
    print(f"  simulated sequential time: {campaign.schedule.sequential_seconds:,.0f} s")
    print(f"  simulated pooled makespan: {campaign.schedule.makespan_seconds:,.0f} s "
          f"({campaign.schedule.speedup:.2f}x speedup)")
    print(f"  build cache: {campaign.cache_statistics.hits} hits, "
          f"{campaign.cache_statistics.misses} misses "
          f"({campaign.cache_statistics.hit_rate:.0%} hit rate)")

    print("\n" + campaign.render_text())

    matrix = ValidationSummaryBuilder().from_campaign(campaign)
    print("\n" + matrix.render_text())

    print(f"\nRun catalogue now holds {system.total_runs()} validation runs:")
    rows = catalog_to_rows(system.catalog)
    print(rows_to_text(
        rows[:10],
        columns=["run_id", "experiment", "configuration", "overall_status"],
    ))
    if len(rows) > 10:
        print(f"  ... and {len(rows) - 10} more")

    if len(sys.argv) > 1:
        output_directory = sys.argv[1]
        written = system.storage.persist(output_directory)
        print(f"\npersisted {len(written)} storage documents below {output_directory}")


if __name__ == "__main__":
    main()
