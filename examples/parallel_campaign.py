#!/usr/bin/env python3
"""A parallel validation campaign through the unified execution API.

The regular operation of the sp-system validates every preserved experiment
on every preserved environment.  This example describes that matrix as a
:class:`~repro.scheduler.spec.CampaignSpec` request object and submits it to
the system: the (experiments x configurations x rounds) matrix is expanded
into a job DAG, dispatched over four client machines, and the content-hash
build cache replays every identical package build of the second round.  The
scientific output — run documents and catalogue records — is bit-identical
to the sequential path; only the campaign's wall-clock story changes.

The second half demonstrates the pluggable execution backends and the
cross-campaign features: the same spec (serialised to JSON and back —
exactly what ``campaign --spec file.json`` does) is replayed on the real
wall-clock backends — threads (genuine ``BuildTask`` re-compilations on OS
threads), processes (builds pickled to a child-process pool and
digest-checked on return) and sharded (cells partitioned over worker
processes whose private build-cache journals are merged back into the
parent cache) — two experiments pinning the same external
packages share builds through the experiment-agnostic content-addressed
cache keys and warm-start each other across installations via the
append-only ``buildcache`` journal, and the same campaign is scheduled
under each pool policy to compare the dispatch orders.

Run with::

    python examples/parallel_campaign.py [output-directory]
"""

from __future__ import annotations

import sys

from repro import SPSystem
from repro.core.runner import RunnerSettings
from repro.experiments import (
    build_hera_experiments,
    build_hermes_experiment,
    build_zeus_experiment,
    shared_external_packages,
)
from repro.reporting.export import catalog_to_rows, rows_to_text
from repro.reporting.summary import ValidationSummaryBuilder
from repro.scheduler import BuildCache, SCHEDULING_POLICIES, CampaignSpec


def _fresh_system() -> SPSystem:
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    # shared_externals: every experiment pins the same external products
    # (CERNLIB, the ROOT-like toolkit, ...), so the campaign compiles each
    # of them once for all three experiments.
    for experiment in build_hera_experiments(scale=0.15, shared_externals=True):
        system.register_experiment(experiment)
    return system


def main() -> None:
    system = _fresh_system()
    print(f"provisioned {len(system.configurations())} configurations, "
          f"{len(system.experiments())} experiments")

    spec = CampaignSpec(workers=4, rounds=2, description="parallel campaign demo")
    print("\nSubmitting a 2-round campaign spec over 4 simulated workers...")
    handle = system.submit(spec)
    campaign = handle.result()
    print(f"  {handle.campaign_id}: {handle.status}, "
          f"{handle.cells_completed}/{handle.cells_total} matrix cells, "
          f"{len(campaign.dag)} scheduled tasks")
    print(f"  simulated sequential time: {campaign.schedule.sequential_seconds:,.0f} s")
    print(f"  simulated pooled makespan: {campaign.schedule.makespan_seconds:,.0f} s "
          f"({campaign.schedule.speedup:.2f}x speedup)")
    print(f"  build cache: {campaign.cache_statistics.hits} hits, "
          f"{campaign.cache_statistics.misses} misses "
          f"({campaign.cache_statistics.hit_rate:.0%} hit rate)")
    print(f"  shared across experiments: "
          f"{campaign.cache_statistics.shared_hits} hits donated "
          f"({dict(sorted(campaign.cache_statistics.donated_by_experiment.items()))})")

    print("\n" + campaign.render_text())

    matrix = ValidationSummaryBuilder().from_campaign(campaign)
    print("\n" + matrix.render_text())

    print(f"\nRun catalogue now holds {system.total_runs()} validation runs:")
    rows = catalog_to_rows(system.catalog)
    print(rows_to_text(
        rows[:10],
        columns=["run_id", "experiment", "configuration", "overall_status"],
    ))
    if len(rows) > 10:
        print(f"  ... and {len(rows) - 10} more")

    # -- simulated vs threads: the same spec on the real executor -------------
    print("\nReplaying the identical spec on the wall-clock thread backend...")
    # to_dict()/from_dict() is the same round trip `campaign --spec` uses.
    threaded_spec = CampaignSpec.from_dict(
        dict(spec.to_dict(), backend="threads")
    )
    threaded_system = _fresh_system()
    threaded = threaded_system.submit(threaded_spec).result()
    identical = (
        [run.to_document() for run in threaded.runs()]
        == [run.to_document() for run in campaign.runs()]
    )
    print(f"  backend {threaded.schedule.backend!r}: "
          f"{len(threaded.schedule.assignments)} tasks really executed on "
          f"{threaded.schedule.total_slots} threads in "
          f"{threaded.schedule.makespan_seconds:.3f} wall-clock seconds "
          f"(peak concurrency {threaded.schedule.peak_concurrent_tasks})")
    print(f"  run documents identical to the simulated backend: {identical}")

    # -- processes and shards: builds crossing the process boundary -----------
    print("\nReplaying the identical spec on the process-pool backend "
          "(builds pickled to child processes)...")
    process_spec = CampaignSpec.from_dict(
        dict(spec.to_dict(), backend="processes")
    )
    process_system = _fresh_system()
    pooled = process_system.submit(process_spec).result()
    identical = (
        [run.to_document() for run in pooled.runs()]
        == [run.to_document() for run in campaign.runs()]
    )
    print(f"  backend {pooled.schedule.backend!r}: builds executed in child "
          f"processes, digest-checked by the parent, in "
          f"{pooled.schedule.makespan_seconds:.3f} wall-clock seconds")
    print(f"  run documents identical to the simulated backend: {identical}")

    print("\nReplaying once more sharded: cells partitioned over 2 worker "
          "processes, each journalling into a private storage...")
    # Setting shards on a default spec selects the sharded backend; the
    # parent merges every shard's build-cache journal on completion.
    sharded_spec = CampaignSpec.from_dict(dict(spec.to_dict(), shards=2))
    sharded_system = _fresh_system()
    sharded = sharded_system.submit(sharded_spec).result()
    identical = (
        [run.to_document() for run in sharded.runs()]
        == [run.to_document() for run in campaign.runs()]
    )
    print(f"  backend {sharded.schedule.backend!r}: "
          f"{sharded.schedule.shards} shards, "
          f"{len(sharded.schedule.assignments)} tasks, shard journals merged "
          f"back into the parent cache in "
          f"{sharded.schedule.makespan_seconds:.3f} wall-clock seconds")
    print(f"  run documents identical to the simulated backend: {identical}")

    # -- journal persistence and warm-start on a fresh installation -----------
    print("\nPersisting the build-cache journal and warm-starting a fresh "
          "sp-system...")
    appended = system.persist_build_cache()
    status = BuildCache.journal_status(system.storage)
    print(f"  first persist appended {appended} journal entries "
          f"({status['records']} records, {status['bytes']:,} bytes)")
    # Persistence is incremental: nothing changed, so nothing is appended.
    print(f"  re-persist without new builds appended "
          f"{system.persist_build_cache()} records")
    warm_system = _fresh_system()
    warm_system.restore_build_cache(system.storage)
    warm = warm_system.submit(spec).result()
    print(f"  warm campaign: {warm.cache_statistics.hits} hits, "
          f"{warm.cache_statistics.misses} misses "
          f"({warm.cache_statistics.hit_rate:.0%} hit rate)")
    identical = (
        [run.to_document() for run in warm.runs()]
        == [run.to_document() for run in campaign.runs()]
    )
    print(f"  run documents identical to the cold campaign: {identical}")

    # -- two experiments warm-starting each other ------------------------------
    print("\nCross-experiment sharing: a ZEUS installation donating its "
          "external-package builds to a HERMES installation...")
    donor = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    donor.provision_standard_images()
    donor.register_experiment(build_zeus_experiment(scale=0.15, shared_externals=True))
    donor.submit(CampaignSpec(description="ZEUS donor campaign"))
    donor_entries = donor.persist_build_cache()
    print(f"  ZEUS campaign journalled {donor_entries} build-cache entries")

    taker = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    taker.provision_standard_images()
    taker.register_experiment(build_hermes_experiment(scale=0.2, shared_externals=True))
    taker.restore_build_cache(donor.storage)
    hermes_campaign = taker.submit(
        CampaignSpec(description="HERMES warm-started from ZEUS")
    ).result()
    statistics = hermes_campaign.cache_statistics
    n_shared = len(shared_external_packages("HERMES"))
    print(f"  HERMES campaign: {statistics.shared_hits} cross-experiment hits "
          f"for the {n_shared} shared externals "
          f"(donated by {dict(sorted(statistics.donated_by_experiment.items()))}); "
          f"{statistics.misses} HERMES-only builds still compiled")

    # -- policy comparison ----------------------------------------------------
    print("\nScheduling the same campaign under each pool policy:")
    for policy in sorted(SCHEDULING_POLICIES):
        policy_system = _fresh_system()
        policy_system.restore_build_cache(system.storage)
        result = policy_system.submit(
            CampaignSpec(
                workers=4, rounds=2, policy=policy, deadline_seconds=20000.0,
            )
        ).result()
        schedule = result.schedule
        verdict = (
            "met" if schedule.met_deadline
            else f"missed ({len(schedule.late_cells())} late cells)"
        )
        print(f"  {policy:<14} makespan {schedule.makespan_seconds:>8,.0f} s, "
              f"utilisation {schedule.utilisation:.1%}, "
              f"deadline {verdict}")

    if len(sys.argv) > 1:
        output_directory = sys.argv[1]
        from repro.reporting.webpages import StatusPageGenerator

        pages = StatusPageGenerator(system.storage, system.catalog)
        pages.campaign_page(
            campaign, cache_journal=BuildCache.journal_status(system.storage)
        )
        pages.index_page()
        pages.summary_page(matrix.render_text())
        written = system.storage.persist(output_directory)
        print(f"\npersisted {len(written)} storage documents below {output_directory}")


if __name__ == "__main__":
    main()
