#!/usr/bin/env python3
"""Validation-as-a-service: three tenants share one daemon.

The paper's validation suite is an *installation service*: experiments
hand their software over and the host runs the validation on their
behalf.  This example runs that service in-process — a
:class:`~repro.service.daemon.ValidationService` over one deterministic
:class:`~repro.core.spsystem.SPSystem` — and drives it the way a real
installation would be driven:

* three tenants (``zeus-ops`` with double fair-share weight, ``hermes-ops``,
  and a rate-limited ``guest``) submit campaign specs **concurrently from
  threads**;
* the guest's burst runs into its token bucket and is rejected with a
  retry-after;
* the daemon drains the queue under weighted round-robin fair share,
  dispatching every campaign through the one sanctioned execution
  entrypoint, ``SPSystem.submit`` — so the interleaved multi-tenant run
  stays byte-identical to a serial replay;
* every dispatch emits heartbeat telemetry and refreshes the live HTML
  dashboard, and the tenant ledger bills cells, build seconds, cache
  bytes and cross-tenant donated builds.

The printed tables are the same rows the ``repro serve`` / ``repro queue
status`` CLI and the dashboard page render.

Run with::

    python examples/validation_service.py [output-directory]
"""

from __future__ import annotations

import os
import sys
import tempfile
import threading

from repro._common import format_table
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment, build_zeus_experiment
from repro.scheduler.spec import CampaignSpec
from repro.service import (
    ServiceRateLimited,
    TenantPolicy,
    ValidationService,
    snapshot_rows,
    submission_rows,
    tenant_rows,
)


#: Every tenant validates on the established SL6 production platform.
CONFIGURATION_KEY = "SL6_64bit_gcc4.4"

#: (tenant, experiment, number of campaigns).  Fair share rotates tenants
#: lexicographically, so the guest's ZEUS campaign dispatches first: it
#: claims the ZEUS experiment in the ledger and is credited the donated
#: builds when hermes-ops warm-starts from the shared externals.
TENANT_PLANS = (
    ("zeus-ops", "ZEUS", 3),
    ("hermes-ops", "HERMES", 3),
    ("guest", "ZEUS", 3),
)


def build_system() -> SPSystem:
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(
        build_zeus_experiment(scale=0.15, shared_externals=True)
    )
    system.register_experiment(
        build_hermes_experiment(scale=0.2, shared_externals=True)
    )
    return system


def submit_all(service: ValidationService) -> list:
    """Three tenants submit concurrently; returns the rejections."""
    barrier = threading.Barrier(len(TENANT_PLANS))
    rejections = []
    rejections_lock = threading.Lock()

    def submitter(tenant: str, experiment: str, count: int) -> None:
        barrier.wait(timeout=10.0)
        for _ in range(count):
            spec = CampaignSpec(
                experiments=(experiment,),
                configuration_keys=(CONFIGURATION_KEY,),
                workers=1,
                persist_spec=False,
            )
            try:
                service.submit(tenant, spec)
            except ServiceRateLimited as limited:
                with rejections_lock:
                    rejections.append(limited)

    threads = [
        threading.Thread(target=submitter, args=plan) for plan in TENANT_PLANS
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    return rejections


def print_rows(title: str, rows: list) -> None:
    print(f"\n{title}")
    if not rows:
        print("  (none)")
        return
    headers = list(rows[0].keys())
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))


def main() -> int:
    directory = (
        sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(prefix="sp-service-")
    )
    system = build_system()
    service = ValidationService(
        system,
        tenants=[
            TenantPolicy("zeus-ops", weight=2),
            TenantPolicy("hermes-ops"),
            # One submission per minute with a burst of two: the guest's
            # third concurrent submission is rejected with a retry-after.
            TenantPolicy("guest", rate_per_second=1.0 / 60.0, burst=2),
        ],
    )

    rejections = submit_all(service)
    print(
        f"queued {service.queue.depth()} submission(s) from "
        f"{len(TENANT_PLANS)} concurrent tenants"
    )
    for limited in rejections:
        print(
            f"rate limited: {limited.tenant} must retry in "
            f"{limited.retry_after:.0f}s"
        )

    processed = service.run_pending()
    print(
        f"dispatched {len(processed)} campaign(s) in fair-share order: "
        + ", ".join(item.tenant for item in processed)
    )

    service.beat(source="example")
    print_rows(
        "Tenant ledger (fair share, rate limits, usage accounting)",
        tenant_rows(service.ledger, backlog=service.queue.backlog()),
    )
    print_rows("Submissions", submission_rows(service.submissions()))
    print_rows("Service snapshot", service.status_rows())

    system.persist_build_cache()
    system.storage.persist(directory)
    print(f"\nstorage persisted to {directory}")
    print(f"live dashboard: {os.path.join(directory, 'reports', 'service.html')}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


# Printed snapshot metrics include queue depth, per-tenant backlog, worker
# utilisation and the cache hit rate — the same payload every ``heartbeat``
# lifecycle event carries onto the bus.
