#!/usr/bin/env python3
"""Simulated nightly operation of the sp-system over one month — and the
validation history that regular operation leaves behind.

The regular builds and validations of the sp-system are driven by cron jobs
on the client machines.  This example installs a nightly build-and-validate
job and a weekly full-chain validation job for the HERMES experiment, then
advances the simulated clock by 28 days and shows what the framework did:
which cron firings happened, how the run catalogue filled up, and how the
common storage can be persisted to disk and inspected afterwards.

The second half demonstrates the validation history ledger: three recorded
campaigns (cold, warm, and one after a simulated environment evolution
event — ROOT 6.02 landing on the established SL5 platform), a
``history diff`` naming the cell the evolution flipped, and a
``history regressions`` report attributing the regression to the recorded
evolution event, rendered onto the trends status page.

Run with::

    python examples/nightly_cron_operation.py [output-directory]
"""

from __future__ import annotations

import sys
import tempfile

from repro import CampaignSpec, SPSystem
from repro.cli import main as cli_main
from repro.core.runner import RunnerSettings
from repro.environment.evolution import EVENT_EXTERNAL_RELEASE, EnvironmentEvent
from repro.environment.external import ExternalSoftwareCatalog
from repro.experiments import build_hermes_experiment
from repro.history import RegressionDetector, diff_campaigns, regression_rows, trend_rows
from repro.reporting.export import catalog_to_rows, rows_to_text
from repro.reporting.webpages import StatusPageGenerator
from repro.virtualization.cron import NIGHTLY_BUILD_SCHEDULE, WEEKLY_VALIDATION_SCHEDULE

#: The two cells of the recorded campaigns: the established platform and
#: its gcc 4.1 sibling.
CAMPAIGN_KEYS = ("SL5_64bit_gcc4.4", "SL5_64bit_gcc4.1")


def main() -> None:
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    hermes = build_hermes_experiment(scale=0.3)
    system.register_experiment(hermes)
    client = system.provisioning.hypervisor.start_client(
        "vm-SL5_64bit_gcc4.4", "hermes-validation-client"
    )
    print(f"started client {client.name} ({client.configuration.label})")

    def nightly_smoke_validation(timestamp: int) -> str:
        """The nightly cron action: a quick validation on the established platform."""
        result = system.validate(
            "HERMES", "SL5_64bit_gcc4.4", description="nightly validation"
        )
        return result.run.run_id

    def weekly_sl6_validation(timestamp: int) -> str:
        """The weekly cron action: validate the SL6 migration target."""
        result = system.validate(
            "HERMES", "SL6_64bit_gcc4.4", description="weekly SL6 validation"
        )
        return result.run.run_id

    client.cron.install("nightly-validation", NIGHTLY_BUILD_SCHEDULE, nightly_smoke_validation)
    client.cron.install("weekly-sl6", WEEKLY_VALIDATION_SCHEDULE, weekly_sl6_validation)
    print("installed cron jobs:")
    for job in client.cron.jobs():
        print(f"  {job.name}: {job.expression.text}")

    print("\nAdvancing the simulated clock by 28 days...")
    fired = client.cron.advance_days(28)
    print(f"  {len(fired)} cron firings")
    nightly_firings = [entry for entry in fired if entry[1] == "nightly-validation"]
    weekly_firings = [entry for entry in fired if entry[1] == "weekly-sl6"]
    print(f"  nightly validations: {len(nightly_firings)}")
    print(f"  weekly SL6 validations: {len(weekly_firings)}")

    print(f"\nRun catalogue now holds {system.total_runs()} validation runs:")
    rows = catalog_to_rows(system.catalog)
    print(rows_to_text(rows, columns=["run_id", "configuration", "description", "overall_status"]))

    descriptions = system.tag_registry.descriptions()
    print(f"\ndescription tags in the bookkeeping: {descriptions}")

    # -- the validation history ledger ---------------------------------------
    print("\n== validation history: three campaigns and one evolution event ==")
    spec = CampaignSpec(
        experiments=("HERMES",),
        configuration_keys=CAMPAIGN_KEYS,
        record_history=True,
        persist_spec=False,
    )
    cold = system.submit(spec)
    print(f"{cold.campaign_id} (cold):   "
          + ", ".join(f"{c.configuration_key}={c.run.overall_status}"
                      for c in cold.result().cells))
    system.clock.advance_days(7)
    warm = system.submit(spec)
    print(f"{warm.campaign_id} (warm):   "
          + ", ".join(f"{c.configuration_key}={c.run.overall_status}"
                      for c in warm.result().cells)
          + f"  [{warm.result().cache_statistics.hits} cache hits]")

    # The environment evolves: ROOT 6.02 is installed on the established
    # SL5 platform (same configuration key, new content).  Handing the
    # driving event to replace_configuration announces the swap on the
    # lifecycle bus and stamps it onto the ledger's time axis in one step
    # — no separate record_evolution call.
    root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
    evolved = system.configuration("SL5_64bit_gcc4.4").with_external(root6)
    evolution = EnvironmentEvent(
        year=2014,
        kind=EVENT_EXTERNAL_RELEASE,
        subject="ROOT-6.02",
        detail="ROOT 6.02 installed on the SL5 platform; removes the CINT "
               "interpreter interfaces",
    )
    system.clock.advance_days(1)
    system.replace_configuration(evolved, event=evolution)
    print(f"\nevolution event recorded: {evolution}")
    system.clock.advance_days(6)
    after = system.submit(spec)
    print(f"{after.campaign_id} (post-evolution): "
          + ", ".join(f"{c.configuration_key}={c.run.overall_status}"
                      for c in after.result().cells))

    # The diff names the cell the evolution flipped...
    diff = diff_campaigns(system.history, cold.campaign_id, after.campaign_id)
    print(f"\nhistory diff — {diff.summary()}")
    for flip in diff.broke:
        print(f"  broke: {flip.describe()}")
    assert [flip.configuration_key for flip in diff.broke] == ["SL5_64bit_gcc4.4"]

    # ...and the regression report attributes it to the evolution event.
    detector = RegressionDetector(system.history)
    regressions = detector.regressions()
    print("\nhistory regressions:")
    for finding in regressions:
        print(f"  {finding.summary()}")
    assert len(regressions) == 1
    assert regressions[0].suspected_event is not None
    assert regressions[0].suspected_event.subject == "ROOT-6.02"
    assert regressions[0].fingerprint_changed

    # The trends page renders the whole story next to the campaign pages.
    pages = StatusPageGenerator(system.storage, system.catalog)
    pages.campaign_page(after.result(), history_link=True)
    pages.trends_page(
        trend_rows(system.history),
        regression_rows(detector.findings()),
        history_status=system.history.status(),
        evolution_rows=[
            record.to_dict() for record in system.history.evolution_records()
        ],
    )
    pages.index_page()

    output_directory = (
        sys.argv[1] if len(sys.argv) > 1
        else tempfile.mkdtemp(prefix="sp-history-demo-")
    )
    written = system.storage.persist(output_directory)
    print(f"\npersisted {len(written)} storage documents below {output_directory}")

    # The persisted ledger answers the same questions from disk, through
    # the CLI — exactly what an operator would run the morning after.
    print("\n$ repro-sp history trends --storage-dir", output_directory)
    assert cli_main(["history", "trends", "--storage-dir", output_directory]) == 0
    print("\n$ repro-sp history diff ...")
    assert cli_main([
        "history", "diff", "--storage-dir", output_directory,
        "--from-campaign", cold.campaign_id,
        "--to-campaign", after.campaign_id,
    ]) == 0
    print("\n$ repro-sp history regressions ...")
    # Exit code 1: a regression is open — exactly what a cron job gates on
    # (`history regressions --quiet && deploy` stops the morning it breaks).
    assert cli_main([
        "history", "regressions", "--storage-dir", output_directory,
    ]) == 1


if __name__ == "__main__":
    main()
