#!/usr/bin/env python3
"""Simulated nightly operation of the sp-system over one month.

The regular builds and validations of the sp-system are driven by cron jobs
on the client machines.  This example installs a nightly build-and-validate
job and a weekly full-chain validation job for the HERMES experiment, then
advances the simulated clock by 28 days and shows what the framework did:
which cron firings happened, how the run catalogue filled up, and how the
common storage can be persisted to disk and inspected afterwards.

Run with::

    python examples/nightly_cron_operation.py [output-directory]
"""

from __future__ import annotations

import sys

from repro import SPSystem
from repro.core.runner import RunnerSettings
from repro.experiments import build_hermes_experiment
from repro.reporting.export import catalog_to_rows, rows_to_text
from repro.virtualization.cron import NIGHTLY_BUILD_SCHEDULE, WEEKLY_VALIDATION_SCHEDULE


def main() -> None:
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    hermes = build_hermes_experiment(scale=0.3)
    system.register_experiment(hermes)
    client = system.provisioning.hypervisor.start_client(
        "vm-SL5_64bit_gcc4.4", "hermes-validation-client"
    )
    print(f"started client {client.name} ({client.configuration.label})")

    def nightly_smoke_validation(timestamp: int) -> str:
        """The nightly cron action: a quick validation on the established platform."""
        result = system.validate(
            "HERMES", "SL5_64bit_gcc4.4", description="nightly validation"
        )
        return result.run.run_id

    def weekly_sl6_validation(timestamp: int) -> str:
        """The weekly cron action: validate the SL6 migration target."""
        result = system.validate(
            "HERMES", "SL6_64bit_gcc4.4", description="weekly SL6 validation"
        )
        return result.run.run_id

    client.cron.install("nightly-validation", NIGHTLY_BUILD_SCHEDULE, nightly_smoke_validation)
    client.cron.install("weekly-sl6", WEEKLY_VALIDATION_SCHEDULE, weekly_sl6_validation)
    print("installed cron jobs:")
    for job in client.cron.jobs():
        print(f"  {job.name}: {job.expression.text}")

    print("\nAdvancing the simulated clock by 28 days...")
    fired = client.cron.advance_days(28)
    print(f"  {len(fired)} cron firings")
    nightly_firings = [entry for entry in fired if entry[1] == "nightly-validation"]
    weekly_firings = [entry for entry in fired if entry[1] == "weekly-sl6"]
    print(f"  nightly validations: {len(nightly_firings)}")
    print(f"  weekly SL6 validations: {len(weekly_firings)}")

    print(f"\nRun catalogue now holds {system.total_runs()} validation runs:")
    rows = catalog_to_rows(system.catalog)
    print(rows_to_text(rows, columns=["run_id", "configuration", "description", "overall_status"]))

    descriptions = system.tag_registry.descriptions()
    print(f"\ndescription tags in the bookkeeping: {descriptions}")

    if len(sys.argv) > 1:
        output_directory = sys.argv[1]
        written = system.storage.persist(output_directory)
        print(f"\npersisted {len(written)} storage documents below {output_directory}")


if __name__ == "__main__":
    main()
