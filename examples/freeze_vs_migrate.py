#!/usr/bin/env python3
"""Freeze versus active migration: how long does the data stay usable?

Section 2 of the paper contrasts two level-4 preservation approaches:
freezing the current system inside a virtual machine, or actively migrating
and validating the software as the environment evolves (the DESY approach).
This example runs both strategies over the simulated 2012-2024 environment
evolution for an H1-like package inventory and prints the year-by-year
usability and the accumulated porting effort.

Run with::

    python examples/freeze_vs_migrate.py
"""

from __future__ import annotations

from repro.environment.configuration import EnvironmentFactory
from repro.environment.evolution import EnvironmentTimeline
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.migration.lifetime import LifetimeSimulator
from repro.migration.strategies import ActiveMigrationStrategy, FreezeStrategy


START_YEAR = 2012
END_YEAR = 2024


def main() -> None:
    print("Environment evolution 2012-2024 (events per year):")
    timeline = EnvironmentTimeline()
    for snapshot in timeline.replay(START_YEAR, END_YEAR):
        for event in snapshot.events:
            print(f"  {event}")

    inventory = build_inventory(
        "H1LIKE", 60,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=3, n_legacy_root_api=3, n_strictness_limited=3,
        ),
    )
    frozen_configuration = EnvironmentFactory().create(
        "SL5", 64, "gcc4.4",
        {"ROOT": "5.34", "CERNLIB": "2006", "GEANT3": "3.21", "MCGEN": "1.4", "MySQL": "5.5"},
    )
    print(
        f"\nPreserving {len(inventory)} packages "
        f"({inventory.total_lines_of_code():,} lines of legacy code)"
    )
    print(f"Frozen platform: {frozen_configuration.full_label}")

    simulator = LifetimeSimulator(timeline)
    comparison = simulator.compare(
        [FreezeStrategy(frozen_configuration), ActiveMigrationStrategy()],
        inventory,
        start_year=START_YEAR,
        end_year=END_YEAR,
    )

    print("\nYear-by-year usability (fraction of packages that still build):")
    header = f"{'year':<6}"
    for name in comparison.results:
        header += f"{name:>22}"
    print(header)
    freeze_by_year = comparison.result("freeze").usable_fraction_by_year()
    migrate_by_year = comparison.result("active-migration").usable_fraction_by_year()
    for year in range(START_YEAR, END_YEAR + 1):
        line = f"{year:<6}"
        for by_year in (freeze_by_year, migrate_by_year):
            line += f"{by_year[year]:>21.0%} "
        print(line)

    print("\nSummary:")
    for name, result in comparison.results.items():
        print(
            f"  {name:18s}: usable in {result.usable_years} of "
            f"{END_YEAR - START_YEAR + 1} years, "
            f"total effort {result.total_effort_person_weeks:.1f} person-weeks"
        )
    extension = comparison.lifetime_extension_years()
    print(
        f"\nActive migration extends the usable lifetime by {extension} years "
        "compared to freezing — the paper's argument for validating against "
        "environment changes as they happen."
    )

    migration_notes = [
        note
        for yearly in comparison.result("active-migration").yearly
        for note in yearly.notes
    ]
    if migration_notes:
        print("\nPorting work performed by the active-migration strategy:")
        for note in migration_notes:
            print(f"  {note}")


if __name__ == "__main__":
    main()
