#!/usr/bin/env python3
"""Quickstart: stand up the sp-system and run one validation cycle.

This example reproduces the everyday use of the validation framework:

1. provision the five standard virtual machine configurations;
2. register an experiment (a scaled-down H1 definition so the example runs in
   a few seconds);
3. run a full validation cycle — build every package, run the standalone
   tests and the analysis chains — on the established SL5/64bit platform;
4. print the resulting status summary and the generated status web page key.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SPSystem
from repro.experiments import build_h1_experiment
from repro.reporting.webpages import StatusPageGenerator


def main() -> None:
    print("Provisioning the sp-system (five standard VM configurations)...")
    system = SPSystem()
    images = system.provision_standard_images()
    for image_name in images:
        print(f"  built image {image_name}")

    print("\nRegistering the H1 experiment (scaled-down level-4 suite)...")
    h1 = build_h1_experiment(scale=0.25)
    system.register_experiment(h1)
    print(
        f"  {len(h1.inventory)} packages, {len(h1.standalone_tests)} standalone tests, "
        f"{h1.chain_test_count()} chain steps ({h1.total_test_count()} tests in total)"
    )

    print("\nRunning a validation cycle on SL5/64bit gcc4.4...")
    result = system.validate("H1", "SL5_64bit_gcc4.4", description="quickstart run")
    run = result.run
    print(f"  {result.summary()}")
    print(f"  run id: {run.run_id}, description tag: {run.description!r}")
    print(f"  simulated duration: {run.total_duration_seconds() / 3600.0:.1f} hours")

    print("\nPer test-kind breakdown:")
    for kind in ("compilation", "standalone", "chain-step"):
        jobs = [job for job in run.jobs if job.kind.value == kind]
        passed = sum(1 for job in jobs if job.passed)
        print(f"  {kind:12s}: {passed}/{len(jobs)} passed")

    print("\nGenerating the script-based status web pages...")
    pages = StatusPageGenerator(system.storage, system.catalog)
    pages.run_page(run)
    pages.index_page()
    print("  stored under the 'reports' namespace of the common storage:")
    for key in system.storage.keys("reports"):
        print(f"    reports/{key}")

    if result.successful:
        recipe = system.publish_recipe(result)
        print(f"\nPublished validated recipe {recipe.recipe_id}")
        plan = system.recipe_book.deployment_plan(recipe.recipe_id, "institute-cluster")
        print(plan.rendered())


if __name__ == "__main__":
    main()
