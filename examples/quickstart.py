#!/usr/bin/env python3
"""Quickstart: stand up the sp-system and run one validation cycle.

This example reproduces the everyday use of the validation framework:

1. provision the five standard virtual machine configurations;
2. register an experiment (a scaled-down H1 definition so the example runs in
   a few seconds);
3. run a full validation cycle — build every package, run the standalone
   tests and the analysis chains — on the established SL5/64bit platform;
4. submit a :class:`~repro.scheduler.spec.CampaignSpec` through the unified
   ``SPSystem.submit`` facade to validate H1 everywhere (simulated pool),
   then replay the same spec on the real wall-clock thread backend;
5. print the resulting status summary and the generated status web page key.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SPSystem
from repro.experiments import build_h1_experiment
from repro.reporting.webpages import StatusPageGenerator
from repro.scheduler import CampaignSpec


def main() -> None:
    print("Provisioning the sp-system (five standard VM configurations)...")
    system = SPSystem()
    images = system.provision_standard_images()
    for image_name in images:
        print(f"  built image {image_name}")

    print("\nRegistering the H1 experiment (scaled-down level-4 suite)...")
    h1 = build_h1_experiment(scale=0.25)
    system.register_experiment(h1)
    print(
        f"  {len(h1.inventory)} packages, {len(h1.standalone_tests)} standalone tests, "
        f"{h1.chain_test_count()} chain steps ({h1.total_test_count()} tests in total)"
    )

    print("\nRunning a validation cycle on SL5/64bit gcc4.4...")
    result = system.validate("H1", "SL5_64bit_gcc4.4", description="quickstart run")
    run = result.run
    print(f"  {result.summary()}")
    print(f"  run id: {run.run_id}, description tag: {run.description!r}")
    print(f"  simulated duration: {run.total_duration_seconds() / 3600.0:.1f} hours")

    print("\nPer test-kind breakdown:")
    for kind in ("compilation", "standalone", "chain-step"):
        jobs = [job for job in run.jobs if job.kind.value == kind]
        passed = sum(1 for job in jobs if job.passed)
        print(f"  {kind:12s}: {passed}/{len(jobs)} passed")

    print("\nSubmitting a campaign spec: H1 on every configuration...")
    spec = CampaignSpec(
        experiments=("H1",), workers=2, description="quickstart campaign"
    )
    handle = system.submit(spec)
    campaign = handle.result()
    print(f"  {handle.campaign_id}: {handle.cells_completed}/{handle.cells_total} "
          f"cells on the {campaign.backend!r} backend, "
          f"simulated makespan {campaign.schedule.makespan_seconds:,.0f} s "
          f"({campaign.schedule.speedup:.2f}x speedup on 2 workers)")

    print("\nReplaying the identical spec on the wall-clock thread backend...")
    threaded_system = SPSystem()
    threaded_system.provision_standard_images()
    threaded_system.register_experiment(build_h1_experiment(scale=0.25))
    # Replay the full history: run IDs and simulated timestamps continue
    # from the quickstart validation, so it must happen here too before the
    # campaigns can be compared document by document.
    threaded_system.validate("H1", "SL5_64bit_gcc4.4", description="quickstart run")
    threaded = threaded_system.submit(
        CampaignSpec.from_dict(dict(spec.to_dict(), backend="threads"))
    ).result()
    identical = (
        [r.to_document() for r in threaded.runs()]
        == [r.to_document() for r in campaign.runs()]
    )
    print(f"  {len(threaded.schedule.assignments)} DAG tasks executed on "
          f"{threaded.schedule.total_slots} real threads in "
          f"{threaded.schedule.makespan_seconds:.3f} s wall clock; "
          f"run documents identical to the simulated pool: {identical}")

    print("\nGenerating the script-based status web pages...")
    pages = StatusPageGenerator(system.storage, system.catalog)
    pages.run_page(run)
    pages.index_page()
    print("  stored under the 'reports' namespace of the common storage:")
    for key in system.storage.keys("reports"):
        print(f"    reports/{key}")

    if result.successful:
        recipe = system.publish_recipe(result)
        print(f"\nPublished validated recipe {recipe.recipe_id}")
        plan = system.recipe_book.deployment_plan(recipe.recipe_id, "institute-cluster")
        print(plan.rendered())


if __name__ == "__main__":
    main()
