#!/usr/bin/env python3
"""Automated regression alerting on the campaign lifecycle event bus.

Every campaign submission emits a typed event stream — ``cell_completed``
per matrix cell, ``campaign_finished`` at the end, ``evolution_recorded``
when the environment moves — through the system's plugin registry.  This
example wires the two operational consumers of that stream together:

* a JSONL **event log** (``CampaignSpec.event_log``) that appends every
  event for ``tail -f``-style monitoring, and
* the **regression-alerts plugin** (``plugins=("regression-alerts",)``),
  which runs the history regression detector when a campaign finishes and
  opens a persisted intervention ticket for every freshly broken cell —
  naming the suspected environment evolution, routed to the host IT
  department when the configuration fingerprint flipped.

The story: a recorded HERMES campaign passes on two SL5 platforms, ROOT
6.02 lands on the established one (removing the CINT interfaces HERMES
still uses), and the next alerting campaign detects the regression, opens
the ticket, and persists everything.  The ``interventions`` CLI then lists
and resolves the ticket — the morning-after workflow of the operator the
ticket was assigned to.

Run with::

    python examples/alerting_campaign.py [output-directory]
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

from repro import CampaignSpec, SPSystem
from repro.cli import main as cli_main
from repro.core.runner import RunnerSettings
from repro.environment.evolution import EVENT_EXTERNAL_RELEASE, EnvironmentEvent
from repro.environment.external import ExternalSoftwareCatalog
from repro.experiments import build_hermes_experiment
from repro.plugins import InterventionStore
from repro.reporting.summary import intervention_rows, lifecycle_event_rows
from repro.reporting.webpages import StatusPageGenerator

#: The two campaign cells: ROOT 6.02 will flip the gcc 4.4 cell while the
#: gcc 4.1 sibling stays green — one ticket, not a flood.
CAMPAIGN_KEYS = ("SL5_64bit_gcc4.4", "SL5_64bit_gcc4.1")


def main() -> None:
    output_directory = (
        sys.argv[1] if len(sys.argv) > 1
        else tempfile.mkdtemp(prefix="sp-alerting-demo-")
    )
    event_log = os.path.join(output_directory, "lifecycle-events.jsonl")

    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.3))

    # -- a recorded, green baseline campaign ---------------------------------
    spec = CampaignSpec(
        experiments=("HERMES",),
        configuration_keys=CAMPAIGN_KEYS,
        record_history=True,
        event_log=event_log,
        persist_spec=False,
    )
    cold = system.submit(spec)
    print(f"{cold.campaign_id} (baseline): "
          + ", ".join(f"{c.configuration_key}={c.run.overall_status}"
                      for c in cold.result().cells))

    # -- the environment evolves ---------------------------------------------
    root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
    evolved = system.configuration("SL5_64bit_gcc4.4").with_external(root6)
    evolution = EnvironmentEvent(
        year=2014,
        kind=EVENT_EXTERNAL_RELEASE,
        subject="ROOT-6.02",
        detail="ROOT 6.02 installed on the SL5 platform; removes the CINT "
               "interpreter interfaces",
    )
    system.clock.advance_days(1)
    system.replace_configuration(evolved, event=evolution)
    print(f"\nenvironment evolution: {evolution.subject} on SL5_64bit_gcc4.4")

    # -- the alerting campaign ------------------------------------------------
    system.clock.advance_days(6)
    alerting_spec = CampaignSpec.from_dict(
        dict(spec.to_dict(), plugins=["regression-alerts"])
    )
    after = system.submit(alerting_spec)
    print(f"{after.campaign_id} (alerting): "
          + ", ".join(f"{c.configuration_key}={c.run.overall_status}"
                      for c in after.result().cells))

    # The bus saw the whole story, ending in a regression_detected event.
    print("\nfired lifecycle events (most recent 8):")
    for row in lifecycle_event_rows(system.lifecycle.recent(limit=8)):
        print(f"  #{row['seq']:>3} {row['event']:<22} {row['payload']}")
    names = [event.name for event in system.lifecycle.events]
    assert "regression_detected" in names

    # ...and the plugin opened exactly one persisted ticket, naming the
    # suspected evolution.
    store = InterventionStore(system.storage)
    tickets = store.open_tickets()
    print("\nopen intervention tickets:")
    for row in intervention_rows(tickets):
        print(f"  {row['ticket']}: {row['experiment']} on "
              f"{row['configuration']} — suspected {row['suspected change']} "
              f"(assigned: {row['category']})")
    assert len(tickets) == 1
    [ticket] = tickets
    assert "ROOT-6.02" in ticket.suspected_change

    # The status page renders the tickets and events next to the timeline.
    pages = StatusPageGenerator(system.storage, system.catalog)
    pages.campaign_page(
        after.result(),
        tickets=intervention_rows(tickets),
        events=lifecycle_event_rows(system.lifecycle.recent(limit=20)),
    )
    pages.index_page()

    written = system.storage.persist(output_directory)
    print(f"\npersisted {len(written)} storage documents below {output_directory}")
    with open(event_log) as handle:
        logged = [json.loads(line) for line in handle]
    print(f"event log {event_log}: {len(logged)} JSONL events")
    assert logged[-1]["event"] == "campaign_finished"

    # -- the morning-after CLI workflow ---------------------------------------
    print("\n$ repro-sp history regressions --storage-dir ... --quiet")
    # Exit code 1 — the cron gate ("regressions --quiet && deploy") trips.
    assert cli_main([
        "history", "regressions", "--storage-dir", output_directory, "--quiet",
    ]) == 1
    print("\n$ repro-sp interventions list --storage-dir ...")
    assert cli_main([
        "interventions", "list", "--storage-dir", output_directory,
    ]) == 0
    print(f"\n$ repro-sp interventions resolve --ticket {ticket.ticket_id} ...")
    assert cli_main([
        "interventions", "resolve", "--storage-dir", output_directory,
        "--ticket", ticket.ticket_id,
        "--resolution", "ported HERMES to the ROOT 6 interfaces",
    ]) == 0
    print("\n$ repro-sp interventions list --all --storage-dir ...")
    assert cli_main([
        "interventions", "list", "--storage-dir", output_directory, "--all",
    ]) == 0


if __name__ == "__main__":
    main()
