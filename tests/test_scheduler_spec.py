"""Tests for the unified execution API: specs, backends and the submit facade.

The :class:`CampaignSpec` request object is the single currency of campaign
execution: it round-trips through ``to_dict``/``from_dict``, persists into
the ``campaigns`` namespace of the common storage, and replays the identical
campaign on a fresh installation.  The :class:`ExecutionBackend` registry
decides how the derived DAG is dispatched — the deterministic pool
simulation or a real wall-clock thread pool — without ever touching the
scientific output.
"""

import pytest

from repro._common import SchedulingError
from repro.core.runner import RunnerSettings
from repro.core.spsystem import CampaignHandle, SPSystem
from repro.experiments import build_hermes_experiment
from repro.scheduler.backends import (
    EXECUTION_BACKENDS,
    ExecutionRequest,
    SimulatedBackend,
    ThreadPoolBackend,
    execution_backend,
)
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.pool import WorkerFailure
from repro.scheduler.spec import CampaignSpec, ValidationRequest


def _fresh_system(seed=20131029):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0, seed=seed)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


def _task(task_id, duration=5.0, deps=(), cell=0):
    return CampaignTask(
        task_id=task_id,
        kind=TaskKind.BUILD,
        cell_index=cell,
        experiment="TESTEXP",
        configuration_key="SL5_64bit_gcc4.4",
        duration_seconds=duration,
        dependencies=tuple(deps),
    )


class TestValidationRequest:
    def test_round_trip(self):
        request = ValidationRequest(
            experiment="HERMES",
            configuration_key="SL5_64bit_gcc4.4",
            description="nightly",
            reference_configuration_key="SL6_64bit_gcc4.4",
        )
        assert ValidationRequest.from_dict(request.to_dict()) == request

    def test_optional_fields_default(self):
        request = ValidationRequest.from_dict(
            {"experiment": "H1", "configuration_key": "SL5_64bit_gcc4.4"}
        )
        assert request.description is None
        assert request.reference_configuration_key is None

    def test_missing_fields_rejected(self):
        with pytest.raises(SchedulingError):
            ValidationRequest.from_dict({"experiment": "H1"})


class TestCampaignSpec:
    def test_round_trip_defaults(self):
        spec = CampaignSpec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        # Twice through the serialisation stays byte-identical.
        assert CampaignSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_round_trip_every_field(self):
        spec = CampaignSpec(
            experiments=("HERMES", "ZEUS"),
            configuration_keys=("SL5_64bit_gcc4.4",),
            description="full matrix",
            workers=3,
            slots_per_worker=4,
            rounds=2,
            batch_size=2,
            policy="critical-path",
            deadline_seconds=1000.0,
            backend="simulated",
            failures=(WorkerFailure(worker_index=1, at_seconds=50.0),),
            warm_start=False,
            cache_budget_bytes=1 << 20,
            persist_spec=False,
        )
        restored = CampaignSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.to_dict() == spec.to_dict()

    def test_round_trip_explicit_requests(self):
        spec = CampaignSpec(
            requests=(
                ValidationRequest("HERMES", "SL5_64bit_gcc4.4", description="a"),
                ValidationRequest("HERMES", "SL6_64bit_gcc4.4"),
            )
        )
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_lists_normalise_to_tuples(self):
        assert CampaignSpec(experiments=["HERMES"]) == CampaignSpec(
            experiments=("HERMES",)
        )

    def test_unknown_field_rejected(self):
        with pytest.raises(SchedulingError):
            CampaignSpec.from_dict({"wokers": 4})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"rounds": 0},
            {"batch_size": 0},
            {"slots_per_worker": 0},
            {"deadline_seconds": 0.0},
            {"cache_budget_bytes": -1},
            {"policy": "round-robin"},
            {"backend": "mpi"},
            {
                "requests": (ValidationRequest("H1", "SL5_64bit_gcc4.4"),),
                "experiments": ("H1",),
            },
            {
                "backend": "threads",
                "failures": (WorkerFailure(worker_index=0, at_seconds=1.0),),
            },
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(SchedulingError):
            CampaignSpec(**kwargs).validate()

    @pytest.mark.parametrize(
        "payload",
        [
            {"workers": "4"},
            {"rounds": 2.5},
            {"warm_start": "yes"},
            {"persist_spec": 1},
            {"policy": 7},
            {"deadline_seconds": "soon"},
            {"experiments": [1, 2]},
            {"cache_budget_bytes": "big"},
            {"failures": "none"},
            {"failures": [[0]]},
            {"requests": [{"experiment": "H1"}]},
            {"requests": 5},
            {"experiments": "HERMES"},
            {"configuration_keys": "SL5_64bit_gcc4.4"},
        ],
    )
    def test_wrongly_typed_documents_rejected_cleanly(self, payload):
        # A hand-written spec file with the wrong value type must fail with
        # a SchedulingError (CLI exit 2), never a raw TypeError traceback.
        with pytest.raises(SchedulingError):
            CampaignSpec.from_dict(payload).validate()


class TestBackendRegistry:
    def test_registry_names_match_backend_names(self):
        for name, backend_class in EXECUTION_BACKENDS.items():
            assert backend_class.name == name

    def test_resolution(self):
        assert isinstance(execution_backend("simulated"), SimulatedBackend)
        assert isinstance(execution_backend("threads"), ThreadPoolBackend)
        assert isinstance(execution_backend(None), SimulatedBackend)
        backend = ThreadPoolBackend()
        assert execution_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(SchedulingError):
            execution_backend("mpi")


class TestThreadPoolBackend:
    def test_executes_every_task_and_honours_dependencies(self):
        dag = CampaignDAG()
        dag.add(_task("build-a", deps=()))
        dag.add(_task("build-b", deps=["build-a"]))
        dag.add(_task("test", deps=["build-b"]))
        executed = []
        payloads = {
            task_id: (lambda task_id=task_id: executed.append(task_id))
            for task_id in ("build-a", "build-b", "test")
        }
        schedule = ThreadPoolBackend().execute(
            ExecutionRequest(dag=dag, workers=2, payloads=payloads)
        )
        assert sorted(executed) == ["build-a", "build-b", "test"]
        assert schedule.backend == "threads"
        by_id = {a.task_id: a for a in schedule.assignments}
        # Submission is gated on dependency completion, so measured starts
        # can never precede the dependency's measured end.
        assert by_id["build-b"].start_seconds >= by_id["build-a"].end_seconds
        assert by_id["test"].start_seconds >= by_id["build-b"].end_seconds
        assert schedule.makespan_seconds >= 0.0
        assert schedule.n_retries == 0

    def test_independent_tasks_really_run_concurrently(self):
        import threading

        dag = CampaignDAG()
        for index in range(4):
            dag.add(_task(f"t{index}"))
        barrier = threading.Barrier(4, timeout=10.0)
        payloads = {f"t{index}": barrier.wait for index in range(4)}
        # 2 workers x 2 slots = 4 concurrent threads: the barrier releases
        # only if all four payloads genuinely overlap in time.
        schedule = ThreadPoolBackend().execute(
            ExecutionRequest(dag=dag, workers=2, payloads=payloads)
        )
        assert schedule.peak_concurrent_tasks == 4
        assert len(schedule.assignments) == 4

    def test_empty_dag(self):
        schedule = ThreadPoolBackend().execute(ExecutionRequest(dag=CampaignDAG()))
        assert schedule.assignments == []
        assert schedule.makespan_seconds == 0.0

    def test_failure_injection_rejected(self):
        with pytest.raises(SchedulingError):
            ThreadPoolBackend().execute(
                ExecutionRequest(
                    dag=CampaignDAG(),
                    failures=(WorkerFailure(worker_index=0, at_seconds=1.0),),
                )
            )

    def test_payload_crash_surfaces_as_scheduling_error(self):
        dag = CampaignDAG()
        dag.add(_task("boom"))

        def explode():
            raise RuntimeError("payload crashed")

        with pytest.raises(SchedulingError, match="payload crashed"):
            ThreadPoolBackend().execute(
                ExecutionRequest(dag=dag, payloads={"boom": explode})
            )


class TestSubmitFacade:
    KEYS = ("SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4")

    def test_handle_lifecycle_and_progress(self):
        system = _fresh_system()
        seen = []
        handle = system.submit(
            CampaignSpec(configuration_keys=self.KEYS, workers=2),
            on_cell_complete=lambda cell: seen.append(cell.index),
        )
        assert isinstance(handle, CampaignHandle)
        assert handle.status == "completed"
        assert handle.cells_total == handle.cells_completed == 2
        assert handle.progress == 1.0
        assert seen == [0, 1]
        assert handle.result() is system.last_campaign
        assert handle.result().spec.configuration_keys == self.KEYS

    def test_spec_persisted_and_replayable_from_storage(self):
        system = _fresh_system()
        handle = system.submit(CampaignSpec(configuration_keys=self.KEYS))
        document = system.storage.get("campaigns", f"spec_{handle.campaign_id}")
        assert document["status"] == "completed"
        assert document["cells_total"] == 2
        replayed = _fresh_system().submit(CampaignSpec.from_dict(document["spec"]))
        assert [run.to_document() for run in replayed.result().runs()] == [
            run.to_document() for run in handle.result().runs()
        ]

    def test_persist_spec_false_leaves_storage_untouched(self):
        system = _fresh_system()
        system.submit(
            CampaignSpec(configuration_keys=self.KEYS, persist_spec=False)
        )
        assert "campaigns" not in system.storage.namespaces()

    def test_campaign_ids_resume_past_mounted_submissions(self):
        first = _fresh_system()
        first.submit(CampaignSpec(configuration_keys=self.KEYS))
        second = SPSystem(storage=first.storage)
        assert second._allocate_campaign_id() == "campaign-0002"

    def test_slots_per_worker_overrides_the_vm_profile(self):
        system = _fresh_system()
        handle = system.submit(
            CampaignSpec(
                configuration_keys=("SL5_64bit_gcc4.4",),
                workers=2,
                slots_per_worker=1,
            )
        )
        schedule = handle.result().schedule
        assert schedule.slots_per_worker == 1
        assert schedule.total_slots == 2

    def test_invalid_spec_rejected_before_execution(self):
        system = _fresh_system()
        with pytest.raises(SchedulingError):
            system.submit(CampaignSpec(workers=0))
        assert system.total_runs() == 0

    def test_explicit_requests_carry_descriptions(self):
        system = _fresh_system()
        handle = system.submit(
            CampaignSpec(
                requests=(
                    ValidationRequest(
                        "HERMES", "SL5_64bit_gcc4.4", description="nightly run"
                    ),
                )
            )
        )
        run = handle.result().cells[0].run
        assert run.description == "nightly run"

    def test_empty_matrix_completes_with_no_cells(self):
        system = _fresh_system()
        handle = system.submit(CampaignSpec(configuration_keys=()))
        assert handle.status == "completed"
        assert handle.cells_total == 0
        assert handle.progress == 1.0
        assert handle.result().n_cells == 0

    def test_failed_submission_raises_and_records(self):
        system = _fresh_system()
        spec = CampaignSpec(configuration_keys=("no-such-configuration",))
        with pytest.raises(Exception):
            system.submit(spec)
        keys = system.storage.keys("campaigns")
        assert len(keys) == 1
        assert system.storage.get("campaigns", keys[0])["status"] == "failed"

    def test_result_raises_until_completed(self):
        handle = CampaignHandle(campaign_id="campaign-9999", spec=CampaignSpec())
        with pytest.raises(SchedulingError, match="has not completed"):
            handle.result()


class TestDeprecatedShims:
    def test_run_campaign_warns_and_matches_submit(self):
        legacy_system = _fresh_system()
        with pytest.warns(DeprecationWarning, match="run_campaign is deprecated"):
            legacy = legacy_system.run_campaign(
                ["HERMES"], list(TestSubmitFacade.KEYS), workers=2
            )
        spec_system = _fresh_system()
        submitted = spec_system.submit(
            CampaignSpec(
                experiments=("HERMES",),
                configuration_keys=TestSubmitFacade.KEYS,
                workers=2,
            )
        ).result()
        assert [run.to_document() for run in legacy.runs()] == [
            run.to_document() for run in submitted.runs()
        ]

    def test_validate_everywhere_warns(self):
        system = _fresh_system()
        with pytest.warns(
            DeprecationWarning, match="validate_everywhere is deprecated"
        ):
            cycles = system.validate_everywhere(
                "HERMES", list(TestSubmitFacade.KEYS)
            )
        assert len(cycles) == 2

    def test_run_campaign_still_accepts_policy_instances(self):
        # A custom (unregistered) policy instance cannot travel in the
        # serialisable spec, but the deprecated path must keep scheduling
        # with it, as it did before the redesign.
        from repro.scheduler.pool import FifoPolicy

        class ReversedFifoPolicy(FifoPolicy):
            name = "reversed-fifo"

        system = _fresh_system()
        with pytest.warns(DeprecationWarning):
            campaign = system.run_campaign(
                ["HERMES"], ["SL5_64bit_gcc4.4"], policy=ReversedFifoPolicy()
            )
        assert campaign.policy == "reversed-fifo"
        assert campaign.schedule.policy == "reversed-fifo"

    def test_validate_all_experiments_warns(self):
        system = _fresh_system()
        with pytest.warns(
            DeprecationWarning, match="validate_all_experiments is deprecated"
        ):
            results = system.validate_all_experiments(["SL5_64bit_gcc4.4"])
        assert sorted(results) == ["HERMES"]
