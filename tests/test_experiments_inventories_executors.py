"""Tests for the synthetic package inventories and the test executors."""

import pytest

from repro.buildsys.builder import PackageBuilder
from repro.buildsys.graph import DependencyGraph
from repro.buildsys.package import PackageCategory
from repro.core.testspec import ExecutionContext, OutputKind
from repro.experiments import executors
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.hepdata.numerics import NumericContext, REFERENCE_CONTEXT


class TestBuildInventory:
    def test_requested_size_respected(self):
        for size in (10, 30, 100):
            inventory = build_inventory("EXPA", size)
            assert len(inventory) == size

    def test_all_categories_represented_at_realistic_size(self):
        inventory = build_inventory("EXPA", 60)
        for category in PackageCategory:
            assert inventory.by_category(category), f"no {category.value} packages"

    def test_dependency_graph_is_valid(self):
        inventory = build_inventory("EXPA", 50)
        assert inventory.validate_dependencies() == []
        graph = DependencyGraph(inventory)
        assert len(graph.build_order()) == 50

    def test_deterministic_generation(self):
        first = build_inventory("EXPA", 40)
        second = build_inventory("EXPA", 40)
        assert first.names() == second.names()
        assert [pkg.lines_of_code for pkg in first.all()] == [
            pkg.lines_of_code for pkg in second.all()
        ]

    def test_different_experiments_get_different_names(self):
        h1_like = build_inventory("EXPA", 20)
        zeus_like = build_inventory("EXPB", 20)
        assert set(h1_like.names()).isdisjoint(zeus_like.names())

    def test_quirks_control_migration_problems(self, sl5_64_gcc44, sl6_64_gcc44):
        clean = build_inventory(
            "EXPA", 40,
            quirks=InventoryQuirks(0, 0, 0, 0),
        )
        quirky = build_inventory(
            "EXPB", 40,
            quirks=InventoryQuirks(n_not_ported_to_newest_abi=3, n_legacy_root_api=0,
                                   n_strictness_limited=0),
        )
        builder = PackageBuilder()
        assert builder.build_inventory(clean, sl6_64_gcc44).all_usable
        quirky_campaign = builder.build_inventory(quirky, sl6_64_gcc44)
        assert len(quirky_campaign.failed_packages()) == 3
        # The same quirky inventory still builds on the old platform.
        assert builder.build_inventory(quirky, sl5_64_gcc44).all_usable

    def test_root6_quirks_break_on_next_generation(self, sl7_root6):
        inventory = build_inventory(
            "EXPC", 40,
            quirks=InventoryQuirks(n_not_ported_to_newest_abi=0, n_legacy_root_api=2,
                                   n_strictness_limited=0),
        )
        campaign = PackageBuilder().build_inventory(inventory, sl7_root6)
        assert len(campaign.failed_packages()) >= 2

    def test_32bit_only_quirk(self, sl5_64_gcc44):
        inventory = build_inventory(
            "EXPD", 40,
            quirks=InventoryQuirks(0, 0, 0, n_32bit_only=2),
        )
        campaign = PackageBuilder().build_inventory(inventory, sl5_64_gcc44)
        assert len(campaign.failed_packages()) == 2


def make_context(configuration, numeric_context=None, chain_state=None):
    return ExecutionContext(
        configuration=configuration,
        numeric_context=numeric_context or REFERENCE_CONTEXT,
        seed=5,
        chain_state=chain_state if chain_state is not None else {},
    )


class TestExecutors:
    def test_smoke_test_passes_in_healthy_environment(self, sl5_64_gcc44):
        output = executors.smoke_test_executor("pkg-a")(make_context(sl5_64_gcc44))
        assert output.kind is OutputKind.YES_NO
        assert output.passed

    def test_smoke_test_fails_with_removed_interface_defect(self, sl5_64_gcc44):
        context = make_context(
            sl5_64_gcc44,
            NumericContext(label="broken", defects=(("removed-interface-returns-zero", 1.0),)),
        )
        outcomes = [
            executors.smoke_test_executor(f"pkg-{index}")(context).passed
            for index in range(20)
        ]
        assert not all(outcomes)

    def test_calibration_executor_detects_large_shift(self, sl5_64_gcc44):
        healthy = executors.calibration_constants_executor("tracker", 1.0)(
            make_context(sl5_64_gcc44)
        )
        assert healthy.passed
        broken_context = make_context(
            sl5_64_gcc44, NumericContext(label="bad", defects=(("32bit-index-overflow", 0.2),))
        )
        broken = executors.calibration_constants_executor("tracker", 1.0)(broken_context)
        assert not broken.passed

    def test_database_executor_requires_mysql(self, sl5_64_gcc44):
        output = executors.database_access_executor("H1")(make_context(sl5_64_gcc44))
        assert output.passed
        stripped = sl5_64_gcc44.without_external("MySQL")
        output = executors.database_access_executor("H1")(make_context(stripped))
        assert not output.passed

    def test_kinematics_executor_outputs_numbers(self, sl5_64_gcc44):
        output = executors.kinematics_consistency_executor("H1", "nc_dis", n_events=40)(
            make_context(sl5_64_gcc44)
        )
        assert output.kind is OutputKind.NUMBERS
        assert output.passed
        assert output.numbers["n_events"] == 40.0

    def test_control_histogram_executor_variables(self, sl5_64_gcc44):
        for variable in ("q2", "x", "multiplicity"):
            output = executors.control_histogram_executor(
                "H1", "nc_dis", variable, n_events=30
            )(make_context(sl5_64_gcc44))
            assert output.kind is OutputKind.HISTOGRAMS
            assert output.passed
            assert variable in output.histograms.names()[0]

    def test_root_io_executor(self, sl5_64_gcc44):
        output = executors.root_io_executor("pkg-ntuple")(make_context(sl5_64_gcc44))
        assert output.passed
        without_root = sl5_64_gcc44.without_external("ROOT")
        output = executors.root_io_executor("pkg-ntuple")(make_context(without_root))
        assert not output.passed

    def test_data_export_executor(self, sl5_64_gcc44):
        output = executors.data_export_executor("H1", n_events=20)(make_context(sl5_64_gcc44))
        assert output.kind is OutputKind.FILE_SUMMARY
        assert output.passed
        assert output.file_summary["n_events"] == 20.0
