"""Tests for the four-phase work flow and the SPSystem facade."""

import pytest

from repro._common import ValidationError
from repro.core.freeze import FreezeReason
from repro.core.spsystem import SPSystem
from repro.core.workflow import PreservationWorkflow, WorkflowPhase
from repro.storage.bookkeeping import EPOCH_2013


class TestPreservationWorkflow:
    def test_registration_starts_in_preparation(self):
        workflow = PreservationWorkflow()
        workflow.register("H1")
        assert workflow.phase_of("H1") is WorkflowPhase.PREPARATION
        with pytest.raises(ValidationError):
            workflow.register("H1")
        with pytest.raises(ValidationError):
            workflow.phase_of("GHOST")

    def test_legal_and_illegal_transitions(self):
        workflow = PreservationWorkflow()
        workflow.register("H1")
        with pytest.raises(ValidationError):
            workflow.transition("H1", WorkflowPhase.FROZEN, EPOCH_2013, "too early")
        workflow.transition("H1", WorkflowPhase.REGULAR_VALIDATION, EPOCH_2013, "ready")
        workflow.transition("H1", WorkflowPhase.INTERVENTION, EPOCH_2013, "failure")
        workflow.transition("H1", WorkflowPhase.REGULAR_VALIDATION, EPOCH_2013, "fixed")
        workflow.transition("H1", WorkflowPhase.FROZEN, EPOCH_2013, "end")
        with pytest.raises(ValidationError):
            workflow.transition("H1", WorkflowPhase.REGULAR_VALIDATION, EPOCH_2013, "revive")
        assert len(workflow.history("H1")) == 4

    def test_preparation_report_for_healthy_experiment(self, tiny_h1, sl5_64_gcc44):
        workflow = PreservationWorkflow()
        report = workflow.prepare(tiny_h1, sl5_64_gcc44)
        assert report.ready
        assert report.dependency_problems == []
        assert report.missing_capabilities == []
        assert report.test_counts["total"] == tiny_h1.total_test_count()

    def test_preparation_detects_unnecessary_externals(self, tiny_hermes, sl5_64_gcc44):
        workflow = PreservationWorkflow()
        report = workflow.prepare(tiny_hermes, sl5_64_gcc44)
        # HERMES (level 3) does not use GEANT3 or the MC generator libraries in
        # this scaled definition, so the preparation phase flags them.
        assert report.ready
        assert isinstance(report.unnecessary_externals, list)

    def test_complete_preparation_transitions(self, tiny_hermes, sl5_64_gcc44):
        workflow = PreservationWorkflow()
        workflow.register("HERMES")
        workflow.complete_preparation(tiny_hermes, sl5_64_gcc44, EPOCH_2013)
        assert workflow.phase_of("HERMES") is WorkflowPhase.REGULAR_VALIDATION

    def test_preparation_detects_missing_capabilities(self, tiny_h1, sl5_64_gcc44):
        from dataclasses import replace

        stripped = replace(tiny_h1, chains=[], standalone_tests=[])
        workflow = PreservationWorkflow()
        report = workflow.prepare(stripped, sl5_64_gcc44)
        assert not report.ready
        assert "simulation" in report.missing_capabilities
        workflow.register(stripped.name)
        with pytest.raises(ValidationError):
            workflow.complete_preparation(stripped, sl5_64_gcc44, EPOCH_2013)


class TestSPSystem:
    def test_provisioning_standard_images(self, sp_system):
        assert len(sp_system.hypervisor.images()) == 5
        assert len(sp_system.configurations()) == 5
        assert sp_system.configuration("SL6_64bit_gcc4.4").word_size == 64
        with pytest.raises(ValidationError):
            sp_system.configuration("SL9")

    def test_register_and_lookup_experiment(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        assert sp_system.experiment("HERMES") is tiny_hermes
        assert [experiment.name for experiment in sp_system.experiments()] == ["HERMES"]
        with pytest.raises(ValidationError):
            sp_system.register_experiment(tiny_hermes)
        with pytest.raises(ValidationError):
            sp_system.experiment("GHOST")

    def test_successful_validation_cycle(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        result = sp_system.validate("HERMES", "SL5_64bit_gcc4.4")
        assert result.successful
        assert result.diagnosis is None
        assert result.tickets == []
        assert sp_system.total_runs() == 1
        assert sp_system.workflow.phase_of("HERMES") is WorkflowPhase.REGULAR_VALIDATION
        assert "PASSED" in result.summary()

    def test_failed_cycle_opens_tickets_and_enters_intervention(
        self, sp_system, tiny_zeus
    ):
        sp_system.register_experiment(tiny_zeus)
        sp_system.validate("ZEUS", "SL5_64bit_gcc4.4")
        result = sp_system.validate("ZEUS", "SL6_64bit_gcc4.4")
        assert not result.successful
        assert result.diagnosis is not None
        assert result.tickets
        assert sp_system.workflow.phase_of("ZEUS") is WorkflowPhase.INTERVENTION
        # A subsequent good run returns the experiment to regular validation.
        recovery = sp_system.validate("ZEUS", "SL5_64bit_gcc4.4")
        assert recovery.successful
        assert sp_system.workflow.phase_of("ZEUS") is WorkflowPhase.REGULAR_VALIDATION

    def test_validate_everywhere(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        results = sp_system.validate_everywhere("HERMES")
        assert len(results) == 5
        assert sp_system.total_runs() == 5

    def test_publish_recipe_and_freeze(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        result = sp_system.validate("HERMES", "SL5_64bit_gcc4.4")
        recipe = sp_system.publish_recipe(result)
        assert recipe.experiment == "HERMES"
        frozen = sp_system.freeze_experiment("HERMES", result, FreezeReason.SATISFACTORY)
        assert sp_system.workflow.phase_of("HERMES") is WorkflowPhase.FROZEN
        assert frozen.image_name.startswith("vm-SL5_64bit")
        with pytest.raises(ValidationError):
            sp_system.validate("HERMES", "SL5_64bit_gcc4.4")

    def test_describe_structure(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        sp_system.validate("HERMES", "SL5_32bit_gcc4.1")
        description = sp_system.describe()
        assert len(description["configurations"]) == 5
        assert description["experiments"]["HERMES"]["preservation_level"] == 3
        assert description["total_runs"] == 1
        assert description["artifacts"] > 0

    def test_add_custom_configuration(self, sp_system, sl7_root6):
        key = sp_system.add_configuration(sl7_root6)
        assert key == sl7_root6.key
        assert len(sp_system.configurations()) == 6
        assert sp_system.hypervisor.image_for_configuration(sl7_root6) is not None
