"""Tests for the external software catalogue (ROOT, CERNLIB, ...)."""

import pytest

from repro._common import ConfigurationError
from repro.environment.external import (
    ExternalSoftwareCatalog,
    ExternalSoftwareVersion,
    ROOT_LEGACY_APIS,
    default_external_software,
)


class TestExternalSoftwareVersion:
    def test_root_key(self):
        root = ExternalSoftwareCatalog().get("ROOT", "5.34")
        assert root.key == "ROOT-5.34"

    def test_api_queries(self):
        root5 = ExternalSoftwareCatalog().get("ROOT", "5.34")
        assert root5.provides("TTree")
        assert root5.provides("CINT")
        assert not root5.removes("CINT")

    def test_root6_removes_legacy_interfaces(self):
        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        for api in ROOT_LEGACY_APIS:
            assert root6.removes(api)
            assert not root6.provides(api)

    def test_root6_requires_cxx11_and_gcc48(self):
        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        assert root6.requires_cxx_standard == "c++11"
        assert not root6.compiler_is_sufficient("4.4")
        assert root6.compiler_is_sufficient("4.8")

    def test_word_size_support(self):
        cernlib_2005 = ExternalSoftwareCatalog().get("CERNLIB", "2005")
        assert cernlib_2005.supports_word_size(32)
        assert not cernlib_2005.supports_word_size(64)

    def test_provided_and_removed_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            ExternalSoftwareVersion(
                product="X", version="1.0", release_year=2010, api_level=1,
                provided_apis=frozenset({"a"}), removed_apis=frozenset({"a"}),
            )

    def test_negative_api_level_rejected(self):
        with pytest.raises(ConfigurationError):
            ExternalSoftwareVersion(
                product="X", version="1.0", release_year=2010, api_level=-1,
            )


class TestExternalSoftwareCatalog:
    def test_paper_root_versions_present(self):
        catalog = ExternalSoftwareCatalog()
        versions = [entry.version for entry in catalog.versions_of("ROOT")]
        for version in ("5.26", "5.28", "5.30", "5.32", "5.34"):
            assert version in versions

    def test_versions_sorted_by_api_level(self):
        catalog = ExternalSoftwareCatalog()
        levels = [entry.api_level for entry in catalog.versions_of("ROOT")]
        assert levels == sorted(levels)

    def test_latest_overall_and_by_year(self):
        catalog = ExternalSoftwareCatalog()
        assert catalog.latest("ROOT").version == "6.02"
        assert catalog.latest("ROOT", year=2012).version == "5.34"
        assert catalog.latest("ROOT", year=2009).version == "5.26"

    def test_latest_before_first_release_raises(self):
        with pytest.raises(ConfigurationError):
            ExternalSoftwareCatalog().latest("ROOT", year=2000)

    def test_unknown_product_and_version(self):
        catalog = ExternalSoftwareCatalog()
        with pytest.raises(ConfigurationError):
            catalog.versions_of("GEANT4")
        with pytest.raises(ConfigurationError):
            catalog.get("ROOT", "9.99")

    def test_duplicate_registration_rejected(self):
        catalog = ExternalSoftwareCatalog()
        with pytest.raises(ConfigurationError):
            catalog.register(default_external_software()[0])

    def test_contains_and_len(self):
        catalog = ExternalSoftwareCatalog()
        assert "ROOT" in catalog
        assert "MySQL" in catalog
        assert len(catalog) >= 10

    def test_products_sorted(self):
        products = ExternalSoftwareCatalog().products()
        assert products == sorted(products)
