"""Audits of the CI tooling: the ci.sh stages and the bench marker contract.

The tier-1 invocation (``pytest -x -q -m "not bench"``, see ROADMAP.md)
relies on every test below ``benchmarks/`` carrying the ``bench`` marker —
otherwise slow paper-reproduction benchmarks leak into CI.  The marker is
applied centrally by ``benchmarks/conftest.py``; these tests pin that the
hook stays in place, that it really covers every ``test_bench_*.py`` file,
and that ``scripts/ci.sh`` runs the documented stages.
"""

import os
import re
import stat
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCHMARKS_DIR = os.path.join(REPO_ROOT, "benchmarks")
CI_SCRIPT = os.path.join(REPO_ROOT, "scripts", "ci.sh")


class TestBenchMarkerAudit:
    def test_conftest_applies_the_bench_marker_centrally(self):
        with open(os.path.join(BENCHMARKS_DIR, "conftest.py")) as handle:
            source = handle.read()
        assert "def pytest_collection_modifyitems" in source
        assert "pytest.mark.bench" in source

    def test_every_bench_module_lives_under_the_marked_directory(self):
        """The conftest marks by path; every test_bench_* file must be there."""
        modules = [
            name
            for name in os.listdir(BENCHMARKS_DIR)
            if re.match(r"test_bench_.*\.py$", name)
        ]
        assert modules, "the benchmark suite should not be empty"
        for name in modules:
            path = os.path.join(BENCHMARKS_DIR, name)
            assert os.path.dirname(path) == BENCHMARKS_DIR

    def test_tier1_deselection_collects_no_benchmarks(self):
        """`-m "not bench"` below benchmarks/ must select zero tests."""
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        completed = subprocess.run(
            [
                sys.executable, "-m", "pytest", "benchmarks/",
                "-m", "not bench", "--collect-only", "-q", "-p", "no:cacheprovider",
            ],
            cwd=REPO_ROOT,
            env=environment,
            capture_output=True,
            text=True,
            timeout=120,
        )
        selected = [
            line for line in completed.stdout.splitlines() if "::" in line
        ]
        assert selected == [], (
            "benchmarks escaped the bench marker:\n" + "\n".join(selected)
        )
        assert "deselected" in completed.stdout


class TestCiScript:
    def test_ci_script_exists_and_is_executable(self):
        assert os.path.isfile(CI_SCRIPT)
        assert os.stat(CI_SCRIPT).st_mode & stat.S_IXUSR

    def test_ci_script_runs_the_documented_stages(self):
        with open(CI_SCRIPT) as handle:
            source = handle.read()
        # The tier-1 invocation documented in ROADMAP.md ...
        assert 'pytest -x -q -m "not bench"' in source
        # ... the headless example smoke runs ...
        assert "-m examples" in source
        # ... the bench marker audit ...
        assert "--collect-only" in source and "benchmarks/" in source
        # ... the history-ledger write audit ...
        assert "history-ledger write audit" in source
        assert "src/repro/history/" in source
        # ... the scheduler monotonic-clock audit ...
        assert "monotonic-clock audit" in source
        assert "src/repro/scheduler" in source
        # ... the lifecycle-purity audit ...
        assert "lifecycle-purity audit" in source
        assert "src/repro/plugins" in source
        # ... the service-purity audit ...
        assert "service-purity audit" in source
        assert "src/repro/service" in source
        # ... the telemetry-purity audit ...
        assert "telemetry-purity audit" in source
        assert "src/repro/telemetry" in source
        assert "src/repro/hepdata" in source
        # ... the bench-trend gate ...
        assert "bench-trends check" in source
        # ... and the explicit backend-parity shard.
        assert "REPRO_PARITY_BACKENDS=simulated,threads,processes" in source
        assert "test_scheduler_determinism.py" in source


class TestHistoryLedgerWriteAudit:
    """The `history` storage namespace is owned by the ledger.

    A raw ``put`` into the namespace would bypass the append-only journal's
    idempotence and index bookkeeping; ``scripts/ci.sh`` greps for literal
    accesses outside ``src/repro/history/`` and this test enforces the same
    rule in-process (so a plain pytest run catches violations without the
    shell stage).
    """

    PATTERN = re.compile(
        r"(?:put|create_namespace|namespace)\(\s*[\"']history[\"']"
    )

    def _source_files(self):
        src_root = os.path.join(REPO_ROOT, "src")
        for directory, _subdirectories, filenames in os.walk(src_root):
            for filename in filenames:
                if filename.endswith(".py"):
                    yield os.path.join(directory, filename)

    def test_no_raw_history_namespace_access_outside_the_ledger(self):
        owner = os.path.join(REPO_ROOT, "src", "repro", "history") + os.sep
        violations = []
        for path in self._source_files():
            if path.startswith(owner):
                continue
            with open(path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if self.PATTERN.search(line):
                        violations.append(f"{path}:{line_number}: {line.strip()}")
        assert violations == [], (
            "raw 'history' namespace access outside src/repro/history/ — "
            "write through ValidationHistoryLedger instead:\n"
            + "\n".join(violations)
        )

    def test_the_audit_pattern_catches_a_raw_put(self):
        """The regex really fires on the write shapes it must forbid."""
        for violation in (
            'storage.put("history", "journal_1", {})',
            "storage.namespace('history').put('journal_1', {})",
            'storage.create_namespace("history")',
        ):
            assert self.PATTERN.search(violation)
        # The sanctioned shape — going through the ledger's constant — is
        # not a literal and passes.
        assert not self.PATTERN.search(
            "storage.create_namespace(ValidationHistoryLedger.NAMESPACE)"
        )


class TestLifecyclePurityAudit:
    """Tickets and history ingestion flow through the plugin layer.

    Automated intervention tickets (``InterventionTracker()``) and history
    ingestion (``ingest_cycle()``) are owned by ``src/repro/plugins`` (with
    the defining core/history modules): a direct call elsewhere would
    bypass the lifecycle bus — tickets nobody's observer saw, history the
    regression alerter never ran over.  ``scripts/ci.sh`` greps for the
    calls; this test enforces the same rule in-process.
    """

    PATTERN = re.compile(r"InterventionTracker\(|ingest_cycle\(")

    #: Repo-relative path prefixes (and one file) sanctioned to construct
    #: trackers or ingest history — the plugin layer and the owning modules.
    ALLOWED = (
        os.path.join("src", "repro", "plugins") + os.sep,
        os.path.join("src", "repro", "history") + os.sep,
        os.path.join("src", "repro", "core", "intervention.py"),
    )

    def _source_files(self):
        src_root = os.path.join(REPO_ROOT, "src")
        for directory, _subdirectories, filenames in os.walk(src_root):
            for filename in filenames:
                if filename.endswith(".py"):
                    yield os.path.join(directory, filename)

    def test_no_direct_tracker_or_ingestion_outside_the_plugin_layer(self):
        violations = []
        for path in self._source_files():
            relative = os.path.relpath(path, REPO_ROOT)
            if any(
                relative == allowed or relative.startswith(allowed)
                for allowed in self.ALLOWED
            ):
                continue
            with open(path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if self.PATTERN.search(line):
                        violations.append(f"{relative}:{line_number}: {line.strip()}")
        assert violations == [], (
            "direct tracker construction or history ingestion outside the "
            "plugin layer — route it through repro.plugins "
            "(new_intervention_tracker / HistoryRecorderPlugin) instead:\n"
            + "\n".join(violations)
        )

    def test_the_audit_pattern_catches_the_forbidden_calls(self):
        """The regex really fires on the shapes it must forbid."""
        for violation in (
            "self.interventions = InterventionTracker()",
            "ledger.ingest_cycle(cell.result, configuration=configuration)",
        ):
            assert self.PATTERN.search(violation)
        # The sanctioned shapes — the plugin-layer factory and the plugin
        # class — pass.
        assert not self.PATTERN.search(
            "self.interventions = new_intervention_tracker()"
        )
        assert not self.PATTERN.search(
            "registry.add_observer(HistoryRecorderPlugin(system))"
        )


class TestSchedulerMonotonicClockAudit:
    """src/repro/scheduler/ must time itself with time.monotonic() only.

    The wall-clock backends report task offsets from a campaign-local
    origin; a ``time.time()`` call would tie those offsets to a clock NTP
    can step backwards, silently corrupting makespans and utilisation.
    ``scripts/ci.sh`` greps for the call; this test enforces the same rule
    in-process.
    """

    PATTERN = re.compile(r"time\.time\(")

    def test_no_wall_clock_calls_in_the_scheduler(self):
        scheduler_root = os.path.join(REPO_ROOT, "src", "repro", "scheduler")
        violations = []
        for directory, _subdirectories, filenames in os.walk(scheduler_root):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(directory, filename)
                with open(path, encoding="utf-8") as handle:
                    for line_number, line in enumerate(handle, start=1):
                        if self.PATTERN.search(line):
                            violations.append(
                                f"{path}:{line_number}: {line.strip()}"
                            )
        assert violations == [], (
            "wall-clock time.time() call in src/repro/scheduler/ — "
            "use time.monotonic() instead:\n" + "\n".join(violations)
        )

    def test_the_audit_pattern_distinguishes_the_clocks(self):
        assert self.PATTERN.search("started = time.time()")
        assert not self.PATTERN.search("started = time.monotonic()")


class TestServicePurityAudit:
    """src/repro/service/ queues, schedules and bills — it never executes.

    The validation daemon's whole determinism story rests on every queued
    campaign flowing through the one sanctioned entrypoint,
    ``SPSystem.submit``: a backend or scheduler construction under
    ``src/repro/service/`` would open a second execution path around it,
    and a ``time.time()`` call would tie rate limiting to a wall clock NTP
    can step (the token buckets run on an injectable monotonic clock).
    ``scripts/ci.sh`` greps for the calls; this test enforces the same
    rule in-process.
    """

    PATTERN = re.compile(
        r"[A-Za-z_]*Backend\(|CampaignScheduler\(|execution_backend\(|time\.time\("
    )

    def _source_files(self):
        service_root = os.path.join(REPO_ROOT, "src", "repro", "service")
        for directory, _subdirectories, filenames in os.walk(service_root):
            for filename in filenames:
                if filename.endswith(".py"):
                    yield os.path.join(directory, filename)

    def test_no_execution_or_wall_clock_in_the_service_layer(self):
        violations = []
        for path in self._source_files():
            with open(path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if self.PATTERN.search(line):
                        violations.append(f"{path}:{line_number}: {line.strip()}")
        assert violations == [], (
            "execution or wall-clock call under src/repro/service/ — "
            "dispatch through SPSystem.submit and time with a monotonic "
            "clock instead:\n" + "\n".join(violations)
        )

    def test_the_audit_pattern_catches_the_forbidden_calls(self):
        """The regex really fires on the shapes it must forbid."""
        for violation in (
            "backend = ShardedBackend(shards=2)",
            "scheduler = CampaignScheduler(system, workers=2)",
            'backend = execution_backend("threads")',
            "now = time.time()",
        ):
            assert self.PATTERN.search(violation)
        # The sanctioned shapes — submitting through the system and the
        # injectable monotonic clock — pass.
        assert not self.PATTERN.search("handle = self.system.submit(spec)")
        assert not self.PATTERN.search("return time.monotonic()")
        assert not self.PATTERN.search("self.clock = clock or monotonic_clock")


class TestTelemetryPurityAudit:
    """Telemetry observes on monotonic clocks; science stays uninstrumented.

    Two rules, both also enforced as a ``scripts/ci.sh`` stage: no
    ``time.time()`` under ``src/repro/telemetry/`` (the registry and
    tracer run on injectable monotonic clocks, so metric timestamps can
    never be stepped by NTP), and no ``repro.telemetry`` import under the
    science layers ``src/repro/hepdata/`` and ``src/repro/environment/``
    (instrumentation wraps the science from the outside; a science module
    importing the observability layer could start influencing the numbers
    it reports).
    """

    CLOCK_PATTERN = re.compile(r"time\.time\(")
    IMPORT_PATTERN = re.compile(r"(?:from|import)\s+repro\.telemetry")

    #: Science layers that must never import the telemetry package.
    SCIENCE_ROOTS = ("hepdata", "environment")

    def _source_files(self, *parts):
        root = os.path.join(REPO_ROOT, "src", "repro", *parts)
        for directory, _subdirectories, filenames in os.walk(root):
            for filename in filenames:
                if filename.endswith(".py"):
                    yield os.path.join(directory, filename)

    def test_no_wall_clock_calls_in_the_telemetry_layer(self):
        violations = []
        for path in self._source_files("telemetry"):
            with open(path, encoding="utf-8") as handle:
                for line_number, line in enumerate(handle, start=1):
                    if self.CLOCK_PATTERN.search(line):
                        violations.append(f"{path}:{line_number}: {line.strip()}")
        assert violations == [], (
            "wall-clock time call in src/repro/telemetry/ — use "
            "time.monotonic() (or the injected clock) instead:\n"
            + "\n".join(violations)
        )

    def test_science_layers_do_not_import_telemetry(self):
        violations = []
        for science_root in self.SCIENCE_ROOTS:
            for path in self._source_files(science_root):
                with open(path, encoding="utf-8") as handle:
                    for line_number, line in enumerate(handle, start=1):
                        if self.IMPORT_PATTERN.search(line):
                            violations.append(
                                f"{path}:{line_number}: {line.strip()}"
                            )
        assert violations == [], (
            "repro.telemetry imported from a science layer — hepdata/ and "
            "environment/ must stay instrumentation-free:\n"
            + "\n".join(violations)
        )

    def test_the_audit_patterns_catch_the_forbidden_shapes(self):
        """The regexes really fire on the shapes they must forbid."""
        assert self.CLOCK_PATTERN.search("stamp = time.time()")
        assert not self.CLOCK_PATTERN.search("stamp = time.monotonic()")
        for violation in (
            "from repro.telemetry import Telemetry",
            "import repro.telemetry",
            "from repro.telemetry.metrics import MetricsRegistry",
        ):
            assert self.IMPORT_PATTERN.search(violation)
        # Science importing its own siblings passes.
        assert not self.IMPORT_PATTERN.search(
            "from repro.environment.compilers import Compiler"
        )
