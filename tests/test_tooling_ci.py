"""Audits of the CI tooling: the ci.sh stages and the bench marker contract.

The tier-1 invocation (``pytest -x -q -m "not bench"``, see ROADMAP.md)
relies on every test below ``benchmarks/`` carrying the ``bench`` marker —
otherwise slow paper-reproduction benchmarks leak into CI.  The marker is
applied centrally by ``benchmarks/conftest.py``; these tests pin that the
hook stays in place, that it really covers every ``test_bench_*.py`` file,
and that ``scripts/ci.sh`` runs the documented stages.
"""

import os
import re
import stat
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCHMARKS_DIR = os.path.join(REPO_ROOT, "benchmarks")
CI_SCRIPT = os.path.join(REPO_ROOT, "scripts", "ci.sh")


class TestBenchMarkerAudit:
    def test_conftest_applies_the_bench_marker_centrally(self):
        with open(os.path.join(BENCHMARKS_DIR, "conftest.py")) as handle:
            source = handle.read()
        assert "def pytest_collection_modifyitems" in source
        assert "pytest.mark.bench" in source

    def test_every_bench_module_lives_under_the_marked_directory(self):
        """The conftest marks by path; every test_bench_* file must be there."""
        modules = [
            name
            for name in os.listdir(BENCHMARKS_DIR)
            if re.match(r"test_bench_.*\.py$", name)
        ]
        assert modules, "the benchmark suite should not be empty"
        for name in modules:
            path = os.path.join(BENCHMARKS_DIR, name)
            assert os.path.dirname(path) == BENCHMARKS_DIR

    def test_tier1_deselection_collects_no_benchmarks(self):
        """`-m "not bench"` below benchmarks/ must select zero tests."""
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH")
            else ""
        )
        completed = subprocess.run(
            [
                sys.executable, "-m", "pytest", "benchmarks/",
                "-m", "not bench", "--collect-only", "-q", "-p", "no:cacheprovider",
            ],
            cwd=REPO_ROOT,
            env=environment,
            capture_output=True,
            text=True,
            timeout=120,
        )
        selected = [
            line for line in completed.stdout.splitlines() if "::" in line
        ]
        assert selected == [], (
            "benchmarks escaped the bench marker:\n" + "\n".join(selected)
        )
        assert "deselected" in completed.stdout


class TestCiScript:
    def test_ci_script_exists_and_is_executable(self):
        assert os.path.isfile(CI_SCRIPT)
        assert os.stat(CI_SCRIPT).st_mode & stat.S_IXUSR

    def test_ci_script_runs_the_documented_stages(self):
        with open(CI_SCRIPT) as handle:
            source = handle.read()
        # The tier-1 invocation documented in ROADMAP.md ...
        assert 'pytest -x -q -m "not bench"' in source
        # ... the headless example smoke runs ...
        assert "-m examples" in source
        # ... and the bench marker audit.
        assert "--collect-only" in source and "benchmarks/" in source
