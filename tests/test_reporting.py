"""Tests for the reporting layer: summary matrices, web pages and exports."""

import json

import pytest

from repro.core.runner import ValidationRunner
from repro.reporting.export import (
    catalog_to_rows,
    matrix_to_csv,
    matrix_to_json,
    rows_to_csv,
    rows_to_json,
    rows_to_text,
)
from repro.reporting.summary import ValidationSummaryBuilder
from repro.reporting.webpages import STATUS_COLOURS, StatusPageGenerator


@pytest.fixture(scope="module")
def validation_history(tiny_zeus, tiny_hermes, standard_configurations):
    """Runs of two experiments over two configurations, with SL6 failures."""
    runner = ValidationRunner()
    runs = []
    keys = {"SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"}
    for configuration in standard_configurations:
        if configuration.key not in keys:
            continue
        for experiment in (tiny_zeus, tiny_hermes):
            runs.append(runner.run(experiment, configuration))
    return runner, runs


class TestSummaryMatrix:
    def test_matrix_dimensions(self, validation_history):
        _, runs = validation_history
        matrix = ValidationSummaryBuilder().from_runs(runs)
        assert set(matrix.experiments) == {"ZEUS", "HERMES"}
        assert matrix.experiments[0] == "ZEUS"  # figure-3 stacking order
        assert len(matrix.configurations) == 2
        assert matrix.total_runs == len(runs)

    def test_problem_cells_only_on_sl6(self, validation_history):
        _, runs = validation_history
        matrix = ValidationSummaryBuilder().from_runs(runs)
        for cell in matrix.problem_cells():
            assert cell.configuration_key == "SL6_64bit_gcc4.4"
        assert 0.9 < matrix.overall_pass_fraction() < 1.0

    def test_cell_status_values(self, validation_history):
        _, runs = validation_history
        matrix = ValidationSummaryBuilder().from_runs(runs)
        statuses = {cell.status for cell in matrix.cells.values()}
        assert "ok" in statuses
        assert statuses <= {"ok", "problems", "incomplete", "not-run"}

    def test_render_text_contains_experiments_and_total(self, validation_history):
        _, runs = validation_history
        matrix = ValidationSummaryBuilder().from_runs(runs)
        text = matrix.render_text()
        assert "ZEUS (orange)" in text
        assert "HERMES (red)" in text
        assert f"total validation runs recorded: {len(runs)}" in text

    def test_rows_flattening(self, validation_history):
        _, runs = validation_history
        matrix = ValidationSummaryBuilder().from_runs(runs)
        rows = matrix.rows()
        assert rows
        assert {"experiment", "process", "configuration", "passed", "failed",
                "skipped", "status"} <= set(rows[0])

    def test_from_catalog_matches_run_totals(self, validation_history):
        runner, runs = validation_history
        matrix = ValidationSummaryBuilder().from_catalog(runner.catalog)
        total_executions = sum(cell.n_total for cell in matrix.cells.values())
        assert total_executions == sum(run.n_jobs for run in runs)

    def test_headline_numbers(self, validation_history):
        runner, runs = validation_history
        numbers = ValidationSummaryBuilder().headline_numbers(runner.catalog)
        assert numbers["total_runs"] == len(runs)
        assert numbers["experiments"] == 2
        assert numbers["configurations"] == 2
        assert numbers["total_failures"] > 0


class TestStatusPages:
    def test_run_page_contains_all_tests(self, validation_history):
        runner, runs = validation_history
        generator = StatusPageGenerator(runner.storage, runner.catalog)
        run = runs[0]
        page = generator.run_page(run)
        assert page.startswith("<!DOCTYPE html>")
        assert run.run_id in page
        for job in run.jobs[:5]:
            assert job.test_name in page
        assert runner.storage.exists("reports", f"runpage_{run.run_id}")

    def test_failed_cells_coloured_red(self, validation_history):
        runner, runs = validation_history
        generator = StatusPageGenerator(runner.storage, runner.catalog)
        failing_run = next(run for run in runs if not run.all_passed)
        page = generator.run_page(failing_run)
        assert STATUS_COLOURS["failed"] in page

    def test_index_page_groups_by_description(self, validation_history):
        runner, runs = validation_history
        generator = StatusPageGenerator(runner.storage, runner.catalog)
        page = generator.index_page()
        for run in runs:
            assert run.run_id in page
        assert runner.storage.exists("reports", "index")

    def test_summary_page_escapes_content(self, validation_history):
        runner, _ = validation_history
        generator = StatusPageGenerator(runner.storage, runner.catalog)
        page = generator.summary_page("ZEUS <matrix> & stuff")
        assert "&lt;matrix&gt;" in page
        assert "&amp;" in page


class TestExports:
    def test_catalog_rows_and_csv(self, validation_history):
        runner, runs = validation_history
        rows = catalog_to_rows(runner.catalog)
        assert len(rows) == len(runs)
        csv_text = rows_to_csv(rows)
        assert csv_text.splitlines()[0].startswith("run_id,")
        assert len(csv_text.splitlines()) == len(runs) + 1

    def test_empty_rows_to_csv_and_text(self):
        assert rows_to_csv([]) == ""
        assert rows_to_text([]) == "(no rows)"

    def test_rows_to_json_round_trip(self, validation_history):
        runner, _ = validation_history
        rows = catalog_to_rows(runner.catalog)
        parsed = json.loads(rows_to_json(rows))
        assert parsed[0]["run_id"] == rows[0]["run_id"]

    def test_rows_to_text_column_selection(self, validation_history):
        runner, _ = validation_history
        rows = catalog_to_rows(runner.catalog)
        text = rows_to_text(rows, columns=["run_id", "overall_status"])
        assert "run_id" in text
        assert "configuration" not in text.splitlines()[0]

    def test_matrix_exports(self, validation_history):
        _, runs = validation_history
        matrix = ValidationSummaryBuilder().from_runs(runs)
        csv_text = matrix_to_csv(matrix)
        json_text = matrix_to_json(matrix)
        assert csv_text.splitlines()[0].startswith("experiment,")
        assert json.loads(json_text)
