"""Tests for the DPHEP preservation levels and the test specification model."""

import pytest

from repro._common import ConfigurationError, ValidationError
from repro.core.levels import (
    DPHEP_LEVELS,
    PreservationLevel,
    level_definition,
    preservation_table,
    required_capabilities,
    requires_full_chain,
)
from repro.core.testspec import (
    AnalysisChain,
    ExecutionContext,
    OutputKind,
    TestKind,
    TestOutput,
    ValidationTestSpec,
)
from repro.hepdata.histogram import Histogram1D, HistogramSet


class TestPreservationLevels:
    def test_table_has_four_levels(self):
        assert len(DPHEP_LEVELS) == 4
        assert [definition.number for definition in DPHEP_LEVELS] == [1, 2, 3, 4]

    def test_table_rows_match_paper(self):
        table = preservation_table()
        assert table[0]["preservation_model"] == "Provide additional documentation"
        assert table[0]["use_case"] == "Publication related info search"
        assert table[1]["use_case"] == "Outreach, simple training analyses"
        assert "analysis level software" in table[2]["preservation_model"]
        assert "simulation and reconstruction software" in table[3]["preservation_model"]
        assert table[3]["use_case"] == "Retain the full potential of the experimental data"

    def test_level_definition_lookup(self):
        definition = level_definition(PreservationLevel.FULL_SOFTWARE)
        assert definition.number == 4
        assert definition.area == "technical"

    def test_required_capabilities_grow_with_level(self):
        lengths = [
            len(required_capabilities(level))
            for level in (
                PreservationLevel.DOCUMENTATION,
                PreservationLevel.SIMPLIFIED_FORMAT,
                PreservationLevel.ANALYSIS_SOFTWARE,
                PreservationLevel.FULL_SOFTWARE,
            )
        ]
        assert lengths == sorted(lengths)
        assert "simulation" in required_capabilities(PreservationLevel.FULL_SOFTWARE)
        assert "simulation" not in required_capabilities(PreservationLevel.ANALYSIS_SOFTWARE)

    def test_requires_full_chain_only_level4(self):
        assert requires_full_chain(PreservationLevel.FULL_SOFTWARE)
        assert not requires_full_chain(PreservationLevel.ANALYSIS_SOFTWARE)

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            required_capabilities(7)  # type: ignore[arg-type]


def _passing_executor(context: ExecutionContext) -> TestOutput:
    return TestOutput(kind=OutputKind.YES_NO, passed=True, yes_no=True)


class TestTestOutput:
    def test_yes_no_requires_payload(self):
        output = TestOutput(kind=OutputKind.YES_NO, passed=True)
        with pytest.raises(ValidationError):
            output.validate()

    def test_numbers_requires_payload(self):
        with pytest.raises(ValidationError):
            TestOutput(kind=OutputKind.NUMBERS, passed=True).validate()

    def test_text_and_file_summary_require_payload(self):
        with pytest.raises(ValidationError):
            TestOutput(kind=OutputKind.TEXT, passed=True).validate()
        with pytest.raises(ValidationError):
            TestOutput(kind=OutputKind.FILE_SUMMARY, passed=True).validate()

    def test_histograms_require_non_empty_set(self):
        with pytest.raises(ValidationError):
            TestOutput(kind=OutputKind.HISTOGRAMS, passed=True, histograms=HistogramSet()).validate()

    def test_valid_outputs_pass_validation(self):
        TestOutput(kind=OutputKind.YES_NO, passed=True, yes_no=True).validate()
        TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers={"x": 1.0}).validate()
        TestOutput(kind=OutputKind.TEXT, passed=True, text="ok").validate()
        histograms = HistogramSet([Histogram1D("h", 2, 0.0, 1.0)])
        TestOutput(kind=OutputKind.HISTOGRAMS, passed=True, histograms=histograms).validate()

    def test_document_round_trip(self):
        histograms = HistogramSet([Histogram1D("h", 2, 0.0, 1.0)])
        histograms.get("h").fill(0.3)
        output = TestOutput(
            kind=OutputKind.HISTOGRAMS, passed=True, histograms=histograms,
            messages=["note"],
        )
        rebuilt = TestOutput.from_document(output.to_document())
        assert rebuilt.kind is OutputKind.HISTOGRAMS
        assert rebuilt.passed
        assert rebuilt.histograms.get("h").total == 1.0
        assert rebuilt.messages == ["note"]

    def test_numbers_document_round_trip(self):
        output = TestOutput(kind=OutputKind.NUMBERS, passed=False, numbers={"a": 1.5})
        rebuilt = TestOutput.from_document(output.to_document())
        assert rebuilt.numbers == {"a": 1.5}
        assert not rebuilt.passed


class TestValidationTestSpec:
    def test_chain_step_requires_chain_name(self):
        with pytest.raises(ValidationError):
            ValidationTestSpec(
                name="step", experiment="H1", kind=TestKind.CHAIN_STEP,
                executor=_passing_executor,
            )

    def test_standalone_must_not_name_chain(self):
        with pytest.raises(ValidationError):
            ValidationTestSpec(
                name="test", experiment="H1", kind=TestKind.STANDALONE,
                executor=_passing_executor, chain="some-chain",
            )

    def test_negative_chain_index_rejected(self):
        with pytest.raises(ValidationError):
            ValidationTestSpec(
                name="step", experiment="H1", kind=TestKind.CHAIN_STEP,
                executor=_passing_executor, chain="c", chain_index=-1,
            )


class TestAnalysisChain:
    def _step(self, index, chain="my-chain"):
        return ValidationTestSpec(
            name=f"step-{index}", experiment="H1", kind=TestKind.CHAIN_STEP,
            executor=_passing_executor, chain=chain, chain_index=index,
        )

    def test_steps_must_be_added_in_order(self):
        chain = AnalysisChain(name="my-chain", experiment="H1")
        chain.add_step(self._step(0))
        with pytest.raises(ValidationError):
            chain.add_step(self._step(2))
        chain.add_step(self._step(1))
        assert chain.step_names() == ["step-0", "step-1"]
        assert len(chain) == 2

    def test_step_must_belong_to_chain(self):
        chain = AnalysisChain(name="my-chain", experiment="H1")
        with pytest.raises(ValidationError):
            chain.add_step(self._step(0, chain="other-chain"))

    def test_standalone_test_rejected_as_step(self):
        chain = AnalysisChain(name="my-chain", experiment="H1")
        standalone = ValidationTestSpec(
            name="test", experiment="H1", kind=TestKind.STANDALONE,
            executor=_passing_executor,
        )
        with pytest.raises(ValidationError):
            chain.add_step(standalone)


class TestExperimentDefinition:
    def test_counts(self, tiny_h1):
        assert tiny_h1.compilation_test_count() == len(tiny_h1.inventory)
        assert tiny_h1.chain_test_count() == sum(len(chain) for chain in tiny_h1.chains)
        assert tiny_h1.total_test_count() == (
            tiny_h1.compilation_test_count()
            + len(tiny_h1.standalone_tests)
            + tiny_h1.chain_test_count()
        )

    def test_all_tests_order(self, tiny_h1):
        tests = tiny_h1.all_tests()
        assert len(tests) == len(tiny_h1.standalone_tests) + tiny_h1.chain_test_count()
        # Standalone tests come first, chain steps afterwards.
        assert tests[0].kind is TestKind.STANDALONE
        assert tests[-1].kind is TestKind.CHAIN_STEP

    def test_chain_lookup(self, tiny_h1):
        chain = tiny_h1.chains[0]
        assert tiny_h1.chain(chain.name) is chain
        with pytest.raises(ValidationError):
            tiny_h1.chain("ghost-chain")

    def test_processes_listed(self, tiny_h1):
        processes = tiny_h1.processes()
        assert "nc_dis" in processes
        assert "infrastructure" in processes

    def test_foreign_test_rejected(self, tiny_h1):
        from repro.core.testspec import ExperimentDefinition
        from repro.core.levels import PreservationLevel

        foreign_test = ValidationTestSpec(
            name="foreign", experiment="ZEUS", kind=TestKind.STANDALONE,
            executor=_passing_executor,
        )
        with pytest.raises(ValidationError):
            ExperimentDefinition(
                name="H1", full_name="H1", preservation_level=PreservationLevel.FULL_SOFTWARE,
                inventory=tiny_h1.inventory, standalone_tests=[foreign_test],
            )
