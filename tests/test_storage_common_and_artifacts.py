"""Tests for the common storage, namespaces and the artifact store."""

import json
import os

import pytest

from repro._common import StorageError
from repro.buildsys.builder import PackageBuilder
from repro.buildsys.package import Language, PackageCategory, SoftwarePackage
from repro.storage.artifacts import ArtifactStore
from repro.storage.common_storage import CommonStorage, DEFAULT_NAMESPACES, StorageNamespace


class TestStorageNamespace:
    def test_put_get_exists(self):
        namespace = StorageNamespace("tests")
        namespace.put("doc1", {"value": 1})
        assert namespace.exists("doc1")
        assert namespace.get("doc1") == {"value": 1}

    def test_missing_key_raises(self):
        with pytest.raises(StorageError):
            StorageNamespace("tests").get("ghost")

    def test_overwrite_control(self):
        namespace = StorageNamespace("tests")
        namespace.put("doc", 1)
        namespace.put("doc", 2)
        assert namespace.get("doc") == 2
        with pytest.raises(StorageError):
            namespace.put("doc", 3, overwrite=False)

    def test_non_json_document_rejected(self):
        namespace = StorageNamespace("tests")
        with pytest.raises(StorageError):
            namespace.put("doc", object())

    def test_delete(self):
        namespace = StorageNamespace("tests")
        namespace.put("doc", 1)
        namespace.delete("doc")
        assert not namespace.exists("doc")
        with pytest.raises(StorageError):
            namespace.delete("doc")

    def test_keys_with_prefix(self):
        namespace = StorageNamespace("tests")
        namespace.put("run_001", 1)
        namespace.put("run_002", 2)
        namespace.put("other", 3)
        assert namespace.keys("run_") == ["run_001", "run_002"]
        assert len(namespace) == 3


class TestCommonStorage:
    def test_default_namespaces_exist(self):
        storage = CommonStorage()
        for name in DEFAULT_NAMESPACES:
            assert name in storage.namespaces()

    def test_unknown_namespace_raises(self):
        with pytest.raises(StorageError):
            CommonStorage().namespace("ghost")

    def test_put_and_get_via_facade(self):
        storage = CommonStorage()
        storage.put("results", "doc", {"passed": True})
        assert storage.get("results", "doc") == {"passed": True}
        assert storage.exists("results", "doc")
        assert not storage.exists("results", "other")
        assert not storage.exists("ghost-namespace", "doc")

    def test_total_documents(self):
        storage = CommonStorage()
        storage.put("results", "a", 1)
        storage.put("tests", "b", 2)
        assert storage.total_documents() == 2

    def test_create_namespace_idempotent(self):
        storage = CommonStorage()
        first = storage.create_namespace("extra")
        second = storage.create_namespace("extra")
        assert first is second

    def test_persist_and_load_round_trip(self, tmp_path):
        storage = CommonStorage()
        storage.put("results", "run_001", {"status": "passed"})
        storage.put("recipes", "recipe_a", {"os": "SL6"})
        written = storage.persist(str(tmp_path))
        assert len(written) == 2
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.get("results", "run_001") == {"status": "passed"}
        assert loaded.get("recipes", "recipe_a") == {"os": "SL6"}

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            CommonStorage.load(str(tmp_path / "does-not-exist"))

    def test_persist_accumulates_regular_namespaces(self, tmp_path):
        """Run documents of earlier persists survive a smaller re-persist."""
        first = CommonStorage()
        first.put("results", "run_001", {"status": "passed"})
        first.put("results", "run_002", {"status": "passed"})
        first.persist(str(tmp_path))
        second = CommonStorage()
        second.put("results", "run_003", {"status": "failed"})
        second.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.keys("results") == ["run_001", "run_002", "run_003"]

    def test_persist_mirrors_journal_namespaces(self, tmp_path):
        """Mirrored (journal-backed) namespaces drop deleted documents.

        Without the mirror, records removed by a journal compaction would
        linger on disk and be resurrected by the next load.
        """
        # The build cache registers its namespace as mirrored on import.
        from repro.scheduler.cache import BuildCache
        from repro.storage.common_storage import MIRRORED_NAMESPACES

        assert BuildCache.NAMESPACE in MIRRORED_NAMESPACES
        storage = CommonStorage()
        namespace = storage.create_namespace("buildcache")
        namespace.put("journal_00000001", {"type": "entry"})
        namespace.put("journal_00000002", {"type": "entry"})
        storage.persist(str(tmp_path))
        namespace.delete("journal_00000002")  # a compaction dropped it
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.keys("buildcache") == ["journal_00000001"]


class TestJournalSegmentFiles:
    """Journal namespaces persist as batched segment files, not per-record.

    ``register_journal_namespace`` owners (the build cache's ``buildcache``,
    the history ledger's ``history``) get their ``journal_<seq>`` records
    batched into ``journal_segment_<first-seq>.json`` files of
    ``JOURNAL_SEGMENT_RECORDS`` records each; ``load`` explodes them back,
    so the in-memory journal representation never changes.
    """

    def _journal_storage(self, n_records, namespace_name="buildcache"):
        storage = CommonStorage()
        namespace = storage.create_namespace(namespace_name)
        for sequence in range(1, n_records + 1):
            namespace.put(
                f"journal_{sequence:08d}", {"type": "entry", "n": sequence}
            )
        return storage, namespace

    def test_records_round_trip_through_segments(self, tmp_path):
        storage, namespace = self._journal_storage(5)
        namespace.put("statistics", {"hits": 3})  # non-record document
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.keys("buildcache") == storage.keys("buildcache")
        for key in storage.keys("buildcache"):
            assert loaded.get("buildcache", key) == storage.get("buildcache", key)

    def test_persist_writes_o_segments_files(self, tmp_path):
        from repro.storage.common_storage import JOURNAL_SEGMENT_RECORDS

        n_records = JOURNAL_SEGMENT_RECORDS + 3  # two segments
        storage, _namespace = self._journal_storage(n_records)
        storage.persist(str(tmp_path))
        files = sorted(os.listdir(tmp_path / "buildcache"))
        assert files == [
            "journal_segment_00000001.json",
            f"journal_segment_{JOURNAL_SEGMENT_RECORDS + 1:08d}.json",
        ]
        loaded = CommonStorage.load(str(tmp_path))
        assert len(loaded.keys("buildcache")) == n_records

    def test_non_record_documents_keep_their_own_files(self, tmp_path):
        storage, namespace = self._journal_storage(2)
        namespace.put("statistics", {"hits": 1})
        namespace.put("lineage", {"epoch": 4})
        storage.persist(str(tmp_path))
        files = sorted(os.listdir(tmp_path / "buildcache"))
        assert files == [
            "journal_segment_00000001.json", "lineage.json", "statistics.json",
        ]

    def test_mirror_removes_stale_segment_files(self, tmp_path):
        """A compaction that shrinks the journal also shrinks the disk."""
        from repro.storage.common_storage import JOURNAL_SEGMENT_RECORDS

        storage, namespace = self._journal_storage(JOURNAL_SEGMENT_RECORDS + 1)
        storage.persist(str(tmp_path))
        assert len(os.listdir(tmp_path / "buildcache")) == 2
        # Compaction: everything collapses into one record.
        for key in namespace.keys(prefix="journal_"):
            namespace.delete(key)
        namespace.put("journal_00000001", {"type": "entry", "n": 1})
        storage.persist(str(tmp_path))
        files = sorted(os.listdir(tmp_path / "buildcache"))
        assert files == ["journal_segment_00000001.json"]
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.keys("buildcache") == ["journal_00000001"]

    def test_legacy_per_record_files_still_load(self, tmp_path):
        """Pre-segment storages (one file per record) remain readable."""
        target = tmp_path / "buildcache"
        target.mkdir()
        with open(target / "journal_00000001.json", "w") as handle:
            json.dump({"type": "entry", "n": 1}, handle)
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.get("buildcache", "journal_00000001") == {
            "type": "entry", "n": 1,
        }

    def test_mixed_padding_records_replay_in_append_order(self, tmp_path):
        """Legacy unpadded record keys must not reorder the journal.

        A journal written before the zero-padded key layout carries keys
        like ``journal_2`` and ``journal_10``; lexicographically ``_10``
        sorts before ``_2``, which used to replay (and persist into
        segments) out of append order.  Both the journal view and the
        persisted segment batching must order records numerically.
        """
        from repro.storage.common_storage import AppendOnlyJournal

        storage = CommonStorage()
        namespace = storage.create_namespace("buildcache")
        # A legacy journal with unpadded keys, written out of lexicographic
        # order on purpose, plus one modern padded record.
        namespace.put("journal_10", {"type": "entry", "n": 10})
        namespace.put("journal_2", {"type": "entry", "n": 2})
        namespace.put("journal_9", {"type": "entry", "n": 9})
        namespace.put("journal_00000011", {"type": "entry", "n": 11})
        namespace.put("statistics", {"hits": 0})  # non-record: ignored
        journal = AppendOnlyJournal(namespace)
        assert journal.keys() == [
            "journal_2", "journal_9", "journal_10", "journal_00000011",
        ]
        assert [
            (sequence, record["n"]) for sequence, record in journal.records()
        ] == [(2, 2), (9, 9), (10, 10), (11, 11)]
        # New appends continue after the highest sequence seen, whatever
        # the padding of the key that carried it.
        assert journal.append({"type": "entry", "n": 12}) == 12
        assert journal.keys()[-1] == "journal_00000012"
        # Segment persistence batches numerically too: the round trip
        # yields the same records in the same append order.
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        replayed = AppendOnlyJournal(loaded.namespace("buildcache"))
        assert [record["n"] for _sequence, record in replayed.records()] == [
            2, 9, 10, 11, 12,
        ]

    def test_unregistered_namespaces_do_not_segment(self, tmp_path):
        storage = CommonStorage()
        storage.put("results", "journal_00000001", {"n": 1})
        storage.persist(str(tmp_path))
        assert sorted(os.listdir(tmp_path / "results")) == [
            "journal_00000001.json"
        ]

    def test_history_namespace_is_registered(self):
        from repro.history.ledger import ValidationHistoryLedger
        from repro.storage.common_storage import (
            JOURNAL_NAMESPACE_PREFIXES,
            MIRRORED_NAMESPACES,
        )

        assert ValidationHistoryLedger.NAMESPACE in JOURNAL_NAMESPACE_PREFIXES
        assert ValidationHistoryLedger.NAMESPACE in MIRRORED_NAMESPACES


class TestArtifactStore:
    def _tarball(self, configuration, name="pkg-a"):
        package = SoftwarePackage(
            name=name, version="1.0", experiment="TESTEXP",
            category=PackageCategory.CORE, language=Language.FORTRAN,
            lines_of_code=1000,
        )
        return PackageBuilder().build_package(package, configuration).tarball

    def test_store_and_fetch(self, sl5_64_gcc44):
        store = ArtifactStore()
        tarball = self._tarball(sl5_64_gcc44)
        digest = store.store(tarball, label="run-1")
        assert store.exists(digest)
        assert store.fetch(digest) == tarball
        assert store.labels_for(digest) == ["run-1"]

    def test_deduplication(self, sl5_64_gcc44):
        store = ArtifactStore()
        tarball = self._tarball(sl5_64_gcc44)
        store.store(tarball, label="run-1")
        store.store(tarball, label="run-2")
        assert len(store) == 1
        assert store.labels_for(tarball.digest) == ["run-1", "run-2"]

    def test_missing_digest_raises(self):
        store = ArtifactStore()
        with pytest.raises(StorageError):
            store.fetch("deadbeef")
        with pytest.raises(StorageError):
            store.labels_for("deadbeef")

    def test_queries_by_package_and_configuration(self, sl5_64_gcc44, sl6_64_gcc44):
        store = ArtifactStore()
        store.store(self._tarball(sl5_64_gcc44), label="run-1")
        store.store(self._tarball(sl6_64_gcc44), label="run-2")
        store.store(self._tarball(sl5_64_gcc44, name="pkg-b"), label="run-1")
        assert len(store.artifacts_for_package("pkg-a")) == 2
        assert len(store.artifacts_for_configuration(sl5_64_gcc44.key)) == 2
        assert store.total_size_bytes() > 0

    def test_prune_unlabelled(self, sl5_64_gcc44):
        store = ArtifactStore()
        store.store(self._tarball(sl5_64_gcc44))
        store.store(self._tarball(sl5_64_gcc44, name="pkg-b"), label="run-1")
        removed = store.prune_unlabelled()
        assert removed == 1
        assert len(store) == 1
