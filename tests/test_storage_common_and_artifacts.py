"""Tests for the common storage, namespaces and the artifact store."""

import pytest

from repro._common import StorageError
from repro.buildsys.builder import PackageBuilder
from repro.buildsys.package import Language, PackageCategory, SoftwarePackage
from repro.storage.artifacts import ArtifactStore
from repro.storage.common_storage import CommonStorage, DEFAULT_NAMESPACES, StorageNamespace


class TestStorageNamespace:
    def test_put_get_exists(self):
        namespace = StorageNamespace("tests")
        namespace.put("doc1", {"value": 1})
        assert namespace.exists("doc1")
        assert namespace.get("doc1") == {"value": 1}

    def test_missing_key_raises(self):
        with pytest.raises(StorageError):
            StorageNamespace("tests").get("ghost")

    def test_overwrite_control(self):
        namespace = StorageNamespace("tests")
        namespace.put("doc", 1)
        namespace.put("doc", 2)
        assert namespace.get("doc") == 2
        with pytest.raises(StorageError):
            namespace.put("doc", 3, overwrite=False)

    def test_non_json_document_rejected(self):
        namespace = StorageNamespace("tests")
        with pytest.raises(StorageError):
            namespace.put("doc", object())

    def test_delete(self):
        namespace = StorageNamespace("tests")
        namespace.put("doc", 1)
        namespace.delete("doc")
        assert not namespace.exists("doc")
        with pytest.raises(StorageError):
            namespace.delete("doc")

    def test_keys_with_prefix(self):
        namespace = StorageNamespace("tests")
        namespace.put("run_001", 1)
        namespace.put("run_002", 2)
        namespace.put("other", 3)
        assert namespace.keys("run_") == ["run_001", "run_002"]
        assert len(namespace) == 3


class TestCommonStorage:
    def test_default_namespaces_exist(self):
        storage = CommonStorage()
        for name in DEFAULT_NAMESPACES:
            assert name in storage.namespaces()

    def test_unknown_namespace_raises(self):
        with pytest.raises(StorageError):
            CommonStorage().namespace("ghost")

    def test_put_and_get_via_facade(self):
        storage = CommonStorage()
        storage.put("results", "doc", {"passed": True})
        assert storage.get("results", "doc") == {"passed": True}
        assert storage.exists("results", "doc")
        assert not storage.exists("results", "other")
        assert not storage.exists("ghost-namespace", "doc")

    def test_total_documents(self):
        storage = CommonStorage()
        storage.put("results", "a", 1)
        storage.put("tests", "b", 2)
        assert storage.total_documents() == 2

    def test_create_namespace_idempotent(self):
        storage = CommonStorage()
        first = storage.create_namespace("extra")
        second = storage.create_namespace("extra")
        assert first is second

    def test_persist_and_load_round_trip(self, tmp_path):
        storage = CommonStorage()
        storage.put("results", "run_001", {"status": "passed"})
        storage.put("recipes", "recipe_a", {"os": "SL6"})
        written = storage.persist(str(tmp_path))
        assert len(written) == 2
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.get("results", "run_001") == {"status": "passed"}
        assert loaded.get("recipes", "recipe_a") == {"os": "SL6"}

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            CommonStorage.load(str(tmp_path / "does-not-exist"))

    def test_persist_accumulates_regular_namespaces(self, tmp_path):
        """Run documents of earlier persists survive a smaller re-persist."""
        first = CommonStorage()
        first.put("results", "run_001", {"status": "passed"})
        first.put("results", "run_002", {"status": "passed"})
        first.persist(str(tmp_path))
        second = CommonStorage()
        second.put("results", "run_003", {"status": "failed"})
        second.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.keys("results") == ["run_001", "run_002", "run_003"]

    def test_persist_mirrors_journal_namespaces(self, tmp_path):
        """Mirrored (journal-backed) namespaces drop deleted documents.

        Without the mirror, records removed by a journal compaction would
        linger on disk and be resurrected by the next load.
        """
        # The build cache registers its namespace as mirrored on import.
        from repro.scheduler.cache import BuildCache
        from repro.storage.common_storage import MIRRORED_NAMESPACES

        assert BuildCache.NAMESPACE in MIRRORED_NAMESPACES
        storage = CommonStorage()
        namespace = storage.create_namespace("buildcache")
        namespace.put("journal_00000001", {"type": "entry"})
        namespace.put("journal_00000002", {"type": "entry"})
        storage.persist(str(tmp_path))
        namespace.delete("journal_00000002")  # a compaction dropped it
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        assert loaded.keys("buildcache") == ["journal_00000001"]


class TestArtifactStore:
    def _tarball(self, configuration, name="pkg-a"):
        package = SoftwarePackage(
            name=name, version="1.0", experiment="TESTEXP",
            category=PackageCategory.CORE, language=Language.FORTRAN,
            lines_of_code=1000,
        )
        return PackageBuilder().build_package(package, configuration).tarball

    def test_store_and_fetch(self, sl5_64_gcc44):
        store = ArtifactStore()
        tarball = self._tarball(sl5_64_gcc44)
        digest = store.store(tarball, label="run-1")
        assert store.exists(digest)
        assert store.fetch(digest) == tarball
        assert store.labels_for(digest) == ["run-1"]

    def test_deduplication(self, sl5_64_gcc44):
        store = ArtifactStore()
        tarball = self._tarball(sl5_64_gcc44)
        store.store(tarball, label="run-1")
        store.store(tarball, label="run-2")
        assert len(store) == 1
        assert store.labels_for(tarball.digest) == ["run-1", "run-2"]

    def test_missing_digest_raises(self):
        store = ArtifactStore()
        with pytest.raises(StorageError):
            store.fetch("deadbeef")
        with pytest.raises(StorageError):
            store.labels_for("deadbeef")

    def test_queries_by_package_and_configuration(self, sl5_64_gcc44, sl6_64_gcc44):
        store = ArtifactStore()
        store.store(self._tarball(sl5_64_gcc44), label="run-1")
        store.store(self._tarball(sl6_64_gcc44), label="run-2")
        store.store(self._tarball(sl5_64_gcc44, name="pkg-b"), label="run-1")
        assert len(store.artifacts_for_package("pkg-a")) == 2
        assert len(store.artifacts_for_configuration(sl5_64_gcc44.key)) == 2
        assert store.total_size_bytes() > 0

    def test_prune_unlabelled(self, sl5_64_gcc44):
        store = ArtifactStore()
        store.store(self._tarball(sl5_64_gcc44))
        store.store(self._tarball(sl5_64_gcc44, name="pkg-b"), label="run-1")
        removed = store.prune_unlabelled()
        assert removed == 1
        assert len(store) == 1
