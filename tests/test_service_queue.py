"""Unit tests for the service queue, token buckets and the tenant ledger.

These cover the scheduling substrate of the validation service without
executing any campaigns: per-tenant FIFO, weighted round-robin fair share,
priority lanes and cancellation on the :class:`SubmissionQueue`; the
token-bucket arithmetic (burst, refill, retry-after) on a manual clock;
and the persistence round trip of the tenant ledger's policies, usage and
experiment-ownership attribution.
"""

import pytest

from repro._common import ReproError, SchedulingError
from repro.scheduler.spec import CampaignSpec
from repro.service import (
    SERVICE_NAMESPACE,
    Submission,
    SubmissionQueue,
    TenantLedger,
    TenantPolicy,
    TenantUsage,
    TokenBucket,
)
from repro.storage.common_storage import CommonStorage


def _spec():
    return CampaignSpec(workers=1, persist_spec=False)


def _submission(tenant, sequence, priority="normal"):
    return Submission(
        submission_id=f"sub-{sequence:06d}",
        tenant=tenant,
        spec=_spec(),
        priority=priority,
        sequence=sequence,
    )


def _drain(queue, weights=None):
    order = []
    while True:
        submission = queue.next_submission(weights)
        if submission is None:
            return order
        order.append(submission)


class TestSubmissionQueue:
    def test_single_tenant_is_fifo(self):
        queue = SubmissionQueue()
        for sequence in range(1, 6):
            queue.enqueue(_submission("alice", sequence))
        order = [item.sequence for item in _drain(queue)]
        assert order == [1, 2, 3, 4, 5]

    def test_weighted_round_robin_interleaves_tenants(self):
        queue = SubmissionQueue()
        sequence = 0
        for _ in range(4):
            sequence += 1
            queue.enqueue(_submission("alice", sequence))
        for _ in range(2):
            sequence += 1
            queue.enqueue(_submission("bob", sequence))
        order = [
            item.tenant for item in _drain(queue, {"alice": 2, "bob": 1})
        ]
        # alice (weight 2) takes two turns per bob (weight 1) turn.
        assert order == ["alice", "alice", "bob", "alice", "alice", "bob"]

    def test_dispatch_order_is_independent_of_arrival_interleaving(self):
        # Same per-tenant FIFO content, enqueued in two different global
        # interleavings: the fair-share drain order must be identical.
        plans = [
            ["alice", "alice", "bob", "carol", "alice", "bob"],
            ["carol", "bob", "alice", "bob", "alice", "alice"],
        ]
        orders = []
        for plan in plans:
            queue = SubmissionQueue()
            counters = {}
            for tenant in plan:
                counters[tenant] = counters.get(tenant, 0) + 1
                # Sequence encodes per-tenant arrival order only.
                queue.enqueue(
                    Submission(
                        submission_id=f"{tenant}-{counters[tenant]}",
                        tenant=tenant,
                        spec=_spec(),
                        sequence=counters[tenant],
                    )
                )
            orders.append(
                [item.submission_id for item in _drain(queue, {"alice": 2})]
            )
        assert orders[0] == orders[1]

    def test_per_tenant_fifo_survives_fair_share(self):
        queue = SubmissionQueue()
        for sequence in range(1, 10):
            queue.enqueue(_submission("ab"[sequence % 2] * 3, sequence))
        drained = _drain(queue, {"aaa": 3, "bbb": 1})
        for tenant in ("aaa", "bbb"):
            sequences = [
                item.sequence for item in drained if item.tenant == tenant
            ]
            assert sequences == sorted(sequences)

    def test_priority_lane_jumps_the_queue(self):
        queue = SubmissionQueue()
        queue.enqueue(_submission("alice", 1, priority="normal"))
        queue.enqueue(_submission("alice", 2, priority="low"))
        queue.enqueue(_submission("bob", 3, priority="high"))
        order = [(item.tenant, item.priority) for item in _drain(queue)]
        assert order == [
            ("bob", "high"), ("alice", "normal"), ("alice", "low")
        ]

    def test_cancel_removes_queued_submission_only(self):
        queue = SubmissionQueue()
        queue.enqueue(_submission("alice", 1))
        queue.enqueue(_submission("alice", 2))
        cancelled = queue.cancel("sub-000001")
        assert cancelled.sequence == 1
        assert [item.sequence for item in _drain(queue)] == [2]
        with pytest.raises(SchedulingError):
            queue.cancel("sub-000001")

    def test_depth_backlog_and_pending(self):
        queue = SubmissionQueue()
        queue.enqueue(_submission("alice", 1))
        queue.enqueue(_submission("bob", 2, priority="high"))
        queue.enqueue(_submission("alice", 3))
        assert queue.depth() == 3
        assert queue.backlog() == {"alice": 2, "bob": 1}
        assert [item.sequence for item in queue.pending()] == [1, 2, 3]

    def test_unknown_priority_is_rejected(self):
        with pytest.raises(SchedulingError):
            _submission("alice", 1, priority="urgent")


class TestSubmissionRoundTrip:
    def test_to_dict_round_trips(self):
        submission = _submission("alice", 7, priority="high")
        submission.status = "completed"
        submission.campaign_id = "campaign-0001"
        submission.cells = 4
        restored = Submission.from_dict(submission.to_dict())
        assert restored == submission
        assert restored.spec == submission.spec

    def test_invalid_document_is_a_scheduling_error(self):
        with pytest.raises(SchedulingError):
            Submission.from_dict({"submission_id": "x"})


class TestTokenBucket:
    def test_burst_then_rejection_with_retry_after(self):
        bucket = TokenBucket(capacity=2, refill_per_second=0.5)
        assert bucket.try_take(0.0) == (True, 0.0)
        assert bucket.try_take(0.0) == (True, 0.0)
        granted, retry_after = bucket.try_take(0.0)
        assert not granted
        assert retry_after == pytest.approx(2.0)

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(capacity=1, refill_per_second=1.0)
        assert bucket.try_take(0.0)[0]
        assert not bucket.try_take(0.5)[0]
        granted, retry_after = bucket.try_take(1.5)
        assert granted and retry_after == 0.0

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(capacity=1, refill_per_second=0.0)
        assert bucket.try_take(0.0)[0]
        granted, retry_after = bucket.try_take(1e9)
        assert not granted
        assert retry_after == float("inf")

    def test_policy_without_rate_has_no_bucket(self):
        assert TenantPolicy("alice").bucket() is None
        limited = TenantPolicy("bob", rate_per_second=2.0, burst=3).bucket()
        assert limited is not None and limited.capacity == 3


class TestTenantPolicy:
    def test_round_trip_and_validation(self):
        policy = TenantPolicy("alice", weight=3, rate_per_second=0.5, burst=2)
        assert TenantPolicy.from_dict(policy.to_dict()) == policy
        with pytest.raises(ReproError):
            # ensure_identifier rejects the name (a ValidationError).
            TenantPolicy("bad name with spaces")
        with pytest.raises(SchedulingError):
            TenantPolicy("alice", weight=0)
        with pytest.raises(SchedulingError):
            TenantPolicy("alice", rate_per_second=-1.0)

    def test_default_template_retargets(self):
        template = TenantPolicy("default", weight=2)
        assert template.for_tenant("alice").name == "alice"
        assert template.for_tenant("alice").weight == 2


class TestTenantLedger:
    def test_usage_accumulates_and_persists(self, tmp_path):
        storage = CommonStorage()
        ledger = TenantLedger(storage)
        ledger.register(TenantPolicy("alice", weight=2))
        ledger.record_queued("alice")
        ledger.record_completed(
            "alice",
            cells=4,
            build_seconds=12.5,
            cache_bytes=1000,
            cache_hits=3,
            shared_hits=1,
            experiments=["H1"],
        )
        ledger.record_rejected("alice")
        storage.persist(str(tmp_path))

        reloaded = TenantLedger(
            CommonStorage.load(str(tmp_path), namespaces=[SERVICE_NAMESPACE])
        )
        usage = reloaded.usage("alice")
        assert usage.submissions == 1
        assert usage.completed == 1
        assert usage.cells == 4
        assert usage.build_seconds == pytest.approx(12.5)
        assert usage.cache_bytes == 1000
        assert usage.cache_hits == 3
        assert usage.shared_hits == 1
        assert usage.rejected == 1
        assert reloaded.policy("alice").weight == 2

    def test_donation_credited_to_first_submitting_tenant(self):
        ledger = TenantLedger(CommonStorage())
        ledger.register(TenantPolicy("alice"))
        ledger.register(TenantPolicy("bob"))
        assert ledger.claim_experiment("alice", "H1") == "alice"
        # Second claimant does not steal ownership.
        assert ledger.claim_experiment("bob", "H1") == "alice"
        assert ledger.credit_donation("H1", 5) == "alice"
        assert ledger.usage("alice").donated_builds == 5
        assert ledger.usage("bob").donated_builds == 0
        # Unowned experiments (pre-service cache entries) credit nobody.
        assert ledger.credit_donation("ZEUS", 3) is None
        assert ledger.credit_donation("H1", 0) is None

    def test_unknown_tenant_is_a_scheduling_error(self):
        ledger = TenantLedger(CommonStorage())
        with pytest.raises(SchedulingError):
            ledger.policy("ghost")
        with pytest.raises(SchedulingError):
            ledger.usage("ghost")

    def test_reregistration_updates_policy_keeps_usage(self):
        ledger = TenantLedger(CommonStorage())
        ledger.register(TenantPolicy("alice", weight=1))
        ledger.record_queued("alice")
        ledger.register(TenantPolicy("alice", weight=4))
        assert ledger.policy("alice").weight == 4
        assert ledger.usage("alice").submissions == 1
        assert ledger.weights() == {"alice": 4}

    def test_usage_round_trip(self):
        usage = TenantUsage(submissions=2, cells=9, build_seconds=1.25)
        assert TenantUsage.from_dict(usage.to_dict()) == usage
