"""Tests for the level-1 documentation archive and the level-2 outreach format."""

import pytest

from repro._common import ValidationError
from repro.hepdata.dst import DSTProducer, MicroDSTProducer
from repro.hepdata.generator import MonteCarloGenerator
from repro.hepdata.reconstruction import EventReconstruction
from repro.hepdata.simulation import DetectorSimulation
from repro.preservation.documentation import (
    DocumentCategory,
    DocumentationArchive,
    DocumentationItem,
    LEVEL1_REQUIRED_CATEGORIES,
    default_hera_documentation,
)
from repro.preservation.outreach import (
    SIMPLIFIED_SCHEMA,
    SimplifiedDataset,
    SimplifiedDatasetExporter,
    run_training_analysis,
)
from repro.storage.common_storage import CommonStorage


@pytest.fixture(scope="module")
def populated_archive():
    archive = DocumentationArchive()
    for item in default_hera_documentation():
        archive.archive(item)
    return archive


class TestDocumentationItem:
    def test_invalid_items_rejected(self):
        with pytest.raises(ValidationError):
            DocumentationItem(
                identifier="doc-1", experiment="H1",
                category=DocumentCategory.PUBLICATION, title="", year=2010,
            )
        with pytest.raises(ValidationError):
            DocumentationItem(
                identifier="doc-1", experiment="H1",
                category=DocumentCategory.PUBLICATION, title="T", year=1500,
            )

    def test_matches_searches_all_fields(self):
        item = DocumentationItem(
            identifier="doc-1", experiment="H1",
            category=DocumentCategory.PUBLICATION,
            title="Inclusive DIS cross sections", year=2012,
            authors=("H1 Collaboration",), keywords=("nc_dis",),
            abstract="Measurement of neutral current cross sections.",
        )
        assert item.matches("cross section")
        assert item.matches("NC_DIS")
        assert item.matches("collaboration")
        assert not item.matches("supersymmetry")

    def test_round_trip(self):
        item = default_hera_documentation()[0]
        rebuilt = DocumentationItem.from_document(item.to_document())
        assert rebuilt == item


class TestDocumentationArchive:
    def test_archive_and_lookup(self, populated_archive):
        assert len(populated_archive) == len(default_hera_documentation())
        assert "h1-doc-000" in populated_archive
        assert populated_archive.get("h1-doc-000").experiment == "H1"
        with pytest.raises(ValidationError):
            populated_archive.get("ghost")

    def test_duplicate_rejected(self, populated_archive):
        with pytest.raises(ValidationError):
            populated_archive.archive(default_hera_documentation()[0])

    def test_per_experiment_and_category_queries(self, populated_archive):
        h1_docs = populated_archive.for_experiment("H1")
        assert len(h1_docs) == 8
        publications = populated_archive.by_category("H1", DocumentCategory.PUBLICATION)
        assert len(publications) == 2

    def test_search_use_case(self, populated_archive):
        # Level 1 use case: publication related info search.
        results = populated_archive.search("charm")
        assert len(results) == 1
        assert results[0].experiment == "H1"
        scoped = populated_archive.search("detector", experiment="ZEUS")
        assert all(item.experiment == "ZEUS" for item in scoped)
        with pytest.raises(ValidationError):
            populated_archive.search("")

    def test_level1_report_complete_for_hera(self, populated_archive):
        for experiment in ("H1", "ZEUS", "HERMES"):
            report = populated_archive.level1_report(experiment)
            assert report.complete, report.missing_categories
            assert report.n_documents >= len(LEVEL1_REQUIRED_CATEGORIES)

    def test_level1_report_detects_gaps(self):
        archive = DocumentationArchive()
        archive.archive(
            DocumentationItem(
                identifier="new-doc-1", experiment="NEWEXP",
                category=DocumentCategory.PUBLICATION, title="A result", year=2013,
            )
        )
        report = archive.level1_report("NEWEXP")
        assert not report.complete
        assert "manual" in report.missing_categories

    def test_rehydration_from_storage(self):
        storage = CommonStorage()
        archive = DocumentationArchive(storage)
        archive.archive(default_hera_documentation()[0])
        rebuilt = DocumentationArchive(storage)
        assert len(rebuilt) == 1


@pytest.fixture(scope="module")
def micro_dst():
    record = MonteCarloGenerator().generate(80, seed=31)
    simulated = DetectorSimulation().simulate(record, seed=32)
    reconstructed = EventReconstruction().reconstruct(simulated)
    return MicroDSTProducer().produce(DSTProducer().produce(reconstructed))


class TestSimplifiedDataset:
    def test_export_respects_schema(self, micro_dst):
        exporter = SimplifiedDatasetExporter()
        dataset = exporter.export("H1", "outreach-2013", micro_dst, provenance="test")
        assert len(dataset) == len(micro_dst)
        assert dataset.validate() == []
        assert set(dataset.rows[0]) == {entry[0] for entry in SIMPLIFIED_SCHEMA}

    def test_export_with_event_limit(self, micro_dst):
        exporter = SimplifiedDatasetExporter()
        dataset = exporter.export("H1", "outreach-small", micro_dst, max_events=10)
        assert len(dataset) == 10

    def test_load_round_trip(self, micro_dst):
        exporter = SimplifiedDatasetExporter()
        exporter.export("ZEUS", "outreach-2013", micro_dst)
        loaded = exporter.load("ZEUS", "outreach-2013")
        assert len(loaded) == len(micro_dst)
        assert loaded.experiment == "ZEUS"
        assert exporter.datasets_for("ZEUS") == ["outreach-2013"]

    def test_unknown_column_raises(self, micro_dst):
        dataset = SimplifiedDatasetExporter().export("H1", "x", micro_dst)
        with pytest.raises(ValidationError):
            dataset.column("missing_energy")

    def test_validate_detects_schema_violations(self):
        dataset = SimplifiedDataset(
            experiment="H1", name="broken", schema=SIMPLIFIED_SCHEMA,
            rows=[{"q2": 10.0, "unexpected": 1.0}],
        )
        problems = dataset.validate()
        assert any("missing columns" in problem for problem in problems)
        assert any("unexpected columns" in problem for problem in problems)


class TestTrainingAnalysis:
    def test_counts_and_fractions(self, micro_dst):
        dataset = SimplifiedDatasetExporter().export("H1", "training", micro_dst)
        result = run_training_analysis(dataset)
        assert result.n_events == len(dataset)
        assert sum(result.events_per_q2_bin.values()) <= result.n_events
        assert 0.0 <= result.dis_fraction <= 1.0
        assert result.mean_multiplicity > 0.0

    def test_invalid_bins_rejected(self, micro_dst):
        dataset = SimplifiedDatasetExporter().export("H1", "training2", micro_dst)
        with pytest.raises(ValidationError):
            run_training_analysis(dataset, q2_bins=(10.0,))
        with pytest.raises(ValidationError):
            run_training_analysis(dataset, q2_bins=(100.0, 10.0))

    def test_empty_dataset(self):
        dataset = SimplifiedDataset(experiment="H1", name="empty", schema=SIMPLIFIED_SCHEMA)
        result = run_training_analysis(dataset)
        assert result.n_events == 0
        assert result.dis_fraction == 0.0
