"""Regression tests for the status web pages and their persisted links.

Covers the bugfix sweep: persisted pages are browsable ``.html`` files whose
relative links (index → run pages, run pages → ``../results/*.json``) all
resolve inside the persisted directory tree, non-passed catalogue statuses
render their own colour instead of universal red, and the campaign page ties
the pool timeline, cache accounting and per-cell run links together.
"""

import os
import re

import pytest

from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.reporting.summary import ValidationSummaryBuilder
from repro.reporting.webpages import (
    FALLBACK_COLOUR,
    STATUS_COLOURS,
    StatusPageGenerator,
)
from repro.storage.catalog import RunRecord


HREF_RE = re.compile(r"href=['\"]([^'\"]+)['\"]")


@pytest.fixture(scope="module")
def campaign_system():
    """A system that ran one two-configuration campaign, pages generated."""
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    campaign = system.run_campaign(
        ["HERMES"], ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"],
        workers=2, policy="critical-path", deadline_seconds=1.0,
    )
    pages = StatusPageGenerator(system.storage, system.catalog)
    pages.campaign_page(campaign)
    pages.index_page()
    pages.summary_page(ValidationSummaryBuilder().from_campaign(campaign).render_text())
    return system, campaign


class TestPersistedLinkIntegrity:
    def test_every_relative_link_resolves(self, campaign_system, tmp_path):
        system, _campaign = campaign_system
        system.persist_build_cache()
        written = system.storage.persist(str(tmp_path))
        html_files = [path for path in written if path.endswith(".html")]
        assert html_files, "no browsable pages were persisted"
        checked = 0
        for page_path in html_files:
            with open(page_path, encoding="utf-8") as handle:
                content = handle.read()
            for target in HREF_RE.findall(content):
                assert "://" not in target, f"unexpected external link {target}"
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(page_path), target)
                )
                assert os.path.isfile(resolved), (
                    f"{os.path.basename(page_path)} links to {target}, "
                    f"but {resolved} does not exist"
                )
                checked += 1
        assert checked > 0, "no links found on any persisted page"

    def test_pages_persist_as_html_files(self, campaign_system, tmp_path):
        system, _campaign = campaign_system
        system.storage.persist(str(tmp_path))
        reports = tmp_path / "reports"
        assert (reports / "index.html").is_file()
        assert (reports / "campaign.html").is_file()
        assert not list(reports.glob("runpage_*.json"))
        index = (reports / "index.html").read_text(encoding="utf-8")
        assert index.startswith("<!DOCTYPE html>")

    def test_html_documents_survive_a_load_round_trip(
        self, campaign_system, tmp_path
    ):
        from repro.storage.common_storage import CommonStorage

        system, _campaign = campaign_system
        system.storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        original = system.storage.get("reports", "index")
        assert loaded.get("reports", "index") == original

    def test_run_page_output_links_climb_out_of_reports(self, campaign_system):
        system, campaign = campaign_system
        page = system.storage.get(
            "reports", f"runpage_{campaign.cells[0].run.run_id}"
        )["html"]
        assert 'href="../results/' in page
        assert 'href="results/' not in page


class TestStatusColours:
    def test_non_passed_statuses_render_their_own_colour(self, tmp_path):
        system = SPSystem()
        generator = StatusPageGenerator(system.storage, system.catalog)
        statuses = {
            "rec-pass": "passed",
            "rec-fail": "failed",
            "rec-skip": "skipped",
            "rec-notrun": "not-run",
            "rec-empty": "empty",
        }
        for index, (run_id, status) in enumerate(sorted(statuses.items())):
            system.catalog.record(
                RunRecord(
                    run_id=run_id,
                    experiment="HERMES",
                    configuration_key="SL5_64bit_gcc4.4",
                    description="colour sweep",
                    timestamp=1356998400 + index,
                    test_statuses={"t": status if status != "empty" else "passed"},
                    overall_status=status,
                )
            )
        page = generator.index_page()
        for run_id, status in statuses.items():
            colour = STATUS_COLOURS.get(status, FALLBACK_COLOUR)
            row = next(
                line for line in page.split("<tr>") if run_id in line
            )
            assert colour in row, f"{run_id} ({status}) misses colour {colour}"
        # A skipped record must not be painted failed-red.
        skipped_row = next(line for line in page.split("<tr>") if "rec-skip" in line)
        assert STATUS_COLOURS["failed"] not in skipped_row
        # The unknown status reaches the grey fallback.
        empty_row = next(line for line in page.split("<tr>") if "rec-empty" in line)
        assert FALLBACK_COLOUR in empty_row


class TestCampaignPage:
    def test_campaign_page_content(self, campaign_system):
        system, campaign = campaign_system
        page = system.storage.get("reports", "campaign")["html"]
        assert "critical-path" in page
        assert "Build cache" in page
        assert "Per-worker utilisation" in page
        assert "Pool timeline" in page
        for cell in campaign.cells:
            assert f"runpage_{cell.run.run_id}.html" in page
        # The 1-second deadline is impossible; the page must say so.
        assert "missed" in page
        assert "(late)" in page

    def test_campaign_page_generates_missing_run_pages(self):
        system = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
        )
        system.provision_standard_images()
        system.register_experiment(build_hermes_experiment(scale=0.2))
        campaign = system.run_campaign(["HERMES"], ["SL5_64bit_gcc4.4"])
        generator = StatusPageGenerator(system.storage, system.catalog)
        generator.campaign_page(campaign)
        for cell in campaign.cells:
            assert system.storage.exists(
                "reports", f"runpage_{cell.run.run_id}"
            )

    def test_timeline_elision_note(self, campaign_system, monkeypatch):
        system, campaign = campaign_system
        monkeypatch.setattr(StatusPageGenerator, "MAX_TIMELINE_ROWS", 3)
        page = StatusPageGenerator(system.storage, system.catalog).campaign_page(
            campaign
        )
        elided = len(campaign.schedule.assignments) - 3
        assert f"... and {elided} more task(s)" in page


class TestCollectionHygiene:
    def test_library_test_classes_opt_out_of_collection(self):
        """Every repro class named Test* must set __test__ = False."""
        import importlib
        import inspect
        import pkgutil

        import repro

        offenders = []
        for module_info in pkgutil.walk_packages(repro.__path__, "repro."):
            module = importlib.import_module(module_info.name)
            for name, item in vars(module).items():
                if (
                    inspect.isclass(item)
                    and name.startswith("Test")
                    and item.__module__.startswith("repro.")
                    and getattr(item, "__test__", True)
                ):
                    offenders.append(f"{item.__module__}.{name}")
        assert not offenders, (
            "classes collectable by pytest despite being library code: "
            + ", ".join(sorted(set(offenders)))
        )
