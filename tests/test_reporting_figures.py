"""Tests for the text figures used by terminal reports."""

import pytest

from repro._common import ValidationError
from repro.reporting.figures import (
    comparison_table,
    fraction_series,
    horizontal_bar_chart,
    pass_fail_strip,
)


class TestHorizontalBarChart:
    def test_bars_scale_to_maximum(self):
        chart = horizontal_bar_chart({"H1": 10.0, "ZEUS": 5.0}, width=20)
        lines = chart.splitlines()
        h1_line = next(line for line in lines if line.startswith("H1"))
        zeus_line = next(line for line in lines if line.startswith("ZEUS"))
        assert h1_line.count("#") == 20
        assert zeus_line.count("#") == 10

    def test_values_appear_with_unit(self):
        chart = horizontal_bar_chart({"runs": 315.0}, unit=" runs")
        assert "315 runs" in chart

    def test_zero_values_render_empty_bars(self):
        chart = horizontal_bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_sorting_by_value(self):
        chart = horizontal_bar_chart({"small": 1.0, "big": 9.0}, sort_by_value=True)
        assert chart.splitlines()[0].startswith("big")

    def test_empty_and_invalid_inputs(self):
        assert horizontal_bar_chart({}) == "(no data)"
        with pytest.raises(ValidationError):
            horizontal_bar_chart({"a": 1.0}, width=0)


class TestFractionSeries:
    def test_series_renders_one_line_per_strategy(self):
        text = fraction_series(
            {
                "freeze": {2012: 1.0, 2013: 1.0, 2014: 0.0},
                "active-migration": {2012: 1.0, 2013: 1.0, 2014: 1.0},
            }
        )
        lines = text.splitlines()
        assert any(line.startswith("freeze") for line in lines)
        assert any(line.startswith("active-migration") for line in lines)
        # Header lists the (two-digit) years.
        assert "12" in lines[0] and "14" in lines[0]

    def test_missing_years_marked(self):
        text = fraction_series({"a": {2012: 1.0}, "b": {2013: 1.0}})
        assert "?" in text

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ValidationError):
            fraction_series({"a": {2012: 1.5}})

    def test_empty_series(self):
        assert fraction_series({}) == "(no data)"
        with pytest.raises(ValidationError):
            fraction_series({"a": {2012: 1.0}}, levels="#")


class TestPassFailStrip:
    def test_default_symbols(self):
        strip = pass_fail_strip(["passed", "failed", "skipped", "weird"])
        assert strip == ".Fs?"

    def test_custom_symbols(self):
        strip = pass_fail_strip(["passed", "failed"], symbols={"passed": "+", "failed": "-"})
        assert strip == "+-"


class TestComparisonTable:
    def test_highlighting(self):
        rows = [
            {"test": "a", "status": "passed"},
            {"test": "b", "status": "failed"},
        ]
        table = comparison_table(
            rows, ["test", "status"],
            highlight_column="status",
            highlight_predicate=lambda value: value == "failed",
        )
        assert "failed <<" in table
        assert "passed <<" not in table

    def test_missing_columns_render_empty(self):
        table = comparison_table([{"a": 1}], ["a", "b"])
        assert "a" in table.splitlines()[0]
