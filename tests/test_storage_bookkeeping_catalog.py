"""Tests for bookkeeping (IDs, clock, tags), the run catalogue and shell vars."""

import pytest

from repro._common import ReproError, StorageError, ValidationError
from repro.storage.bookkeeping import (
    EPOCH_2013,
    JobIdAllocator,
    RunTag,
    SimulatedClock,
    TagRegistry,
    format_timestamp,
)
from repro.storage.catalog import RunCatalog, RunRecord
from repro.storage.common_storage import CommonStorage
from repro.storage.shellvars import SP_VARIABLES, ShellVariableInterface


class TestSimulatedClock:
    def test_starts_at_2013(self):
        assert SimulatedClock().now == EPOCH_2013

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(3600)
        assert clock.now == EPOCH_2013 + 3600
        clock.advance_days(1)
        assert clock.now == EPOCH_2013 + 3600 + 86400

    def test_cannot_run_backwards(self):
        with pytest.raises(ReproError):
            SimulatedClock().advance(-1)
        with pytest.raises(ReproError):
            SimulatedClock(start_timestamp=-5)

    def test_isoformat(self):
        assert SimulatedClock().isoformat() == "2013-01-01 00:00:00"

    def test_format_timestamp_known_values(self):
        assert format_timestamp(0) == "1970-01-01 00:00:00"
        assert format_timestamp(EPOCH_2013 + 86400 + 3661) == "2013-01-02 01:01:01"


class TestJobIdAllocator:
    def test_sequential_unique_ids(self):
        allocator = JobIdAllocator()
        first, second = allocator.allocate(), allocator.allocate()
        assert first == "sp-000001"
        assert second == "sp-000002"
        assert allocator.allocated_count == 2

    def test_custom_prefix(self):
        assert JobIdAllocator(prefix="h1").allocate().startswith("h1-")

    def test_invalid_start(self):
        with pytest.raises(ReproError):
            JobIdAllocator(start=-1)


class TestTags:
    def test_run_tag_rendering(self):
        tag = RunTag(
            description="SL6 migration",
            software_versions={"ROOT": "5.34", "os": "SL6"},
            timestamp=EPOCH_2013,
        )
        rendered = tag.render()
        assert "SL6 migration" in rendered
        assert "ROOT=5.34" in rendered
        assert "2013-01-01" in rendered

    def test_tag_registry_groups_runs(self):
        registry = TagRegistry()
        registry.record("desc-a", "run-1")
        registry.record("desc-a", "run-2")
        registry.record("desc-b", "run-3")
        assert registry.descriptions() == ["desc-a", "desc-b"]
        assert registry.runs_for("desc-a") == ["run-1", "run-2"]
        assert registry.runs_for("unknown") == []
        assert len(registry) == 2


def make_record(run_id, experiment="H1", configuration="SL5_64bit_gcc4.4",
                status="passed", timestamp=EPOCH_2013, tests=None):
    return RunRecord(
        run_id=run_id,
        experiment=experiment,
        configuration_key=configuration,
        description=f"{experiment} regular validation",
        timestamp=timestamp,
        software_versions={"ROOT": "5.34"},
        test_statuses=tests or {"test-a": "passed", "test-b": status},
        overall_status=status,
    )


class TestRunCatalog:
    def test_record_and_lookup(self):
        catalog = RunCatalog()
        catalog.record(make_record("run-1"))
        assert "run-1" in catalog
        assert catalog.get("run-1").experiment == "H1"
        assert catalog.total_runs() == 1

    def test_duplicate_record_rejected(self):
        catalog = RunCatalog()
        catalog.record(make_record("run-1"))
        with pytest.raises(StorageError):
            catalog.record(make_record("run-1"))

    def test_update_requires_existing(self):
        catalog = RunCatalog()
        with pytest.raises(StorageError):
            catalog.update(make_record("run-1"))
        catalog.record(make_record("run-1"))
        catalog.update(make_record("run-1", status="failed"))
        assert catalog.get("run-1").overall_status == "failed"

    def test_queries_by_experiment_configuration_description(self):
        catalog = RunCatalog()
        catalog.record(make_record("run-1", experiment="H1"))
        catalog.record(make_record("run-2", experiment="ZEUS"))
        catalog.record(make_record("run-3", experiment="H1", configuration="SL6_64bit_gcc4.4"))
        assert [record.run_id for record in catalog.for_experiment("H1")] == ["run-1", "run-3"]
        assert [record.run_id for record in catalog.for_configuration("SL6_64bit_gcc4.4")] == ["run-3"]
        assert len(catalog.for_description("H1 regular validation")) == 2
        assert catalog.experiments() == ["H1", "ZEUS"]
        assert len(catalog.configurations()) == 2

    def test_last_successful_lookups(self):
        catalog = RunCatalog()
        catalog.record(make_record("run-1", status="passed", timestamp=EPOCH_2013))
        catalog.record(make_record("run-2", status="failed", timestamp=EPOCH_2013 + 10))
        assert catalog.last_successful("H1").run_id == "run-1"
        assert catalog.last_successful("H1", configuration_key="SL6_64bit_gcc4.4") is None
        assert catalog.last_successful("ZEUS") is None
        # Per-test lookup: run-2 failed overall but test-a passed in it.
        assert catalog.last_successful("H1", test_name="test-a").run_id == "run-2"

    def test_rehydration_from_storage(self):
        storage = CommonStorage()
        catalog = RunCatalog(storage)
        catalog.record(make_record("run-1"))
        rebuilt = RunCatalog(storage)
        assert rebuilt.total_runs() == 1
        assert rebuilt.get("run-1").n_passed == 2

    def test_record_counts(self):
        record = make_record("run-1", tests={"a": "passed", "b": "failed", "c": "passed"})
        assert record.n_tests == 3
        assert record.n_passed == 2
        assert record.n_failed == 1

    def test_serialisation_round_trip(self):
        record = make_record("run-1")
        rebuilt = RunRecord.from_dict(record.to_dict())
        assert rebuilt.run_id == record.run_id
        assert rebuilt.test_statuses == record.test_statuses


class TestShellVariableInterface:
    def test_all_documented_variables_exported(self):
        interface = ShellVariableInterface()
        environment = interface.environment_for(
            run_id="sp-000001", test_name="kinematics-nc_dis",
            experiment="H1", configuration_key="SL6_64bit_gcc4.4",
        )
        assert ShellVariableInterface.is_complete(environment)
        for name in SP_VARIABLES:
            assert name in environment

    def test_paths_contain_run_and_test(self):
        interface = ShellVariableInterface(storage_root="/sp")
        environment = interface.environment_for(
            "sp-000002", "test-x", "ZEUS", "SL5_32bit_gcc4.1"
        )
        assert environment.get("SP_OUTPUT_DIR") == "/sp/results/sp-000002/test-x"
        assert "SL5_32bit_gcc4.1" in environment.get("SP_EXTERNAL_DIR")

    def test_reference_dir_uses_reference_run(self):
        interface = ShellVariableInterface()
        environment = interface.environment_for(
            "sp-000003", "test-x", "H1", "SL6_64bit_gcc4.4",
            reference_run_id="sp-000001",
        )
        assert "sp-000001" in environment.get("SP_REFERENCE_DIR")

    def test_invalid_storage_root(self):
        with pytest.raises(ValidationError):
            ShellVariableInterface(storage_root="relative/path")

    def test_unknown_variable_raises(self):
        interface = ShellVariableInterface()
        environment = interface.environment_for("sp-1", "t", "H1", "SL6_64bit_gcc4.4")
        with pytest.raises(ValidationError):
            environment.get("SP_UNKNOWN")

    def test_export_lines_sorted(self):
        interface = ShellVariableInterface()
        environment = interface.environment_for("sp-1", "t", "H1", "SL6_64bit_gcc4.4")
        lines = environment.as_export_lines()
        assert all(line.startswith("export SP_") for line in lines)
        assert lines == sorted(lines)
