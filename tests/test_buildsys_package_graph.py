"""Tests for the package model and the dependency graph."""

import pytest

from repro._common import BuildError, ConfigurationError
from repro.buildsys.graph import DependencyCycleError, DependencyGraph
from repro.buildsys.package import (
    Language,
    PackageCategory,
    PackageInventory,
    SoftwarePackage,
)


def make_package(name, experiment="TESTEXP", dependencies=(), **kwargs):
    defaults = dict(
        version="1.0",
        category=PackageCategory.ANALYSIS,
        language=Language.CPP,
        lines_of_code=1000,
        dependencies=tuple(dependencies),
    )
    defaults.update(kwargs)
    return SoftwarePackage(name=name, experiment=experiment, **defaults)


class TestSoftwarePackage:
    def test_key(self):
        assert make_package("pkg-a").key == "pkg-a-1.0"

    def test_invalid_lines_of_code(self):
        with pytest.raises(ConfigurationError):
            make_package("pkg-a", lines_of_code=0)

    def test_invalid_fragility(self):
        with pytest.raises(ConfigurationError):
            make_package("pkg-a", fragility=1.5)

    def test_self_dependency_rejected(self):
        with pytest.raises(ConfigurationError):
            make_package("pkg-a", dependencies=("pkg-a",))

    def test_with_requirements_and_version(self):
        from repro.environment.compatibility import SoftwareRequirements

        package = make_package("pkg-a")
        ported = package.with_requirements(SoftwareRequirements(word_sizes=(64,)))
        assert ported.requirements.word_sizes == (64,)
        assert package.requirements.word_sizes == (32, 64)
        bumped = package.with_version("2.0")
        assert bumped.version == "2.0"

    def test_build_time_scales_with_size(self):
        small = make_package("pkg-a", lines_of_code=1000)
        large = make_package("pkg-b", lines_of_code=10000)
        assert large.estimated_build_seconds() > small.estimated_build_seconds()

    def test_fortran_builds_faster_than_cpp_per_line(self):
        fortran = make_package("pkg-f", language=Language.FORTRAN)
        cpp = make_package("pkg-c", language=Language.CPP)
        assert fortran.estimated_build_seconds() < cpp.estimated_build_seconds()


class TestPackageInventory:
    def test_add_and_get(self):
        inventory = PackageInventory("TESTEXP", [make_package("pkg-a")])
        assert "pkg-a" in inventory
        assert inventory.get("pkg-a").name == "pkg-a"
        assert len(inventory) == 1

    def test_wrong_experiment_rejected(self):
        inventory = PackageInventory("TESTEXP")
        with pytest.raises(ConfigurationError):
            inventory.add(make_package("pkg-a", experiment="OTHER"))

    def test_duplicate_rejected(self):
        inventory = PackageInventory("TESTEXP", [make_package("pkg-a")])
        with pytest.raises(ConfigurationError):
            inventory.add(make_package("pkg-a"))

    def test_replace_requires_existing(self):
        inventory = PackageInventory("TESTEXP", [make_package("pkg-a")])
        inventory.replace(make_package("pkg-a", lines_of_code=5))
        assert inventory.get("pkg-a").lines_of_code == 5
        with pytest.raises(ConfigurationError):
            inventory.replace(make_package("pkg-b"))

    def test_by_category_and_totals(self):
        inventory = PackageInventory(
            "TESTEXP",
            [
                make_package("pkg-a", category=PackageCategory.CORE),
                make_package("pkg-b", category=PackageCategory.ANALYSIS),
            ],
        )
        assert [pkg.name for pkg in inventory.by_category(PackageCategory.CORE)] == ["pkg-a"]
        assert inventory.total_lines_of_code() == 2000

    def test_validate_dependencies_detects_missing(self):
        inventory = PackageInventory(
            "TESTEXP", [make_package("pkg-a", dependencies=("pkg-missing",))]
        )
        problems = inventory.validate_dependencies()
        assert problems and "pkg-missing" in problems[0]

    def test_names_sorted(self):
        inventory = PackageInventory(
            "TESTEXP", [make_package("pkg-b"), make_package("pkg-a")]
        )
        assert inventory.names() == ["pkg-a", "pkg-b"]


class TestDependencyGraph:
    def _diamond_inventory(self):
        return PackageInventory(
            "TESTEXP",
            [
                make_package("core"),
                make_package("left", dependencies=("core",)),
                make_package("right", dependencies=("core",)),
                make_package("top", dependencies=("left", "right")),
            ],
        )

    def test_build_order_respects_dependencies(self):
        graph = DependencyGraph(self._diamond_inventory())
        order = graph.build_order()
        assert order.index("core") < order.index("left")
        assert order.index("core") < order.index("right")
        assert order.index("left") < order.index("top")
        assert order.index("right") < order.index("top")

    def test_missing_dependency_rejected(self):
        inventory = PackageInventory(
            "TESTEXP", [make_package("a", dependencies=("ghost",))]
        )
        with pytest.raises(BuildError):
            DependencyGraph(inventory)

    def test_cycle_detected(self):
        inventory = PackageInventory(
            "TESTEXP",
            [
                make_package("a", dependencies=("b",)),
                make_package("b", dependencies=("a",)),
            ],
        )
        with pytest.raises(DependencyCycleError) as excinfo:
            DependencyGraph(inventory)
        assert set(excinfo.value.cycle) >= {"a", "b"}

    def test_transitive_dependencies_and_dependents(self):
        graph = DependencyGraph(self._diamond_inventory())
        assert graph.transitive_dependencies("top") == {"core", "left", "right"}
        assert graph.transitive_dependents("core") == {"left", "right", "top"}
        assert graph.dependents_of("core") == ["left", "right"]

    def test_build_levels(self):
        graph = DependencyGraph(self._diamond_inventory())
        levels = graph.build_levels()
        assert levels[0] == ["core"]
        assert set(levels[1]) == {"left", "right"}
        assert levels[2] == ["top"]

    def test_critical_path_ends_at_top(self):
        graph = DependencyGraph(self._diamond_inventory())
        path = graph.critical_path()
        assert path[0] == "core"
        assert path[-1] == "top"

    def test_unknown_package_queries(self):
        graph = DependencyGraph(self._diamond_inventory())
        with pytest.raises(BuildError):
            graph.dependencies_of("ghost")
        with pytest.raises(BuildError):
            graph.transitive_dependents("ghost")

    def test_hera_inventories_are_acyclic(self, tiny_h1, tiny_zeus, tiny_hermes):
        for experiment in (tiny_h1, tiny_zeus, tiny_hermes):
            graph = DependencyGraph(experiment.inventory)
            assert len(graph.build_order()) == len(experiment.inventory)
