"""Tests for the event model: four vectors, particles and event records."""

import math

import pytest

from repro._common import ValidationError
from repro.hepdata.event import Event, EventRecord, FourVector, Particle


class TestFourVector:
    def test_pt_and_momentum(self):
        vector = FourVector(energy=5.0, px=3.0, py=4.0, pz=0.0)
        assert vector.pt == pytest.approx(5.0)
        assert vector.momentum == pytest.approx(5.0)

    def test_mass_of_massless_vector(self):
        vector = FourVector(energy=5.0, px=3.0, py=4.0, pz=0.0)
        assert vector.mass == pytest.approx(0.0, abs=1e-9)

    def test_mass_never_negative(self):
        vector = FourVector(energy=1.0, px=2.0, py=0.0, pz=0.0)
        assert vector.mass == 0.0

    def test_addition(self):
        a = FourVector(1.0, 0.5, 0.0, 0.2)
        b = FourVector(2.0, -0.5, 1.0, 0.3)
        total = a + b
        assert total.energy == pytest.approx(3.0)
        assert total.px == pytest.approx(0.0)
        assert total.pz == pytest.approx(0.5)

    def test_from_pt_eta_phi_round_trip(self):
        vector = FourVector.from_pt_eta_phi(pt=2.0, eta=1.0, phi=0.3, mass=0.14)
        assert vector.pt == pytest.approx(2.0)
        assert vector.phi == pytest.approx(0.3)
        assert vector.mass == pytest.approx(0.14, rel=1e-6)

    def test_rapidity_sign_follows_pz(self):
        forward = FourVector.from_pt_eta_phi(1.0, 2.0, 0.0)
        backward = FourVector.from_pt_eta_phi(1.0, -2.0, 0.0)
        assert forward.rapidity > 0
        assert backward.rapidity < 0

    def test_theta_range(self):
        vector = FourVector.from_pt_eta_phi(1.0, 0.0, 0.0)
        assert vector.theta == pytest.approx(math.pi / 2.0)


class TestParticle:
    def test_name_lookup(self):
        particle = Particle(pdg_code=211, four_vector=FourVector(1, 0.5, 0, 0), charge=1)
        assert particle.name == "pi+"

    def test_unknown_code_falls_back_to_number(self):
        particle = Particle(pdg_code=99999, four_vector=FourVector(1, 0.5, 0, 0), charge=0)
        assert particle.name == "99999"

    def test_charged_flag(self):
        charged = Particle(pdg_code=211, four_vector=FourVector(1, 0.5, 0, 0), charge=1)
        neutral = Particle(pdg_code=22, four_vector=FourVector(1, 0.5, 0, 0), charge=0)
        assert charged.is_charged
        assert not neutral.is_charged


class TestEvent:
    def _event(self, particles=None):
        return Event(
            event_number=1, process="nc_dis", q_squared=10.0, bjorken_x=0.01,
            inelasticity=0.3, particles=particles or [],
        )

    def test_invalid_kinematics_rejected(self):
        with pytest.raises(ValidationError):
            Event(event_number=1, process="p", q_squared=-1.0, bjorken_x=0.1, inelasticity=0.5)
        with pytest.raises(ValidationError):
            Event(event_number=1, process="p", q_squared=1.0, bjorken_x=0.1, inelasticity=1.5)

    def test_scattered_lepton_found(self):
        lepton = Particle(pdg_code=11, four_vector=FourVector(10, 1, 0, 5), charge=-1)
        pion = Particle(pdg_code=211, four_vector=FourVector(2, 0.5, 0, 1), charge=1)
        event = self._event([pion, lepton])
        assert event.scattered_lepton is lepton
        assert event.hadronic_final_state == [pion]

    def test_no_lepton(self):
        event = self._event([Particle(pdg_code=211, four_vector=FourVector(2, 0.5, 0, 1), charge=1)])
        assert event.scattered_lepton is None

    def test_charged_multiplicity_and_et(self):
        particles = [
            Particle(pdg_code=211, four_vector=FourVector(2, 1.0, 0, 1), charge=1),
            Particle(pdg_code=22, four_vector=FourVector(3, 0.0, 2.0, 1), charge=0),
        ]
        event = self._event(particles)
        assert event.charged_multiplicity == 1
        assert event.transverse_energy() == pytest.approx(3.0)

    def test_total_four_vector(self):
        particles = [
            Particle(pdg_code=211, four_vector=FourVector(2, 1.0, 0, 1), charge=1),
            Particle(pdg_code=-211, four_vector=FourVector(2, -1.0, 0, 1), charge=-1),
        ]
        total = self._event(particles).total_four_vector()
        assert total.px == pytest.approx(0.0)
        assert total.energy == pytest.approx(4.0)


class TestEventRecord:
    def _record(self, n=3):
        record = EventRecord()
        for index in range(n):
            record.append(
                Event(
                    event_number=index, process="nc_dis", q_squared=10.0 * (index + 1),
                    bjorken_x=0.01, inelasticity=0.4, weight=2.0,
                )
            )
        return record

    def test_len_iter_and_getitem(self):
        record = self._record(3)
        assert len(record) == 3
        assert record[0].event_number == 0
        assert [event.event_number for event in record] == [0, 1, 2]

    def test_total_weight(self):
        assert self._record(3).total_weight() == pytest.approx(6.0)

    def test_summary_of_empty_record(self):
        summary = EventRecord().summary()
        assert summary["n_events"] == 0.0
        assert summary["total_weight"] == 0.0

    def test_summary_values(self):
        summary = self._record(2).summary()
        assert summary["n_events"] == 2.0
        assert summary["mean_q2"] == pytest.approx(15.0)

    def test_select_adds_provenance_and_filters(self):
        record = self._record(3)
        selected = record.select(lambda event: event.q_squared > 15.0)
        assert len(selected) == 2
        assert "selection" in selected.provenance

    def test_provenance_tracking(self):
        record = self._record(1)
        record.add_provenance("mc-generation")
        record.add_provenance("simulation")
        assert record.provenance == ["mc-generation", "simulation"]
