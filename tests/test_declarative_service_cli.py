"""Tests for declarative experiment specs, the regular-operation service and the CLI."""

import pytest

from repro._common import SchedulingError, ValidationError
from repro.cli import main as cli_main
from repro.core.levels import PreservationLevel
from repro.core.service import RegularValidationService
from repro.core.spsystem import SPSystem
from repro.core.testspec import TestKind
from repro.environment.configuration import next_generation_configuration
from repro.experiments.declarative import experiment_from_spec, spec_from_experiment
from repro.experiments.hermes import build_hermes_experiment


BASIC_SPEC = {
    "name": "NEWEXP",
    "full_name": "A newly joining experiment",
    "preservation_level": 4,
    "colour": "green",
    "packages": {"count": 20, "quirks": {"not_ported_to_newest_abi": 1}},
    "processes": ["nc_dis", "photoproduction"],
    "events_per_chain": 30,
    "events_per_test": 20,
    "standalone": {"regression_tests_per_package": 1},
}


class TestDeclarativeExperiments:
    def test_spec_builds_complete_experiment(self):
        experiment = experiment_from_spec(BASIC_SPEC)
        assert experiment.name == "NEWEXP"
        assert experiment.preservation_level is PreservationLevel.FULL_SOFTWARE
        assert len(experiment.inventory) == 20
        assert len(experiment.chains) == 2
        # Level 4: full chains including detector simulation.
        assert any(
            name.endswith("detector-simulation")
            for name in experiment.chains[0].step_names()
        )
        assert experiment.display_colour == "green"
        assert experiment.standalone_tests

    def test_level3_spec_uses_analysis_only_chains(self):
        spec = dict(BASIC_SPEC, name="LEVEL3EXP", preservation_level=3)
        experiment = experiment_from_spec(spec)
        for chain in experiment.chains:
            assert not any(
                name.endswith("detector-simulation") for name in chain.step_names()
            )

    def test_spec_validation_errors(self):
        with pytest.raises(ValidationError):
            experiment_from_spec({})
        with pytest.raises(ValidationError):
            experiment_from_spec(dict(BASIC_SPEC, processes=["ttbar"]))
        with pytest.raises(ValidationError):
            experiment_from_spec(dict(BASIC_SPEC, packages={"count": 2}))
        with pytest.raises(ValidationError):
            experiment_from_spec(dict(BASIC_SPEC, events_per_chain=0))

    def test_standalone_options_respected(self):
        spec = dict(
            BASIC_SPEC,
            name="MINIMAL",
            standalone={
                "smoke_tests": False,
                "root_io_tests": False,
                "database_tests": False,
                "calibration_tests": False,
                "kinematics_tests": True,
                "data_export_test": False,
                "regression_tests_per_package": 0,
            },
        )
        experiment = experiment_from_spec(spec)
        names = [test.name for test in experiment.standalone_tests]
        assert all(name.startswith("kinematics-") for name in names)

    def test_declarative_experiment_validates_in_sp_system(self):
        system = SPSystem()
        system.provision_standard_images()
        system.register_experiment(experiment_from_spec(BASIC_SPEC))
        result = system.validate("NEWEXP", "SL5_64bit_gcc4.4")
        assert result.successful

    def test_spec_round_trip_summary(self):
        experiment = experiment_from_spec(BASIC_SPEC)
        summary = spec_from_experiment(experiment)
        assert summary["name"] == "NEWEXP"
        assert summary["packages"]["count"] == 20
        assert summary["test_counts"]["total"] == experiment.total_test_count()
        assert set(summary["chains"]) == {chain.name for chain in experiment.chains}
        # The summary itself is a valid JSON document.
        import json

        json.dumps(summary)


class TestRegularValidationService:
    def _system(self):
        system = SPSystem()
        system.provision_standard_images()
        system.register_experiment(build_hermes_experiment(scale=0.2))
        return system

    def test_schedule_and_entries(self):
        system = self._system()
        service = RegularValidationService(system)
        service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        assert len(service.entries()) == 1
        assert service.entry("HERMES", "SL5_64bit_gcc4.4").run_count == 0
        with pytest.raises(SchedulingError):
            service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        with pytest.raises(ValidationError):
            service.schedule("GHOST", "SL5_64bit_gcc4.4", "30 2 * * *")

    def test_schedule_everywhere_and_advance(self):
        system = self._system()
        service = RegularValidationService(system)
        entries = service.schedule_experiment_everywhere("HERMES", "30 2 * * *")
        assert len(entries) == 5
        report = service.advance_days(2)
        # Two nights, five configurations each.
        assert report.n_cycles == 10
        assert system.total_runs() == 10
        assert all(entry.run_count == 2 for entry in service.entries())
        # The SL6 entry fails, the SL5 entries pass.
        sl6_entry = service.entry("HERMES", "SL6_64bit_gcc4.4")
        assert sl6_entry.last_result_successful is False
        assert report.n_failed_cycles >= 1

    def test_integrate_new_configuration(self):
        system = self._system()
        service = RegularValidationService(system)
        service.schedule_experiment_everywhere("HERMES", "30 2 * * *")
        added = service.integrate_new_configuration(
            next_generation_configuration(), cron_expression="0 4 * * 0"
        )
        assert len(added) == 1
        assert len(service.entries()) == 6
        report = service.advance_days(7)
        sl7_runs = [
            cycle for cycle in report.cycles_run
            if cycle.run.configuration_key.startswith("SL7")
        ]
        assert len(sl7_runs) == 1
        assert not sl7_runs[0].successful

    def test_unschedule_and_invalid_advance(self):
        system = self._system()
        service = RegularValidationService(system)
        service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        service.unschedule("HERMES", "SL5_64bit_gcc4.4")
        assert service.entries() == []
        with pytest.raises(SchedulingError):
            service.unschedule("HERMES", "SL5_64bit_gcc4.4")
        with pytest.raises(SchedulingError):
            service.advance_days(-1)

    def test_status_rows(self):
        system = self._system()
        service = RegularValidationService(system)
        service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        service.advance_days(1)
        rows = service.status_rows()
        assert rows[0]["experiment"] == "HERMES"
        assert rows[0]["runs"] == 1
        assert rows[0]["last_result"] == "passed"


class TestCommandLineInterface:
    def test_levels_command(self, capsys):
        assert cli_main(["levels"]) == 0
        output = capsys.readouterr().out
        assert "Provide additional documentation" in output
        assert "Retain the full potential" in output

    def test_describe_command(self, capsys):
        assert cli_main(["describe", "--scale", "0.1"]) == 0
        output = capsys.readouterr().out
        assert "SL6/64bit" in output
        assert "H1" in output and "ZEUS" in output and "HERMES" in output

    def test_validate_command_success_and_failure_exit_codes(self, capsys):
        assert cli_main([
            "validate", "--experiment", "HERMES",
            "--configuration", "SL5_64bit_gcc4.4", "--scale", "0.15",
        ]) == 0
        assert cli_main([
            "validate", "--experiment", "HERMES",
            "--configuration", "SL6_64bit_gcc4.4", "--scale", "0.15",
        ]) == 1
        output = capsys.readouterr().out
        assert "FAILED" in output

    def test_validate_unknown_configuration_reports_error(self, capsys):
        assert cli_main([
            "validate", "--experiment", "HERMES", "--configuration", "SL9", "--scale", "0.1",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_migrate_plan_command(self, capsys):
        assert cli_main([
            "migrate-plan", "--experiment", "HERMES", "--target", "SL7", "--scale", "0.2",
        ]) == 0
        output = capsys.readouterr().out
        assert "person-weeks" in output

    def test_campaign_command_with_output(self, tmp_path, capsys):
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(tmp_path / "storage"),
        ]) == 0
        output = capsys.readouterr().out
        assert "total validation runs recorded" in output
        assert (tmp_path / "storage" / "reports").is_dir()

    @pytest.mark.parametrize("flag", ["--workers", "--rounds", "--batch-size"])
    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_campaign_rejects_non_positive_pool_flags(self, flag, value, capsys):
        # argparse rejects the value with a clear error instead of the old
        # silent max(x, 1) clamp.
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["campaign", flag, value])
        assert excinfo.value.code == 2
        assert "must be a positive integer" in capsys.readouterr().err

    def test_campaign_backend_flag(self, capsys):
        assert cli_main([
            "campaign", "--scale", "0.1", "--backend", "threads", "--workers", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "'threads' backend" in output
        assert "execution backend" in output

    def test_campaign_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "--backend", "mpi"])
        assert "invalid choice" in capsys.readouterr().err

    def test_campaign_spec_file(self, tmp_path, capsys):
        import json

        from repro.scheduler.spec import CampaignSpec

        spec_path = tmp_path / "campaign.json"
        spec = CampaignSpec(
            experiments=("HERMES",),
            configuration_keys=("SL5_64bit_gcc4.4",),
            workers=2,
            rounds=2,
        )
        spec_path.write_text(json.dumps(spec.to_dict()))
        assert cli_main(["campaign", "--scale", "0.1", "--spec", str(spec_path)]) == 0
        output = capsys.readouterr().out
        assert "submitted campaign-0001: 2/2 cells" in output

    def test_campaign_spec_file_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert cli_main(["campaign", "--spec", str(missing)]) == 2
        assert "cannot read spec file" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert cli_main(["campaign", "--spec", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        unknown = tmp_path / "unknown.json"
        unknown.write_text('{"wokers": 4}')
        assert cli_main(["campaign", "--spec", str(unknown)]) == 2
        assert "unknown campaign spec field" in capsys.readouterr().err

    def test_campaign_cache_budget_flag(self, tmp_path, capsys):
        import json

        output_dir = tmp_path / "storage"
        assert cli_main([
            "campaign", "--scale", "0.1",
            "--cache-budget-mb", "0.0001",
            "--output", str(output_dir),
        ]) == 0
        output = capsys.readouterr().out
        # A ~100-byte budget cannot hold even a tarball-less cache entry.
        assert ("(0 new build-cache journal records for the next campaign)"
                in output)
        # The budget travels in the persisted spec, so replaying it keeps
        # the same cache cap.
        spec_files = list((output_dir / "campaigns").glob("spec_*.json"))
        assert len(spec_files) == 1
        document = json.loads(spec_files[0].read_text())
        assert document["spec"]["cache_budget_bytes"] == 104

    def test_campaign_wrongly_typed_spec_file_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "typed.json"
        bad.write_text('{"workers": "4"}')
        assert cli_main(["campaign", "--spec", str(bad)]) == 2
        assert "must be an integer" in capsys.readouterr().err

    def test_campaign_cache_budget_requires_output(self, capsys):
        # Without --output nothing is persisted, so the budget would be a
        # silent no-op; refuse it instead.
        assert cli_main(["campaign", "--cache-budget-mb", "1"]) == 2
        assert "--cache-budget-mb requires --output" in capsys.readouterr().err

    def test_campaign_rejects_non_positive_cache_budget(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["campaign", "--cache-budget-mb", "0"])
        assert "must be positive" in capsys.readouterr().err

    def test_campaign_no_cache_runs_cold(self, tmp_path, capsys):
        import json

        output_dir = tmp_path / "storage"
        assert cli_main([
            "campaign", "--scale", "0.1", "--no-cache",
            "--output", str(output_dir),
        ]) == 0
        output = capsys.readouterr().out
        # The cold path journals nothing and persists no buildcache namespace.
        assert ("(0 new build-cache journal records for the next campaign)"
                in output)
        assert not (output_dir / "buildcache").exists()
        # The cold-path flag travels in the persisted spec for replays.
        spec_files = list((output_dir / "campaigns").glob("spec_*.json"))
        document = json.loads(spec_files[0].read_text())
        assert document["spec"]["use_cache"] is False

    def test_campaign_no_cache_conflicts_with_budget(self, capsys):
        assert cli_main([
            "campaign", "--no-cache", "--cache-budget-mb", "1",
        ]) == 2
        assert "conflicts with --no-cache" in capsys.readouterr().err

    def test_spec_file_warm_start_false_is_honoured(self, tmp_path, capsys):
        """A replayed spec with warm_start:false must run cold in the CLI too."""
        import json

        from repro.scheduler.spec import CampaignSpec

        warm_dir = tmp_path / "warm"
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(warm_dir),
        ]) == 0
        capsys.readouterr()
        spec_file = tmp_path / "no-warm.json"
        spec_file.write_text(
            json.dumps(CampaignSpec(warm_start=False).to_dict())
        )
        assert cli_main([
            "campaign", "--scale", "0.1", "--spec", str(spec_file),
            "--cache-dir", str(warm_dir),
        ]) == 0
        assert "warm-started" not in capsys.readouterr().out

    def test_campaign_no_cache_conflicts_with_explicit_cache_dir(
        self, tmp_path, capsys
    ):
        """An explicit --cache-dir would be a silent no-op without the cache."""
        assert cli_main([
            "campaign", "--no-cache", "--cache-dir", str(tmp_path),
        ]) == 2
        assert "--cache-dir conflicts" in capsys.readouterr().err

    def test_campaign_budget_conflicts_with_cacheless_spec_file(
        self, tmp_path, capsys
    ):
        """A spec file disabling the cache rejects the budget flag too."""
        import json

        spec_file = tmp_path / "cold.json"
        from repro.scheduler.spec import CampaignSpec

        spec_file.write_text(
            json.dumps(CampaignSpec(use_cache=False).to_dict())
        )
        assert cli_main([
            "campaign", "--spec", str(spec_file),
            "--cache-budget-mb", "1", "--output", str(tmp_path / "out"),
        ]) == 2
        assert "use_cache" in capsys.readouterr().err

    def test_cacheless_spec_file_skips_warm_start(self, tmp_path, capsys):
        """A spec with use_cache:false behaves like --no-cache end to end."""
        import json

        from repro.scheduler.spec import CampaignSpec

        warm_dir = tmp_path / "warm"
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(warm_dir),
        ]) == 0
        assert (warm_dir / "buildcache").exists()
        capsys.readouterr()
        spec_file = tmp_path / "cold.json"
        spec_file.write_text(
            json.dumps(CampaignSpec(use_cache=False).to_dict())
        )
        # An explicit --cache-dir is refused — it could only be a no-op.
        assert cli_main([
            "campaign", "--scale", "0.1", "--spec", str(spec_file),
            "--cache-dir", str(warm_dir), "--output", str(tmp_path / "out"),
        ]) == 2
        assert "--cache-dir conflicts" in capsys.readouterr().err
        # The implicit default (cache-dir falls back to --output) is merely
        # skipped: re-running into the warm directory stays cold.
        assert cli_main([
            "campaign", "--scale", "0.1", "--spec", str(spec_file),
            "--output", str(warm_dir),
        ]) == 0
        output = capsys.readouterr().out
        assert "warm-started" not in output

    def test_cache_stats_command(self, tmp_path, capsys):
        output_dir = tmp_path / "storage"
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(output_dir),
        ]) == 0
        capsys.readouterr()
        assert cli_main(["cache-stats", "--cache-dir", str(output_dir)]) == 0
        output = capsys.readouterr().out
        assert "live cache entries" in output
        assert "build cache shared hits (cross-experiment)" in output
        assert "cache journal records" in output
        assert "tombstone records" in output

    def test_cache_stats_without_journal_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["cache-stats", "--cache-dir", str(tmp_path)]) == 2
        assert "no persisted build cache" in capsys.readouterr().err

    def test_cache_stats_compact_rewrites_on_disk(self, tmp_path, capsys):
        output_dir = tmp_path / "storage"
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(output_dir),
        ]) == 0
        capsys.readouterr()
        assert cli_main([
            "cache-stats", "--cache-dir", str(output_dir), "--compact",
        ]) == 0
        output = capsys.readouterr().out
        assert "compacted the journal" in output
        # The compacted journal on disk still warm-starts the next campaign.
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(output_dir),
        ]) == 0
        assert "warm-started build cache" in capsys.readouterr().out


class TestHistoryCli:
    """The history subcommand group and the --record-history flag."""

    def _recorded_campaign(self, output_dir):
        return cli_main([
            "campaign", "--scale", "0.1", "--record-history",
            "--output", str(output_dir),
        ])

    def test_record_history_requires_output(self, capsys):
        assert cli_main(["campaign", "--record-history"]) == 2
        assert "--record-history requires --output" in capsys.readouterr().err

    def test_record_history_campaign_persists_ledger(self, tmp_path, capsys):
        import json

        output_dir = tmp_path / "storage"
        assert self._recorded_campaign(output_dir) == 0
        output = capsys.readouterr().out
        assert "validation history:" in output
        assert (output_dir / "history").exists()
        # The flag travels in the persisted spec for replays.
        spec_files = list((output_dir / "campaigns").glob("spec_*.json"))
        document = json.loads(spec_files[0].read_text())
        assert document["spec"]["record_history"] is True
        # The trends page rendered and the campaign page links to it.
        trends = (output_dir / "reports" / "trends.html").read_text()
        assert "Validation history" in trends
        campaign_page = (output_dir / "reports" / "campaign.html").read_text()
        assert "trends.html" in campaign_page

    def test_repeated_campaigns_accumulate_history(self, tmp_path, capsys):
        output_dir = tmp_path / "storage"
        assert self._recorded_campaign(output_dir) == 0
        capsys.readouterr()
        # The second run mounts the ledger (auto mode: no flag needed).
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(output_dir),
        ]) == 0
        output = capsys.readouterr().out
        assert "mounted validation history" in output
        assert cli_main([
            "history", "trends", "--storage-dir", str(output_dir),
        ]) == 0
        output = capsys.readouterr().out
        assert "2 campaign(s)" in output
        assert "campaign-0001" in output and "campaign-0002" in output

    def test_history_trends_without_ledger_fails_cleanly(self, tmp_path, capsys):
        assert cli_main([
            "history", "trends", "--storage-dir", str(tmp_path),
        ]) == 2
        error = capsys.readouterr().err
        assert "no validation history ledger" in error
        assert "--record-history" in error

    def test_history_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert cli_main([
            "history", "regressions",
            "--storage-dir", str(tmp_path / "missing"),
        ]) == 2
        assert "no such storage directory" in capsys.readouterr().err

    def test_history_diff_unknown_campaign_fails_cleanly(
        self, tmp_path, capsys
    ):
        output_dir = tmp_path / "storage"
        assert self._recorded_campaign(output_dir) == 0
        capsys.readouterr()
        assert cli_main([
            "history", "diff", "--storage-dir", str(output_dir),
            "--from-campaign", "campaign-0001",
            "--to-campaign", "campaign-9999",
        ]) == 2
        assert "no events for campaign" in capsys.readouterr().err

    def test_history_diff_and_regressions_roundtrip(self, tmp_path, capsys):
        output_dir = tmp_path / "storage"
        assert self._recorded_campaign(output_dir) == 0
        capsys.readouterr()
        assert cli_main([
            "campaign", "--scale", "0.1", "--output", str(output_dir),
        ]) == 0
        capsys.readouterr()
        assert cli_main([
            "history", "diff", "--storage-dir", str(output_dir),
            "--from-campaign", "campaign-0001",
            "--to-campaign", "campaign-0002",
        ]) == 0
        assert "campaign-0001 -> campaign-0002" in capsys.readouterr().out
        assert cli_main([
            "history", "regressions", "--storage-dir", str(output_dir),
        ]) == 0
        output = capsys.readouterr().out
        assert "regression(s)" in output
        assert "classification" in output
