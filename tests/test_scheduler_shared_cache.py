"""Tests for cross-experiment sharing of the content-addressed build cache.

The cache key is :func:`~repro.scheduler.cache.package_identity_digest` — a
content hash of the package identity (name, version, sources, requirements)
and the target configuration that deliberately ignores the owning
experiment.  Two experiments pinning the same external package therefore
share one cache entry: a campaign over both builds each shared package
exactly once, reports the donated hits in :class:`CacheStatistics`, and the
replayed results stay bit-identical to the sequential cold path because the
replay is rebound to the requesting experiment's package.
"""

from dataclasses import replace

import pytest

from repro.buildsys.builder import PackageBuilder
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import (
    build_hermes_experiment,
    build_zeus_experiment,
    shared_external_packages,
)
from repro.reporting.summary import build_cache_rows
from repro.scheduler.cache import (
    BuildCache,
    build_cache_key,
    package_identity_digest,
)
from repro.scheduler.spec import CampaignSpec
from repro.storage.artifacts import ArtifactStore


KEYS = ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"]


class RecordingBuilder(PackageBuilder):
    """A builder that records every real compilation it performs."""

    def __init__(self):
        super().__init__()
        self.built = []

    def build_package(self, package, configuration):
        self.built.append((package.experiment, package.name, configuration.key))
        return super().build_package(package, configuration)


def _fresh_system(experiments=("ZEUS", "HERMES")):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    builders = {
        "ZEUS": lambda: build_zeus_experiment(scale=0.15, shared_externals=True),
        "HERMES": lambda: build_hermes_experiment(scale=0.2, shared_externals=True),
    }
    for name in experiments:
        system.register_experiment(builders[name]())
    return system


class TestIdentityDigest:
    def test_digest_ignores_the_owning_experiment(self, sl5_64_gcc44):
        zeus, hermes = (
            shared_external_packages("ZEUS")[0],
            shared_external_packages("HERMES")[0],
        )
        assert zeus.experiment != hermes.experiment
        assert zeus.source_digest == hermes.source_digest
        assert package_identity_digest(
            zeus, sl5_64_gcc44
        ) == package_identity_digest(hermes, sl5_64_gcc44)

    def test_digest_ignores_category_description_and_dependencies(
        self, small_inventory, sl5_64_gcc44
    ):
        from repro.buildsys.package import PackageCategory

        package = small_inventory.all()[0]
        relabelled = replace(
            package,
            category=PackageCategory.MONITORING,
            description="relabelled",
            dependencies=(),
        )
        assert package_identity_digest(
            package, sl5_64_gcc44
        ) == package_identity_digest(relabelled, sl5_64_gcc44)

    def test_digest_sensitive_to_content(self, small_inventory, sl5_64_gcc44):
        package = small_inventory.all()[0]
        for changed in (
            replace(package, version="99.9"),
            replace(package, lines_of_code=package.lines_of_code + 1),
            replace(package, fragility=min(package.fragility + 0.1, 1.0)),
        ):
            assert package_identity_digest(
                changed, sl5_64_gcc44
            ) != package_identity_digest(package, sl5_64_gcc44)

    def test_legacy_name_is_an_alias(self, small_inventory, sl5_64_gcc44):
        package = small_inventory.all()[0]
        assert build_cache_key(package, sl5_64_gcc44) == package_identity_digest(
            package, sl5_64_gcc44
        )


class TestSharedHitAccounting:
    def test_cross_experiment_hit_is_counted_and_attributed(self, sl5_64_gcc44):
        cache = BuildCache(ArtifactStore())
        donor = shared_external_packages("ZEUS")[0]
        taker = shared_external_packages("HERMES")[0]
        builder = PackageBuilder()
        cache.store(donor, sl5_64_gcc44, builder.build_package(donor, sl5_64_gcc44))
        replay = cache.lookup(taker, sl5_64_gcc44)
        assert replay is not None
        # The replay is rebound to the requesting experiment's package.
        assert replay.package == taker
        assert cache.statistics.shared_hits == 1
        assert cache.statistics.donated_by_experiment == {"ZEUS": 1}
        # A same-experiment hit is not a shared one.
        assert cache.lookup(donor, sl5_64_gcc44) is not None
        assert cache.statistics.hits == 2
        assert cache.statistics.shared_hits == 1

    def test_shared_statistics_survive_persistence(self, sl5_64_gcc44):
        from repro.storage.common_storage import CommonStorage

        cache = BuildCache(ArtifactStore())
        donor = shared_external_packages("ZEUS")[0]
        taker = shared_external_packages("HERMES")[0]
        cache.store(
            donor, sl5_64_gcc44,
            PackageBuilder().build_package(donor, sl5_64_gcc44),
        )
        cache.lookup(taker, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert restored.statistics.shared_hits == 1
        assert restored.statistics.donated_by_experiment == {"ZEUS": 1}
        # The donor attribution travels with the journal: a hit from a third
        # experiment is still credited to the original storing experiment.
        third = replace(taker, experiment="H1")
        restored.lookup(third, sl5_64_gcc44)
        assert restored.statistics.donated_by_experiment == {"ZEUS": 2}

    def test_statistics_delta_subtracts_donations(self):
        from repro.scheduler.cache import CacheStatistics

        after = CacheStatistics(
            hits=5, shared_hits=3, donated_by_experiment={"ZEUS": 2, "H1": 1}
        )
        before = CacheStatistics(
            hits=2, shared_hits=1, donated_by_experiment={"ZEUS": 1}
        )
        delta = after - before
        assert delta.shared_hits == 2
        assert delta.donated_by_experiment == {"ZEUS": 1, "H1": 1}


class TestSharedPackageCampaign:
    """The acceptance scenario: two experiments pinning the same externals."""

    def test_campaign_builds_each_shared_package_exactly_once(self):
        system = _fresh_system()
        recorder = RecordingBuilder()
        system.runner.builder = recorder
        campaign = system.submit(
            CampaignSpec(configuration_keys=tuple(KEYS), persist_spec=False)
        ).result()
        shared_names = {
            package.name for package in shared_external_packages("ZEUS")
        }
        assert shared_names
        for key in KEYS:
            for name in sorted(shared_names):
                compiled = [
                    record for record in recorder.built
                    if record[1] == name and record[2] == key
                ]
                # Compiled once — by the first experiment of the matrix
                # (HERMES sorts first) — and served to ZEUS from the cache.
                assert compiled == [("HERMES", name, key)]
        statistics = campaign.cache_statistics
        assert statistics.shared_hits == len(shared_names) * len(KEYS)
        assert statistics.donated_by_experiment == {
            "HERMES": len(shared_names) * len(KEYS)
        }

    def test_campaign_output_is_bit_identical_to_the_cold_path(self):
        baseline = _fresh_system()
        expected = [
            baseline.validate(experiment, key).run.to_document()
            for experiment in ("HERMES", "ZEUS")
            for key in KEYS
        ]
        shared = _fresh_system()
        campaign = shared.submit(
            CampaignSpec(
                experiments=("HERMES", "ZEUS"),
                configuration_keys=tuple(KEYS),
                workers=3,
                persist_spec=False,
            )
        ).result()
        assert campaign.cache_statistics.shared_hits > 0
        assert [run.to_document() for run in campaign.runs()] == expected
        assert [record.to_dict() for record in shared.catalog.all()] == [
            record.to_dict() for record in baseline.catalog.all()
        ]

    def test_persisted_journal_donates_across_installations(self):
        donor = _fresh_system(("ZEUS",))
        donor.submit(
            CampaignSpec(configuration_keys=tuple(KEYS), persist_spec=False)
        )
        assert donor.persist_build_cache() > 0

        taker = _fresh_system(("HERMES",))
        taker.restore_build_cache(donor.storage)
        campaign = taker.submit(
            CampaignSpec(configuration_keys=tuple(KEYS), persist_spec=False)
        ).result()
        shared_count = len(shared_external_packages("HERMES")) * len(KEYS)
        statistics = campaign.cache_statistics
        assert statistics.shared_hits == shared_count
        assert statistics.donated_by_experiment == {"ZEUS": shared_count}
        # HERMES's own packages still had to be compiled.
        assert statistics.misses > 0

    def test_report_rows_show_the_donations(self):
        system = _fresh_system()
        campaign = system.submit(
            CampaignSpec(configuration_keys=(KEYS[0],), persist_spec=False)
        ).result()
        rows = {row["quantity"]: row["value"] for row in build_cache_rows(
            campaign.cache_statistics
        )}
        shared_count = len(shared_external_packages("ZEUS"))
        assert rows["build cache shared hits (cross-experiment)"] == shared_count
        assert rows["  hits donated by HERMES"] == shared_count
        assert "shared hits (cross-experiment)" in campaign.render_text()

    def test_no_cache_bypasses_an_installed_caching_builder(self):
        """The cold path really compiles even with a caching builder mounted."""
        from repro.scheduler.cache import BuildCache, CachingPackageBuilder
        from repro.storage.artifacts import ArtifactStore

        system = _fresh_system(("HERMES",))
        recorder = RecordingBuilder()
        mounted_cache = BuildCache(ArtifactStore())
        system.runner.builder = CachingPackageBuilder(
            mounted_cache, base=recorder
        )
        spec = CampaignSpec(
            configuration_keys=(KEYS[0],), use_cache=False, persist_spec=False
        )
        system.submit(spec)
        first_builds = len(recorder.built)
        assert first_builds > 0
        assert mounted_cache.statistics.lookups == 0
        # A second cold campaign compiles everything again — nothing warm.
        system.submit(spec)
        assert len(recorder.built) == 2 * first_builds

    def test_spec_rejects_budget_without_cache(self):
        from repro._common import SchedulingError

        spec = CampaignSpec(use_cache=False, cache_budget_bytes=1024)
        with pytest.raises(SchedulingError):
            spec.validate()

    def test_no_cache_campaign_compiles_everything(self):
        system = _fresh_system()
        recorder = RecordingBuilder()
        system.runner.builder = recorder
        campaign = system.submit(
            CampaignSpec(
                configuration_keys=(KEYS[0],),
                use_cache=False,
                persist_spec=False,
            )
        ).result()
        statistics = campaign.cache_statistics
        assert statistics.lookups == 0 and statistics.stores == 0
        # Every shared external really compiled once per experiment.
        shared_names = {p.name for p in shared_external_packages("ZEUS")}
        for name in sorted(shared_names):
            experiments = sorted(
                record[0] for record in recorder.built if record[1] == name
            )
            assert experiments == ["HERMES", "ZEUS"]


class TestDonorAwareEviction:
    """Size-budget eviction spares proven cross-experiment donors.

    Entries no *other* experiment ever reused are evicted first (lowest
    per-entry shared-hit count), then least-recently-hit — so the shared
    externals that warm-start other installations survive the budget.
    """

    def _cache_with_one_donor(self, configuration):
        """Five private entries plus one entry HERMES reused from ZEUS."""
        cache = BuildCache(ArtifactStore())
        builder = PackageBuilder()
        privates = []
        from repro.experiments.inventories import InventoryQuirks, build_inventory

        inventory = build_inventory(
            "ZEUS", 5,
            quirks=InventoryQuirks(
                n_not_ported_to_newest_abi=0, n_legacy_root_api=0,
                n_strictness_limited=0, n_32bit_only=0,
            ),
        )
        for package in inventory.all():
            cache.store(
                package, configuration,
                builder.build_package(package, configuration),
            )
            privates.append(package)
        donor = shared_external_packages("ZEUS")[0]
        taker = shared_external_packages("HERMES")[0]
        cache.store(donor, configuration, builder.build_package(donor, configuration))
        assert cache.lookup(taker, configuration) is not None  # the donation
        return cache, privates, donor

    def test_unshared_entries_are_evicted_first(self, sl5_64_gcc44):
        cache, privates, donor = self._cache_with_one_donor(sl5_64_gcc44)
        # Touch every private entry AFTER the donation: under pure
        # least-recently-hit ordering the donor entry would go first.
        for package in privates:
            assert cache.lookup(package, sl5_64_gcc44) is not None
        donor_size = cache.entry_size_bytes(
            PackageBuilder().build_package(donor, sl5_64_gcc44)
        )
        cache.enforce_budget(cache.total_size_bytes() - donor_size)
        # The donor survived; at least one never-shared entry was evicted.
        assert cache.contains(donor, sl5_64_gcc44)
        assert cache.statistics.evictions >= 1
        assert any(
            not cache.contains(package, sl5_64_gcc44) for package in privates
        )

    def test_recency_breaks_ties_between_unshared_entries(self, sl5_64_gcc44):
        cache, privates, _donor = self._cache_with_one_donor(sl5_64_gcc44)
        # Touch every private entry except the first: among the equally
        # unshared entries the untouched one goes first.
        for package in privates[1:]:
            assert cache.lookup(package, sl5_64_gcc44) is not None
        victim_size = cache.entry_size_bytes(
            PackageBuilder().build_package(privates[0], sl5_64_gcc44)
        )
        cache.enforce_budget(cache.total_size_bytes() - victim_size)
        assert not cache.contains(privates[0], sl5_64_gcc44)
        assert all(
            cache.contains(package, sl5_64_gcc44) for package in privates[1:]
        )

    def test_shared_counts_survive_persistence(self, sl5_64_gcc44):
        from repro.storage.common_storage import CommonStorage

        cache, privates, donor = self._cache_with_one_donor(sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        for package in privates:
            assert restored.lookup(package, sl5_64_gcc44) is not None
        donor_size = restored.entry_size_bytes(
            PackageBuilder().build_package(donor, sl5_64_gcc44)
        )
        restored.enforce_budget(restored.total_size_bytes() - donor_size)
        # The restored cache still knows the donor was shared and spares it.
        assert restored.contains(donor, sl5_64_gcc44)

    def test_donation_after_persist_is_rejournalled(self, sl5_64_gcc44):
        """A shared hit AFTER the entry was journalled must survive restore.

        The entry's original record carries shared_hits=0; the next persist
        appends a superseding record with the moved count, so the restored
        cache's donor-aware eviction still spares the proven donor.
        """
        from repro.storage.common_storage import CommonStorage

        cache, privates, donor = self._cache_with_one_donor(sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        # The donation happens only now — after the journal was written.
        fresh = BuildCache(cache.artifact_store)
        builder = PackageBuilder()
        for package in privates + [donor]:
            fresh.store(
                package, sl5_64_gcc44,
                builder.build_package(package, sl5_64_gcc44),
            )
        clean = CommonStorage()
        fresh.persist_to(clean)
        taker = shared_external_packages("HERMES")[0]
        assert fresh.lookup(taker, sl5_64_gcc44) is not None  # post-persist hit
        assert fresh.persist_to(clean) == 0  # no new entries...
        restored = BuildCache.restore_from(clean, ArtifactStore())
        # ...but the superseding record carried the donor count across.
        for package in privates:
            assert restored.lookup(package, sl5_64_gcc44) is not None
        donor_size = restored.entry_size_bytes(
            builder.build_package(donor, sl5_64_gcc44)
        )
        restored.enforce_budget(restored.total_size_bytes() - donor_size)
        assert restored.contains(donor, sl5_64_gcc44)

    def test_repersist_without_donations_appends_nothing(self, sl5_64_gcc44):
        """The superseding-record path fires only when a count moved."""
        from repro.storage.common_storage import CommonStorage

        cache, privates, _donor = self._cache_with_one_donor(sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        records = len(storage.keys(BuildCache.NAMESPACE, prefix=BuildCache.JOURNAL_PREFIX))
        # Same-experiment traffic moves recency, not shared counts.
        for package in privates:
            assert cache.lookup(package, sl5_64_gcc44) is not None
        assert cache.persist_to(storage) == 0
        assert len(
            storage.keys(BuildCache.NAMESPACE, prefix=BuildCache.JOURNAL_PREFIX)
        ) == records
