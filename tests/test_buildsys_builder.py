"""Tests for the simulated package builder and build campaigns."""

import pytest

from repro._common import BuildError
from repro.buildsys.builder import BuildStatus, PackageBuilder
from repro.buildsys.package import (
    Language,
    PackageCategory,
    PackageInventory,
    SoftwarePackage,
)
from repro.buildsys.tarball import Tarball
from repro.environment.compatibility import SoftwareRequirements


def make_package(name, dependencies=(), requirements=None, fragility=0.1):
    return SoftwarePackage(
        name=name,
        version="1.0",
        experiment="TESTEXP",
        category=PackageCategory.RECONSTRUCTION,
        language=Language.FORTRAN,
        lines_of_code=3000,
        dependencies=tuple(dependencies),
        requirements=requirements or SoftwareRequirements(),
        fragility=fragility,
    )


@pytest.fixture()
def builder():
    return PackageBuilder()


class TestBuildPackage:
    def test_successful_build_produces_tarball(self, builder, sl5_64_gcc44):
        result = builder.build_package(make_package("pkg-ok"), sl5_64_gcc44)
        assert result.succeeded
        assert result.tarball is not None
        assert result.tarball.package_name == "pkg-ok"
        assert result.build_seconds > 0

    def test_incompatible_package_fails(self, builder, sl6_64_gcc44):
        package = make_package(
            "pkg-old", requirements=SoftwareRequirements(max_os_abi=2)
        )
        result = builder.build_package(package, sl6_64_gcc44)
        assert result.status is BuildStatus.FAILED
        assert not result.succeeded
        assert result.tarball is None
        assert result.n_errors >= 1

    def test_fragile_package_warns_more_with_strict_compiler(
        self, builder, sl5_64_gcc44
    ):
        from repro.environment.compilers import CompilerCatalog

        fragile = make_package("pkg-fragile", fragility=0.6)
        gcc41_config = sl5_64_gcc44.with_compiler(CompilerCatalog().get("gcc4.1"))
        lenient = builder.build_package(fragile, gcc41_config)
        strict = builder.build_package(fragile, sl5_64_gcc44)
        assert strict.n_warnings >= lenient.n_warnings

    def test_warning_only_build_is_usable(self, builder, sl6_64_gcc44):
        package = make_package(
            "pkg-at-limit",
            requirements=SoftwareRequirements(
                max_strictness=sl6_64_gcc44.compiler.strictness
            ),
        )
        result = builder.build_package(package, sl6_64_gcc44)
        assert result.status in (BuildStatus.WARNINGS, BuildStatus.SUCCESS)
        assert result.succeeded

    def test_build_is_deterministic(self, builder, sl5_64_gcc44):
        package = make_package("pkg-det", fragility=0.4)
        first = builder.build_package(package, sl5_64_gcc44)
        second = builder.build_package(package, sl5_64_gcc44)
        assert first.status == second.status
        assert first.n_warnings == second.n_warnings
        assert first.tarball.digest == second.tarball.digest


class TestBuildCampaign:
    def _inventory(self):
        return PackageInventory(
            "TESTEXP",
            [
                make_package("core"),
                make_package(
                    "legacy", requirements=SoftwareRequirements(max_os_abi=2)
                ),
                make_package("analysis", dependencies=("core", "legacy")),
                make_package("standalone", dependencies=("core",)),
            ],
        )

    def test_all_green_on_old_platform(self, builder, sl5_64_gcc44):
        campaign = builder.build_inventory(self._inventory(), sl5_64_gcc44)
        assert campaign.all_usable
        assert campaign.n_failed == 0
        assert campaign.usable_fraction() == pytest.approx(1.0)

    def test_failure_cascades_to_dependents(self, builder, sl6_64_gcc44):
        campaign = builder.build_inventory(self._inventory(), sl6_64_gcc44)
        assert campaign.result_for("legacy").status is BuildStatus.FAILED
        assert campaign.result_for("analysis").status is BuildStatus.SKIPPED
        assert campaign.result_for("core").succeeded
        assert campaign.result_for("standalone").succeeded
        assert campaign.failed_packages() == ["legacy"]
        assert campaign.skipped_packages() == ["analysis"]

    def test_stop_on_failure(self, builder, sl6_64_gcc44):
        campaign = builder.build_inventory(
            self._inventory(), sl6_64_gcc44, stop_on_failure=True
        )
        assert campaign.n_failed == 1
        # Everything ordered after the failure is skipped, not attempted.
        assert campaign.n_skipped >= 1

    def test_missing_result_lookup_raises(self, builder, sl5_64_gcc44):
        campaign = builder.build_inventory(self._inventory(), sl5_64_gcc44)
        with pytest.raises(BuildError):
            campaign.result_for("ghost")

    def test_total_build_seconds_positive(self, builder, sl5_64_gcc44):
        campaign = builder.build_inventory(self._inventory(), sl5_64_gcc44)
        assert campaign.total_build_seconds() > 0


class TestTarball:
    def test_filename_contains_configuration(self, sl5_64_gcc44):
        tarball = Tarball.for_build(make_package("pkg-a"), sl5_64_gcc44)
        assert "pkg-a-1.0" in tarball.filename
        assert sl5_64_gcc44.key in tarball.filename

    def test_digest_differs_between_configurations(self, sl5_64_gcc44, sl6_64_gcc44):
        package = make_package("pkg-a")
        first = Tarball.for_build(package, sl5_64_gcc44)
        second = Tarball.for_build(package, sl6_64_gcc44)
        assert first.digest != second.digest

    def test_digest_stable_for_same_inputs(self, sl5_64_gcc44):
        package = make_package("pkg-a")
        assert (
            Tarball.for_build(package, sl5_64_gcc44).digest
            == Tarball.for_build(package, sl5_64_gcc44).digest
        )

    def test_serialisation_round_trip(self, sl5_64_gcc44):
        tarball = Tarball.for_build(make_package("pkg-a"), sl5_64_gcc44)
        rebuilt = Tarball.from_dict(tarball.to_dict())
        assert rebuilt == tarball
