"""Tests for environment configurations and the standard sp-system set."""

import pytest

from repro._common import ConfigurationError
from repro.environment.configuration import (
    EnvironmentFactory,
    next_generation_configuration,
    sp_system_configurations,
    sp_system_root_versions,
)


class TestEnvironmentConfiguration:
    def test_key_and_label(self, sl6_64_gcc44):
        assert sl6_64_gcc44.key == "SL6_64bit_gcc4.4"
        assert sl6_64_gcc44.label == "SL6/64bit gcc4.4"
        assert "ROOT-5.34" in sl6_64_gcc44.full_label

    def test_external_lookup(self, sl6_64_gcc44):
        assert sl6_64_gcc44.has_external("ROOT")
        assert sl6_64_gcc44.external("ROOT").version == "5.34"
        assert sl6_64_gcc44.external("GEANT4") is None

    def test_external_map(self, sl5_64_gcc44):
        mapping = sl5_64_gcc44.external_map()
        assert mapping["ROOT"] == "5.34"
        assert mapping["CERNLIB"] == "2006"

    def test_with_external_replaces_product(self, sl6_64_gcc44, environment_factory):
        root6 = environment_factory.external_catalog.get("ROOT", "6.02")
        updated = sl6_64_gcc44.with_external(root6)
        assert updated.external("ROOT").version == "6.02"
        # The original configuration is untouched (immutability).
        assert sl6_64_gcc44.external("ROOT").version == "5.34"

    def test_without_external(self, sl6_64_gcc44):
        stripped = sl6_64_gcc44.without_external("MySQL")
        assert not stripped.has_external("MySQL")
        assert sl6_64_gcc44.has_external("MySQL")

    def test_word_size_must_be_supported_by_os(self, environment_factory):
        with pytest.raises(ConfigurationError):
            environment_factory.create("SL6", 32, "gcc4.4", {})

    def test_duplicate_externals_rejected(self, environment_factory):
        factory = environment_factory
        root = factory.external_catalog.get("ROOT", "5.34")
        configuration = factory.create("SL6", 64, "gcc4.4", {})
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(configuration, externals=(root, root))

    def test_32bit_only_external_rejected_on_64bit(self, environment_factory):
        with pytest.raises(ConfigurationError):
            environment_factory.create("SL5", 64, "gcc4.4", {"CERNLIB": "2005"})

    def test_differences_lists_all_changes(self, sl5_64_gcc44, sl6_64_gcc44):
        differences = sl6_64_gcc44.differences(sl5_64_gcc44)
        assert any("operating_system" in diff for diff in differences)
        # Same compiler and externals: only the OS change is reported.
        assert not any(diff.startswith("compiler") for diff in differences)

    def test_differences_empty_for_identical(self, sl6_64_gcc44):
        assert sl6_64_gcc44.differences(sl6_64_gcc44) == []

    def test_describe_is_json_like(self, sl6_64_gcc44):
        description = sl6_64_gcc44.describe()
        assert description["operating_system"] == "SL6"
        assert description["word_size"] == 64
        assert description["compiler"] == "gcc4.4"
        assert isinstance(description["externals"], dict)

    def test_with_operating_system_adjusts_word_size(self, environment_factory):
        sl5_32 = environment_factory.create("SL5", 32, "gcc4.4", {})
        sl6 = environment_factory.os_catalog.get("SL6")
        migrated = sl5_32.with_operating_system(sl6)
        assert migrated.word_size == 64


class TestStandardConfigurations:
    def test_exactly_five_configurations(self):
        assert len(sp_system_configurations()) == 5

    def test_paper_configuration_keys(self):
        keys = {configuration.key for configuration in sp_system_configurations()}
        assert keys == {
            "SL5_32bit_gcc4.1",
            "SL5_32bit_gcc4.4",
            "SL5_64bit_gcc4.1",
            "SL5_64bit_gcc4.4",
            "SL6_64bit_gcc4.4",
        }

    def test_root_versions_listed_in_paper(self):
        assert sp_system_root_versions() == ["5.26", "5.28", "5.30", "5.32", "5.34"]

    def test_all_configurations_have_root_installed(self):
        for configuration in sp_system_configurations():
            assert configuration.has_external("ROOT")

    def test_next_generation_is_sl7_with_root6(self):
        configuration = next_generation_configuration()
        assert configuration.operating_system.name == "SL7"
        assert configuration.compiler.name == "gcc4.8"
        assert configuration.external("ROOT").version == "6.02"
