"""Tests for the physics analysis step and the numeric context model."""

import numpy as np
import pytest

from repro._common import ValidationError
from repro.hepdata.analysis import (
    DEFAULT_Q2_BINS,
    PhysicsAnalysis,
    SelectionCuts,
    compare_cross_sections,
)
from repro.hepdata.dst import DSTProducer, MicroDSTProducer
from repro.hepdata.generator import MonteCarloGenerator
from repro.hepdata.numerics import (
    NumericContext,
    REFERENCE_CONTEXT,
    context_for_environment,
)
from repro.hepdata.reconstruction import EventReconstruction
from repro.hepdata.simulation import DetectorSimulation


@pytest.fixture(scope="module")
def micro_dst():
    record = MonteCarloGenerator().generate(150, seed=21)
    simulated = DetectorSimulation().simulate(record, seed=22)
    reconstructed = EventReconstruction().reconstruct(simulated)
    return MicroDSTProducer().produce(DSTProducer().produce(reconstructed))


class TestSelectionCuts:
    def test_invalid_ranges(self):
        with pytest.raises(ValidationError):
            SelectionCuts(min_q2=100.0, max_q2=10.0)
        with pytest.raises(ValidationError):
            SelectionCuts(min_y=0.9, max_y=0.1)
        with pytest.raises(ValidationError):
            SelectionCuts(min_jets=-1)


class TestPhysicsAnalysis:
    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            PhysicsAnalysis(luminosity_pb=0.0)
        with pytest.raises(ValidationError):
            PhysicsAnalysis(q2_bins=(10.0,))
        with pytest.raises(ValidationError):
            PhysicsAnalysis(q2_bins=(100.0, 10.0))

    def test_analysis_selects_events_and_fills_histograms(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        assert result.n_input_events == len(micro_dst)
        assert 0 < result.n_selected_events <= result.n_input_events
        assert len(result.histograms) == 6
        assert result.histograms.get("q2").total > 0

    def test_selection_efficiency_between_zero_and_one(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        assert 0.0 < result.selection_efficiency <= 1.0

    def test_cross_section_bins_match_configuration(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        assert len(result.cross_section) == len(DEFAULT_Q2_BINS) - 1
        for point, low, high in zip(
            result.cross_section, DEFAULT_Q2_BINS[:-1], DEFAULT_Q2_BINS[1:]
        ):
            assert point.q2_low == low
            assert point.q2_high == high
            assert point.cross_section_pb >= 0.0

    def test_cross_section_falls_with_q2(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        values = [point.cross_section_pb for point in result.cross_section]
        # The spectrum is steeply falling: the first bin dominates the last.
        assert values[0] > values[-1]

    def test_empty_input(self):
        from repro.hepdata.dst import MicroDST

        result = PhysicsAnalysis().run(MicroDST())
        assert result.n_selected_events == 0
        assert result.summary["total_cross_section_pb"] == 0.0

    def test_summary_keys(self, micro_dst):
        summary = PhysicsAnalysis().run(micro_dst).summary
        for key in (
            "n_input_events", "n_selected_events", "selection_efficiency",
            "total_cross_section_pb", "mean_q2",
        ):
            assert key in summary


class TestCrossSectionComparison:
    def test_identical_measurements_compatible(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        compatible, messages = compare_cross_sections(
            result.cross_section, result.cross_section
        )
        assert compatible
        assert messages == []

    def test_different_binning_detected(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        other = PhysicsAnalysis(q2_bins=(10.0, 100.0, 1000.0)).run(micro_dst)
        compatible, messages = compare_cross_sections(
            result.cross_section, other.cross_section
        )
        assert not compatible
        assert messages

    def test_large_shift_detected(self, micro_dst):
        result = PhysicsAnalysis().run(micro_dst)
        shifted = [
            type(point)(
                q2_low=point.q2_low, q2_high=point.q2_high, n_events=point.n_events,
                cross_section_pb=point.cross_section_pb * 10.0 + 1.0,
                statistical_error_pb=point.statistical_error_pb,
            )
            for point in result.cross_section
        ]
        compatible, messages = compare_cross_sections(result.cross_section, shifted)
        assert not compatible


class TestNumericContext:
    def test_reference_context_is_identity(self):
        assert REFERENCE_CONTEXT.perturb_scalar(3.14, "x") == 3.14

    def test_perturbation_is_deterministic(self):
        context = NumericContext(label="env", rounding_scale=1e-10)
        assert context.perturb_scalar(1.0, "tag") == context.perturb_scalar(1.0, "tag")

    def test_perturbation_is_small(self):
        context = context_for_environment("SL6", 64, 3, 3)
        value = context.perturb_scalar(100.0, "tag")
        assert value != 100.0
        assert value == pytest.approx(100.0, rel=1e-8)

    def test_defect_changes_results_strongly(self):
        context = NumericContext(
            label="broken", defects=(("32bit-index-overflow", 0.2),)
        )
        assert context.perturb_scalar(100.0, "tag") == pytest.approx(80.0)

    def test_removed_interface_defect_zeroes_some_values(self):
        context = NumericContext(
            label="broken", defects=(("removed-interface-returns-zero", 1.0),)
        )
        assert context.perturb_scalar(5.0, "any") == 0.0

    def test_array_perturbation_shape_preserved(self):
        context = context_for_environment("SL6", 64, 3, 3)
        values = np.ones((4, 3))
        perturbed = context.perturb_array(values, "tag")
        assert perturbed.shape == values.shape
        assert np.allclose(perturbed, values, rtol=1e-8)

    def test_defect_map_and_has_defect(self):
        context = NumericContext(defects=(("uninitialised-memory", 0.1),))
        assert context.has_defect("uninitialised-memory")
        assert not context.has_defect("other")
        assert context.defect_map() == {"uninitialised-memory": 0.1}
