"""Tests for the preservation strategies, lifetime model and migration planner."""

import pytest

from repro._common import ValidationError
from repro.environment.configuration import EnvironmentFactory
from repro.environment.evolution import EnvironmentTimeline
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.migration.lifetime import LifetimeSimulator
from repro.migration.planner import MigrationPlanner
from repro.migration.strategies import ActiveMigrationStrategy, FreezeStrategy


@pytest.fixture(scope="module")
def quirky_inventory():
    """An inventory with problems waiting on newer platforms."""
    return build_inventory(
        "EXPM", 40,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=2,
            n_legacy_root_api=2,
            n_strictness_limited=2,
        ),
    )


@pytest.fixture(scope="module")
def frozen_configuration():
    return EnvironmentFactory().create(
        "SL5", 64, "gcc4.1",
        {"ROOT": "5.26", "CERNLIB": "2006", "GEANT3": "3.21", "MCGEN": "1.4", "MySQL": "5.0"},
    )


class TestStrategies:
    def test_freeze_keeps_building_but_loses_support(
        self, quirky_inventory, frozen_configuration
    ):
        strategy = FreezeStrategy(frozen_configuration)
        timeline = EnvironmentTimeline()
        early = strategy.evaluate_year(
            2012, quirky_inventory, timeline.recommended_configuration(2012),
            tuple(name for name in ("SL5", "SL6")),
        )
        assert early.fully_usable
        assert early.migration_effort_person_weeks == 0.0
        late = strategy.evaluate_year(
            2019, quirky_inventory, timeline.recommended_configuration(2019),
            tuple(("SL6", "SL7")),
        )
        assert not late.security_supported
        assert not late.fully_usable
        assert late.notes

    def test_active_migration_ports_failing_packages(self, quirky_inventory):
        import copy

        inventory = copy.deepcopy(quirky_inventory)
        strategy = ActiveMigrationStrategy()
        timeline = EnvironmentTimeline()
        result_2015 = strategy.evaluate_year(
            2015, inventory, timeline.recommended_configuration(2015), ("SL6", "SL7"),
        )
        assert result_2015.usable_fraction == pytest.approx(1.0)
        assert result_2015.migration_effort_person_weeks > 0.0
        assert result_2015.notes
        # A second year on the same platform needs no further porting.
        result_again = strategy.evaluate_year(
            2016, inventory, timeline.recommended_configuration(2015), ("SL6", "SL7"),
        )
        assert result_again.migration_effort_person_weeks == 0.0

    def test_invalid_port_effort_rejected(self):
        with pytest.raises(ValidationError):
            ActiveMigrationStrategy(port_effort_weeks_per_10kloc=0.0)


class TestLifetimeSimulator:
    def test_migration_outlives_freeze(self, quirky_inventory, frozen_configuration):
        simulator = LifetimeSimulator()
        comparison = simulator.compare(
            [FreezeStrategy(frozen_configuration), ActiveMigrationStrategy()],
            quirky_inventory,
            start_year=2012,
            end_year=2022,
        )
        freeze_result = comparison.result("freeze")
        migration_result = comparison.result("active-migration")
        assert migration_result.usable_years > freeze_result.usable_years
        assert comparison.lifetime_extension_years() > 0
        # Migration costs effort, freezing does not.
        assert migration_result.total_effort_person_weeks > 0.0
        assert freeze_result.total_effort_person_weeks == 0.0

    def test_original_inventory_not_mutated(self, quirky_inventory):
        simulator = LifetimeSimulator()
        before = {pkg.name: pkg.version for pkg in quirky_inventory.all()}
        simulator.simulate(ActiveMigrationStrategy(), quirky_inventory, 2012, 2016)
        after = {pkg.name: pkg.version for pkg in quirky_inventory.all()}
        assert before == after

    def test_rows_and_fraction_by_year(self, quirky_inventory, frozen_configuration):
        simulator = LifetimeSimulator()
        result = simulator.simulate(
            FreezeStrategy(frozen_configuration), quirky_inventory, 2012, 2015
        )
        assert len(result.yearly) == 4
        assert set(result.usable_fraction_by_year()) == {2012, 2013, 2014, 2015}
        rows = result.rows()
        assert rows[0]["strategy"] == "freeze"

    def test_invalid_year_range(self, quirky_inventory, frozen_configuration):
        with pytest.raises(ValidationError):
            LifetimeSimulator().simulate(
                FreezeStrategy(frozen_configuration), quirky_inventory, 2015, 2012
            )

    def test_unknown_strategy_lookup(self):
        from repro.migration.lifetime import LifetimeComparison

        with pytest.raises(ValidationError):
            LifetimeComparison().result("ghost")


class TestMigrationPlanner:
    def test_sl5_to_sl6_plan_identifies_unported_packages(
        self, tiny_zeus, sl5_64_gcc44, sl6_64_gcc44
    ):
        planner = MigrationPlanner()
        plan = planner.plan(tiny_zeus, sl5_64_gcc44, sl6_64_gcc44)
        assert not plan.is_trivial
        package_items = [item for item in plan.items if item.item_type == "package"]
        assert package_items
        assert plan.total_effort_person_weeks > 0.0
        assert 0.0 < plan.predicted_pass_fraction < 1.0

    def test_same_platform_plan_is_trivial(self, tiny_hermes, sl5_64_gcc44):
        plan = MigrationPlanner().plan(tiny_hermes, sl5_64_gcc44, sl5_64_gcc44)
        assert plan.is_trivial
        assert plan.predicted_pass_fraction == pytest.approx(1.0)

    def test_root6_plan_blames_external_dependency(self, tiny_h1, sl5_64_gcc44, sl7_root6):
        plan = MigrationPlanner().plan(tiny_h1, sl5_64_gcc44, sl7_root6)
        categories = {
            category for item in plan.items for category in item.categories
        }
        assert "external_dependency" in categories

    def test_items_ordered_by_blocking_impact(self, tiny_h1, sl5_64_gcc44, sl7_root6):
        plan = MigrationPlanner().plan(tiny_h1, sl5_64_gcc44, sl7_root6)
        ordered = plan.ordered_items()
        blocking = [item.blocking for item in ordered]
        assert blocking == sorted(blocking, reverse=True)
        rows = plan.rows()
        assert rows and "effort_person_weeks" in rows[0]

    def test_compare_targets(self, tiny_hermes, sl5_64_gcc44, sl6_64_gcc44, sl7_root6):
        plans = MigrationPlanner().compare_targets(
            tiny_hermes, sl5_64_gcc44, [sl6_64_gcc44, sl7_root6]
        )
        assert set(plans) == {sl6_64_gcc44.key, sl7_root6.key}
        # The further the target, the more work is expected.
        assert (
            plans[sl7_root6.key].total_effort_person_weeks
            >= plans[sl6_64_gcc44.key].total_effort_person_weeks
        )
