"""Tests for the validation-as-a-service daemon.

The contract under test is the ISSUE's acceptance story: many tenants
submitting concurrently through the queue must get exactly the validation
results a serial operator would have produced — fair-share scheduling and
rate limiting decide *order and admission*, never *content*.  The stress
test at the bottom drives a three-tenant, 100+-campaign interleaved run
from real threads and pins the run documents byte-for-byte against a
serial replay; the smaller tests cover usage accounting, donated-build
attribution, cancellation, rate-limit rejection with retry-after,
restart resume from the persisted queue, the supervised heartbeat worker
and the live dashboard page.
"""

import threading
import time

import pytest

from repro._common import SchedulingError
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment, build_zeus_experiment
from repro.scheduler.lifecycle import (
    EVENT_HEARTBEAT,
    EVENT_SUBMISSION_CANCELLED,
    EVENT_SUBMISSION_QUEUED,
    EVENT_SUBMISSION_STARTED,
    EVENT_TENANT_THROTTLED,
)
from repro.scheduler.spec import CampaignSpec
from repro.service import (
    SERVICE_NAMESPACE,
    ServiceRateLimited,
    HeartbeatWorker,
    TenantPolicy,
    ValidationService,
    cancel_persisted,
    load_submissions,
)
from repro.storage.common_storage import CommonStorage


KEY = "SL6_64bit_gcc4.4"


def _fresh_system(storage=None):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
        storage=storage,
    )
    system.provision_standard_images()
    system.register_experiment(
        build_zeus_experiment(scale=0.15, shared_externals=True)
    )
    system.register_experiment(
        build_hermes_experiment(scale=0.2, shared_externals=True)
    )
    return system


def _cell_spec(experiment, key=KEY):
    return CampaignSpec(
        experiments=(experiment,),
        configuration_keys=(key,),
        workers=1,
        persist_spec=False,
    )


def _quiet_service(system, **overrides):
    options = dict(dashboard=False, heartbeat_every=0)
    options.update(overrides)
    return ValidationService(system, **options)


def _events(system, name):
    return [event for event in system.lifecycle.events if event.name == name]


class TestServiceDispatch:
    def test_drain_completes_submissions_and_bills_usage(self):
        system = _fresh_system()
        service = ValidationService(
            system,
            tenants=[TenantPolicy("alice", weight=2), TenantPolicy("bob")],
        )
        for _ in range(2):
            service.submit("alice", _cell_spec("ZEUS"))
        service.submit("bob", _cell_spec("HERMES"))
        processed = service.run_pending()

        assert [item.status for item in processed] == ["completed"] * 3
        assert all(item.campaign_id for item in processed)
        # Every cell executed is billed to exactly one tenant.
        assert service.ledger.total_cells() == sum(
            item.cells for item in processed
        ) == 3
        assert service.ledger.usage("alice").completed == 2
        assert service.ledger.usage("bob").completed == 1
        assert service.ledger.usage("alice").build_seconds > 0
        # Lifecycle telemetry: queued/started per submission, heartbeats on.
        assert len(_events(system, EVENT_SUBMISSION_QUEUED)) == 3
        assert len(_events(system, EVENT_SUBMISSION_STARTED)) == 3
        assert len(_events(system, EVENT_HEARTBEAT)) == 3
        # Final records persisted, queue documents retired.
        assert len(system.storage.keys(
            SERVICE_NAMESPACE, prefix=ValidationService.RECORD_PREFIX
        )) == 3
        assert not system.storage.keys(
            SERVICE_NAMESPACE, prefix=ValidationService.QUEUED_PREFIX
        )
        # The live dashboard rendered on every heartbeat.
        page = system.storage.get("reports", "service")["html"]
        assert "Validation service" in page
        assert "alice" in page and "bob" in page

    def test_fair_share_order_and_priority_lane(self):
        system = _fresh_system()
        service = _quiet_service(system)
        service.register_tenant(TenantPolicy("alice", weight=2))
        service.register_tenant(TenantPolicy("bob"))
        for _ in range(4):
            service.submit("alice", _cell_spec("ZEUS"))
        for _ in range(2):
            service.submit("bob", _cell_spec("HERMES"))
        urgent = service.submit("bob", _cell_spec("HERMES"), priority="high")

        processed = service.run_pending()
        order = [item.tenant for item in processed]
        # The high-priority submission dispatches first, then the weighted
        # rotation over the normal lane: alice twice per bob.
        assert processed[0].submission_id == urgent.submission_id
        assert order == ["bob", "alice", "alice", "bob", "alice", "alice", "bob"]

    def test_failed_submission_is_recorded_and_queue_continues(self):
        system = _fresh_system()
        service = _quiet_service(system)
        bad = service.submit("alice", _cell_spec("H1"))  # not registered
        good = service.submit("alice", _cell_spec("ZEUS"))
        processed = service.run_pending()

        assert [item.submission_id for item in processed] == [
            bad.submission_id, good.submission_id
        ]
        assert processed[0].status == "failed"
        assert "H1" in (processed[0].error or "")
        assert processed[1].status == "completed"
        assert service.ledger.usage("alice").failed == 1
        assert service.ledger.usage("alice").completed == 1

    def test_cancel_on_the_handle_emits_and_persists(self):
        system = _fresh_system()
        service = _quiet_service(system)
        first = service.submit("alice", _cell_spec("ZEUS"))
        second = service.submit("alice", _cell_spec("ZEUS"))
        cancelled = second.cancel()

        assert cancelled.status == "cancelled"
        assert len(_events(system, EVENT_SUBMISSION_CANCELLED)) == 1
        assert service.ledger.usage("alice").cancelled == 1
        record = system.storage.get(
            SERVICE_NAMESPACE,
            f"{ValidationService.RECORD_PREFIX}{second.submission_id}",
        )
        assert record["status"] == "cancelled"
        processed = service.run_pending()
        assert [item.submission_id for item in processed] == [
            first.submission_id
        ]
        with pytest.raises(SchedulingError):
            service.cancel(first.submission_id)  # already dispatched

    def test_rate_limited_submission_rejected_with_retry_after(self):
        system = _fresh_system()
        clock = {"now": 0.0}
        service = _quiet_service(system, clock=lambda: clock["now"])
        service.register_tenant(
            TenantPolicy("alice", rate_per_second=0.5, burst=1)
        )
        service.submit("alice", _cell_spec("ZEUS"))
        with pytest.raises(ServiceRateLimited) as excinfo:
            service.submit("alice", _cell_spec("ZEUS"))
        assert excinfo.value.retry_after == pytest.approx(2.0)
        assert excinfo.value.tenant == "alice"
        throttled = _events(system, EVENT_TENANT_THROTTLED)
        assert len(throttled) == 1
        assert throttled[0].payload["retry_after_seconds"] == pytest.approx(2.0)
        assert service.ledger.usage("alice").rejected == 1
        # The rejection never queued anything...
        assert service.queue.depth() == 1
        # ...and waiting out the retry-after admits the tenant again.
        clock["now"] += 2.0
        service.submit("alice", _cell_spec("ZEUS"))
        assert service.queue.depth() == 2

    def test_cross_tenant_warm_start_attributes_donated_builds(self):
        system = _fresh_system()
        service = _quiet_service(system)
        service.submit("alice", _cell_spec("ZEUS"))
        service.submit("bob", _cell_spec("HERMES"))
        service.run_pending()

        alice, bob = service.ledger.usage("alice"), service.ledger.usage("bob")
        # bob's HERMES campaign warm-started from the shared externals
        # alice's ZEUS campaign built...
        assert bob.shared_hits > 0
        # ...and the donated builds are credited to alice, the first
        # submitter of the donor experiment.
        assert alice.donated_builds == bob.shared_hits
        assert bob.donated_builds == 0


class TestServiceDurability:
    def test_restart_resumes_the_persisted_queue(self, tmp_path):
        directory = str(tmp_path)
        system = _fresh_system()
        service = _quiet_service(system)
        service.register_tenant(TenantPolicy("alice", weight=2))
        submitted = [
            service.submit("alice", _cell_spec("ZEUS")),
            service.submit("bob", _cell_spec("HERMES")),
            service.submit("alice", _cell_spec("ZEUS")),
        ]
        # The daemon dies before dispatching anything; only the storage
        # survives.
        system.storage.persist(directory)

        reloaded = CommonStorage.load(directory)
        resumed_system = _fresh_system(storage=reloaded)
        resumed = _quiet_service(resumed_system)
        assert resumed.queue.depth() == 3
        # Tenant policies (alice's weight) came back from the ledger.
        assert resumed.ledger.policy("alice").weight == 2
        processed = resumed.run_pending()
        # Fair share over the resumed backlog: alice (weight 2) twice,
        # then bob — per-tenant FIFO preserved from the original arrivals.
        assert [item.submission_id for item in processed] == [
            submitted[0].submission_id,
            submitted[2].submission_id,
            submitted[1].submission_id,
        ]
        assert all(item.status == "completed" for item in processed)
        # New submissions never collide with replayed IDs.
        fresh = resumed.submit("alice", _cell_spec("ZEUS"))
        assert fresh.sequence == 4

    def test_storage_level_queue_inspection_and_cancel(self, tmp_path):
        directory = str(tmp_path)
        system = _fresh_system()
        service = _quiet_service(system)
        target = service.submit("alice", _cell_spec("ZEUS"))
        service.submit("alice", _cell_spec("ZEUS"))
        system.storage.persist(directory)

        storage = CommonStorage.load(directory, namespaces=[SERVICE_NAMESPACE])
        queued = load_submissions(storage)
        assert [item.status for item in queued] == ["queued", "queued"]
        cancelled = cancel_persisted(storage, target.submission_id)
        assert cancelled.status == "cancelled"
        storage.persist(directory)

        # The next daemon over this storage never dispatches it.
        resumed = _quiet_service(_fresh_system(storage=CommonStorage.load(directory)))
        assert resumed.queue.depth() == 1
        with pytest.raises(SchedulingError):
            cancel_persisted(storage, target.submission_id)

    def test_empty_storage_has_no_service_state(self):
        assert load_submissions(CommonStorage()) == []
        with pytest.raises(SchedulingError):
            cancel_persisted(CommonStorage(), "sub-000001")


class TestHeartbeatTelemetry:
    def test_manual_beat_publishes_snapshot_and_dashboard(self):
        system = _fresh_system()
        service = ValidationService(system, heartbeat_every=0)
        service.submit("alice", _cell_spec("ZEUS"))
        snapshot = service.beat(source="test")
        assert snapshot["queue_depth"] == 1
        assert snapshot["backlog"] == {"alice": 1}
        assert snapshot["source"] == "test"
        beats = _events(system, EVENT_HEARTBEAT)
        assert len(beats) == 1
        assert beats[0].payload["queue_depth"] == 1
        page = system.storage.get("reports", "service")["html"]
        assert "queue_depth" in page

    def test_worker_beats_in_the_background(self):
        system = _fresh_system()
        service = _quiet_service(system, heartbeat_interval=0.01)
        service.heartbeat.start()
        deadline = time.monotonic() + 5.0
        while service.heartbeat.beats == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        service.heartbeat.stop()
        assert service.heartbeat.beats > 0
        assert not service.heartbeat.alive
        assert _events(system, EVENT_HEARTBEAT)

    def test_worker_self_reports_failures_and_supervise_restarts(self):
        system = _fresh_system()
        service = _quiet_service(system)
        worker = HeartbeatWorker(
            service, interval=0.005, max_consecutive_failures=2
        )
        blown = {"count": 0}

        def poisoned_beat(source="manual"):
            blown["count"] += 1
            raise RuntimeError("poisoned snapshot")

        service.beat = poisoned_beat
        worker.start()
        deadline = time.monotonic() + 5.0
        while worker.alive and time.monotonic() < deadline:
            time.sleep(0.01)
        # The worker died visibly after the failure budget...
        assert not worker.alive
        assert worker.failures >= 2
        assert "poisoned" in (worker.last_error or "")
        status = worker.status()
        assert status["failures"] == worker.failures

        # ...and supervise() brings a healthy worker back.
        del service.beat  # restore the real bound method
        assert worker.supervise()
        assert worker.restarts == 1
        deadline = time.monotonic() + 5.0
        while worker.beats == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        worker.stop()
        assert worker.beats > 0
        # A stopped worker is not restarted.
        assert not worker.supervise()

    def test_serve_forever_supervises_and_stops(self):
        system = _fresh_system()
        service = _quiet_service(system)
        service.submit("alice", _cell_spec("ZEUS"))
        thread = threading.Thread(
            target=service.serve_forever, kwargs={"poll_seconds": 0.01}
        )
        thread.start()
        deadline = time.monotonic() + 10.0
        while (
            service.submission("sub-000001").status != "completed"
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        service.stop()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert service.submission("sub-000001").status == "completed"


class TestServiceStress:
    TENANT_PLANS = {
        "alice": ("ZEUS", 35),
        "bob": ("HERMES", 35),
        "carol": ("ZEUS", 35),
    }

    def test_three_tenant_interleaved_run_matches_serial_replay(self):
        """3 tenants x 35 single-cell campaigns from real threads.

        Concurrent submission through the daemon queue, fair-share drain,
        then a serial replay of the recorded dispatch order on a fresh
        system: run documents and catalog records must be byte-identical,
        the ledger must sum to the cells actually executed, and every
        tenant's own submissions must have dispatched FIFO.
        """
        system = _fresh_system()
        service = _quiet_service(system)
        service.register_tenant(TenantPolicy("alice", weight=2))

        barrier = threading.Barrier(len(self.TENANT_PLANS))
        errors = []

        def submitter(tenant, experiment, count):
            try:
                barrier.wait(timeout=10.0)
                for _ in range(count):
                    service.submit(tenant, _cell_spec(experiment))
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append((tenant, error))

        threads = [
            threading.Thread(target=submitter, args=(tenant, experiment, count))
            for tenant, (experiment, count) in self.TENANT_PLANS.items()
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        total = sum(count for _, count in self.TENANT_PLANS.values())
        assert service.queue.depth() == total

        processed = service.run_pending()
        assert len(processed) == total
        assert all(item.status == "completed" for item in processed)

        # Per-tenant FIFO: each tenant's submissions dispatched in their
        # own arrival order, regardless of the global interleaving.
        for tenant in self.TENANT_PLANS:
            sequences = [
                item.sequence for item in processed if item.tenant == tenant
            ]
            assert sequences == sorted(sequences)
            assert len(sequences) == self.TENANT_PLANS[tenant][1]

        # Fair share: while every tenant has backlog, the rotation gives
        # alice (weight 2) two dispatches per bob/carol dispatch.
        assert [item.tenant for item in processed[:8]] == [
            "alice", "alice", "bob", "carol",
            "alice", "alice", "bob", "carol",
        ]

        # The ledger sums to the cells actually executed.
        assert service.ledger.total_cells() == total
        for tenant, (_, count) in self.TENANT_PLANS.items():
            assert service.ledger.usage(tenant).cells == count

        # Byte-identity: replay the recorded dispatch order serially on a
        # fresh system, without any queue, and compare everything.
        serial_system = _fresh_system()
        by_id = {item.submission_id: item for item in processed}
        serial_campaign_ids = []
        for submission_id in service.dispatch_order:
            handle = serial_system.submit(by_id[submission_id].spec)
            handle.result()
            serial_campaign_ids.append(handle.campaign_id)
        # Catalog records agree byte-for-byte...
        assert [
            record.to_dict() for record in system.catalog.all()
        ] == [
            record.to_dict() for record in serial_system.catalog.all()
        ]
        # ...and so do the raw persisted run documents.
        assert {
            key: system.storage.get("results", key)
            for key in system.storage.keys("results")
        } == {
            key: serial_system.storage.get("results", key)
            for key in serial_system.storage.keys("results")
        }
        # Campaign IDs were allocated in dispatch order, so the two
        # installations agree on them too.
        assert [
            by_id[submission_id].campaign_id
            for submission_id in service.dispatch_order
        ] == serial_campaign_ids
