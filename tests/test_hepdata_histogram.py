"""Tests for histograms and their statistical comparison."""

import numpy as np
import pytest

from repro._common import ValidationError
from repro.hepdata.histogram import (
    Histogram1D,
    HistogramSet,
    chi2_comparison,
    ks_comparison,
)


class TestHistogram1D:
    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            Histogram1D("h", 0, 0.0, 1.0)
        with pytest.raises(ValidationError):
            Histogram1D("h", 10, 1.0, 1.0)
        with pytest.raises(ValidationError):
            Histogram1D("h", 10, 0.0, 1.0, log_bins=True)

    def test_fill_and_total(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill_many([0.5, 1.5, 2.5], weights=[1.0, 2.0, 3.0])
        assert histogram.total == pytest.approx(6.0)
        assert histogram.n_entries == 3

    def test_under_and_overflow(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill(-1.0)
        histogram.fill(11.0)
        histogram.fill(5.0)
        assert histogram.underflow == 1.0
        assert histogram.overflow == 1.0
        assert histogram.total == 1.0

    def test_log_binning_edges_increasing(self):
        histogram = Histogram1D("h", 5, 1.0, 1000.0, log_bins=True)
        assert np.all(np.diff(histogram.edges) > 0)
        assert histogram.edges[0] == pytest.approx(1.0)
        assert histogram.edges[-1] == pytest.approx(1000.0)

    def test_mean_and_std(self):
        histogram = Histogram1D("h", 100, 0.0, 10.0)
        histogram.fill_many([5.0] * 50)
        assert histogram.mean() == pytest.approx(5.05, abs=0.1)
        assert histogram.std() == pytest.approx(0.0, abs=0.1)

    def test_mismatched_weights_rejected(self):
        histogram = Histogram1D("h", 10, 0.0, 1.0)
        with pytest.raises(ValidationError):
            histogram.fill_many([0.1, 0.2], weights=[1.0])

    def test_normalised_sums_to_one(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill_many([1.0, 2.0, 3.0, 4.0])
        assert histogram.normalised().sum() == pytest.approx(1.0)

    def test_scaled(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill_many([1.0, 2.0])
        scaled = histogram.scaled(2.0)
        assert scaled.total == pytest.approx(4.0)
        assert histogram.total == pytest.approx(2.0)

    def test_clone_is_independent(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill(1.0)
        clone = histogram.clone("copy")
        clone.fill(2.0)
        assert histogram.total == 1.0
        assert clone.total == 2.0
        assert clone.name == "copy"

    def test_serialisation_round_trip(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill_many([1.0, 5.0, 9.0])
        rebuilt = Histogram1D.from_dict(histogram.to_dict())
        assert rebuilt.compatible_binning(histogram)
        assert np.allclose(rebuilt.counts, histogram.counts)
        assert rebuilt.n_entries == histogram.n_entries


class TestComparisons:
    def _filled_pair(self, shift=0.0, n=500):
        rng = np.random.default_rng(42)
        reference = Histogram1D("h", 20, -5.0, 5.0)
        candidate = Histogram1D("h", 20, -5.0, 5.0)
        reference.fill_many(rng.normal(0.0, 1.0, n))
        candidate.fill_many(rng.normal(shift, 1.0, n))
        return reference, candidate

    def test_identical_histograms_compatible(self):
        reference, _ = self._filled_pair()
        result = chi2_comparison(reference, reference.clone())
        assert result.compatible
        assert result.p_value == pytest.approx(1.0)

    def test_same_distribution_compatible(self):
        reference, candidate = self._filled_pair(shift=0.0)
        assert chi2_comparison(reference, candidate).compatible
        assert ks_comparison(reference, candidate).compatible

    def test_shifted_distribution_incompatible(self):
        reference, candidate = self._filled_pair(shift=1.5)
        assert not chi2_comparison(reference, candidate).compatible
        assert not ks_comparison(reference, candidate).compatible

    def test_empty_histograms_compatible(self):
        reference = Histogram1D("h", 10, 0.0, 1.0)
        candidate = Histogram1D("h", 10, 0.0, 1.0)
        assert chi2_comparison(reference, candidate).compatible
        assert ks_comparison(reference, candidate).compatible

    def test_one_empty_is_incompatible_for_ks(self):
        reference, _ = self._filled_pair()
        empty = Histogram1D("h", 20, -5.0, 5.0)
        assert not ks_comparison(reference, empty).compatible

    def test_different_binning_rejected(self):
        reference = Histogram1D("h", 10, 0.0, 1.0)
        candidate = Histogram1D("h", 20, 0.0, 1.0)
        with pytest.raises(ValidationError):
            chi2_comparison(reference, candidate)

    def test_comparison_result_string(self):
        reference, candidate = self._filled_pair()
        text = str(chi2_comparison(reference, candidate))
        assert "chi2" in text


class TestHistogramSet:
    def test_add_and_get(self):
        histogram_set = HistogramSet()
        histogram_set.add(Histogram1D("a", 5, 0.0, 1.0))
        assert "a" in histogram_set
        assert histogram_set.get("a").name == "a"

    def test_duplicate_name_rejected(self):
        histogram_set = HistogramSet([Histogram1D("a", 5, 0.0, 1.0)])
        with pytest.raises(ValidationError):
            histogram_set.add(Histogram1D("a", 5, 0.0, 1.0))

    def test_missing_name_raises(self):
        with pytest.raises(ValidationError):
            HistogramSet().get("missing")

    def test_compare_only_common_histograms(self):
        left = HistogramSet([Histogram1D("a", 5, 0.0, 1.0), Histogram1D("b", 5, 0.0, 1.0)])
        right = HistogramSet([Histogram1D("a", 5, 0.0, 1.0)])
        results = left.compare(right)
        assert set(results) == {"a"}

    def test_serialisation_round_trip(self):
        original = HistogramSet([Histogram1D("a", 5, 0.0, 1.0)])
        original.get("a").fill(0.5)
        rebuilt = HistogramSet.from_dict(original.to_dict())
        assert rebuilt.names() == ["a"]
        assert rebuilt.get("a").total == pytest.approx(1.0)
