"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro._common import parse_version, stable_fraction, stable_hash, version_at_least
from repro.core.comparison import OutputComparator
from repro.core.testspec import OutputKind, TestOutput
from repro.hepdata.event import FourVector
from repro.hepdata.histogram import Histogram1D, chi2_comparison, ks_comparison
from repro.storage.bookkeeping import format_timestamp
from repro.storage.common_storage import StorageNamespace
from repro.virtualization.cron import CronExpression


# -- stable hashing -----------------------------------------------------------
@given(st.lists(st.one_of(st.text(), st.integers(), st.floats(allow_nan=False))))
def test_stable_hash_is_deterministic(parts):
    assert stable_hash(*parts) == stable_hash(*parts)


@given(st.text(min_size=1), st.text(min_size=1))
def test_stable_fraction_always_in_unit_interval(a, b):
    fraction = stable_fraction(a, b)
    assert 0.0 <= fraction < 1.0


# -- version ordering ---------------------------------------------------------
version_strategy = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=4
).map(lambda parts: ".".join(str(part) for part in parts))


@given(version_strategy, version_strategy)
def test_version_at_least_is_total_order(a, b):
    assert version_at_least(a, b) or version_at_least(b, a)


@given(version_strategy)
def test_version_at_least_is_reflexive(version):
    assert version_at_least(version, version)
    assert parse_version(version) == parse_version(version)


# -- four vectors ------------------------------------------------------------
finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


@given(positive, st.floats(min_value=-5, max_value=5), st.floats(min_value=-math.pi, max_value=math.pi))
def test_four_vector_pt_eta_phi_round_trip(pt, eta, phi):
    vector = FourVector.from_pt_eta_phi(pt, eta, phi)
    assert vector.pt == pytest_approx(pt)
    assert vector.mass <= 1e-3 * max(pt, 1.0)


@given(finite, finite, finite, finite, finite, finite, finite, finite)
def test_four_vector_addition_is_componentwise(e1, x1, y1, z1, e2, x2, y2, z2):
    a = FourVector(e1, x1, y1, z1)
    b = FourVector(e2, x2, y2, z2)
    total = a + b
    assert total.energy == e1 + e2
    assert total.px == x1 + x2
    assert total.py == y1 + y2
    assert total.pz == z1 + z2


def pytest_approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel, abs=1e-9)


# -- histograms ---------------------------------------------------------------
@given(
    st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False), max_size=200)
)
@settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
def test_histogram_total_conserves_entries(values):
    histogram = Histogram1D("h", 25, -50.0, 50.0)
    histogram.fill_many(values)
    accounted = histogram.total + histogram.underflow + histogram.overflow
    assert accounted == pytest_approx(float(len(values)))
    assert histogram.n_entries == len(values)


@given(
    st.lists(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=1, max_size=200)
)
@settings(deadline=None)
def test_histogram_is_compatible_with_itself(values):
    histogram = Histogram1D("h", 20, -10.0, 10.0)
    histogram.fill_many(values)
    assert chi2_comparison(histogram, histogram.clone()).compatible
    assert ks_comparison(histogram, histogram.clone()).compatible


@given(
    st.lists(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), max_size=100)
)
@settings(deadline=None)
def test_histogram_serialisation_round_trip(values):
    histogram = Histogram1D("h", 10, -10.0, 10.0)
    histogram.fill_many(values)
    rebuilt = Histogram1D.from_dict(histogram.to_dict())
    assert rebuilt.total == pytest_approx(histogram.total)
    assert rebuilt.mean() == pytest_approx(histogram.mean())


# -- output comparison --------------------------------------------------------
number_maps = st.dictionaries(
    st.sampled_from(["a", "b", "c", "mean_q2", "n_events"]),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=5,
)


@given(number_maps)
def test_numeric_output_always_compatible_with_itself(numbers):
    output = TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers=numbers)
    outcome = OutputComparator().compare("t", output, output)
    assert outcome.compatible


@given(number_maps, st.sampled_from(["a", "b", "c"]))
def test_removed_quantity_always_detected(numbers, removed_key):
    reference = TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers=dict(numbers))
    candidate_numbers = dict(numbers)
    candidate_numbers.pop(removed_key, None)
    if not candidate_numbers:
        candidate_numbers = {"other": 1.0}
    candidate = TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers=candidate_numbers)
    outcome = OutputComparator().compare("t", reference, candidate)
    if removed_key in numbers:
        assert not outcome.compatible


# -- storage namespaces -------------------------------------------------------
keys_strategy = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.\-]{0,20}", fullmatch=True)


@given(st.dictionaries(keys_strategy, st.integers(), max_size=20))
def test_namespace_keys_are_sorted_and_complete(documents):
    namespace = StorageNamespace("tests")
    for key, value in documents.items():
        namespace.put(key, value)
    assert namespace.keys() == sorted(documents)
    for key, value in documents.items():
        assert namespace.get(key) == value


# -- timestamps and cron -----------------------------------------------------
@given(st.integers(min_value=0, max_value=4_000_000_000))
def test_format_timestamp_shape(timestamp):
    text = format_timestamp(timestamp)
    assert len(text) == 19
    year, month, day = int(text[0:4]), int(text[5:7]), int(text[8:10])
    assert 1970 <= year <= 2100 + 30
    assert 1 <= month <= 12
    assert 1 <= day <= 31


@given(
    st.integers(min_value=0, max_value=59),
    st.integers(min_value=0, max_value=23),
    st.integers(min_value=1356998400, max_value=1356998400 + 2 * 366 * 86400),
)
def test_cron_next_fire_matches_expression(minute, hour, after):
    expression = CronExpression.parse(f"{minute} {hour} * * *")
    fire = expression.next_fire(after)
    assert fire > after
    assert expression.matches(fire)
