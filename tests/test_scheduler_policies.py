"""Tests for the worker-pool scheduling policies and deadline reporting.

A policy only reorders the ready queue — dependencies always gate dispatch —
so every policy must produce a valid, deterministic timeline and leave the
campaign's scientific output untouched.  The deadline turns the schedule
into a report of late matrix cells.
"""

import pytest

from repro._common import SchedulingError
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.pool import (
    SCHEDULING_POLICIES,
    CriticalPathPolicy,
    FifoPolicy,
    LongestTaskFirstPolicy,
    SimulatedWorkerPool,
    scheduling_policy,
)
from repro.virtualization.resources import ResourceProfile

POLICY_NAMES = sorted(SCHEDULING_POLICIES)

#: One slot in the whole pool, so the dispatch order is fully observable.
SINGLE_SLOT = ResourceProfile(cpu_cores=1, memory_gb=4.0, disk_gb=100.0)


def _task(task_id, duration, dependencies=(), cell_index=0):
    return CampaignTask(
        task_id=task_id,
        kind=TaskKind.BUILD,
        cell_index=cell_index,
        experiment="EXP",
        configuration_key="CFG",
        duration_seconds=duration,
        dependencies=tuple(dependencies),
    )


def _diamond_dag():
    """Two independent chains of very different lengths plus a short task."""
    dag = CampaignDAG()
    dag.add(_task("short", 10.0))
    dag.add(_task("long-head", 100.0, cell_index=1))
    dag.add(_task("long-tail", 100.0, ["long-head"], cell_index=1))
    dag.add(_task("mid", 50.0, cell_index=2))
    return dag


def _fresh_system(seed=20131029):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0, seed=seed)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


class TestPolicyResolution:
    def test_names_resolve(self):
        assert isinstance(scheduling_policy("fifo"), FifoPolicy)
        assert isinstance(scheduling_policy("longest-first"), LongestTaskFirstPolicy)
        assert isinstance(scheduling_policy("critical-path"), CriticalPathPolicy)

    def test_none_is_fifo(self):
        assert isinstance(scheduling_policy(None), FifoPolicy)

    def test_instance_passes_through(self):
        policy = CriticalPathPolicy()
        assert scheduling_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(SchedulingError):
            scheduling_policy("round-robin")

    def test_registry_names_match_policy_names(self):
        for name, policy_class in SCHEDULING_POLICIES.items():
            assert policy_class.name == name


class TestPolicyOrdering:
    def test_fifo_keeps_dag_order(self):
        schedule = SimulatedWorkerPool(
            n_workers=1, profile=SINGLE_SLOT, policy="fifo"
        ).execute(_diamond_dag())
        dispatch_order = [
            a.task_id for a in sorted(schedule.assignments,
                                      key=lambda a: a.start_seconds)
        ]
        assert dispatch_order == ["short", "long-head", "long-tail", "mid"]

    def test_longest_first_prefers_long_tasks(self):
        schedule = SimulatedWorkerPool(
            n_workers=1, profile=SINGLE_SLOT, policy="longest-first"
        ).execute(_diamond_dag())
        first = min(schedule.assignments, key=lambda a: a.start_seconds)
        assert first.task_id == "long-head"

    def test_critical_path_prefers_chain_heads(self):
        # Critical-path counts the downstream chain: long-head (20 s) heads a
        # 120 s chain and goes first even against the 50 s standalone task.
        dag = CampaignDAG()
        dag.add(_task("mid", 50.0))
        dag.add(_task("long-head", 20.0, cell_index=1))
        dag.add(_task("long-tail", 100.0, ["long-head"], cell_index=1))
        schedule = SimulatedWorkerPool(
            n_workers=1, profile=SINGLE_SLOT, policy="critical-path"
        ).execute(dag)
        first = min(schedule.assignments, key=lambda a: a.start_seconds)
        assert first.task_id == "long-head"

    def test_critical_path_downstream_lengths(self):
        dag = _diamond_dag()
        policy = CriticalPathPolicy()
        policy.prepare(dag)
        assert policy.priority(dag.get("long-head")) == (-200.0,)
        assert policy.priority(dag.get("long-tail")) == (-100.0,)
        assert policy.priority(dag.get("short")) == (-10.0,)

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_dependencies_always_respected(self, policy, workers):
        schedule = SimulatedWorkerPool(n_workers=workers, policy=policy).execute(
            _diamond_dag()
        )
        ends = {a.task_id: a.end_seconds for a in schedule.assignments}
        starts = {a.task_id: a.start_seconds for a in schedule.assignments}
        assert len(ends) == 4
        assert starts["long-tail"] >= ends["long-head"]

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_policy_is_deterministic(self, policy):
        first = SimulatedWorkerPool(n_workers=3, policy=policy).execute(_diamond_dag())
        second = SimulatedWorkerPool(n_workers=3, policy=policy).execute(_diamond_dag())
        assert first.assignments == second.assignments
        assert first.makespan_seconds == second.makespan_seconds

    def test_schedule_records_policy_name(self):
        schedule = SimulatedWorkerPool(n_workers=2, policy="critical-path").execute(
            _diamond_dag()
        )
        assert schedule.policy == "critical-path"


class TestPolicyCampaigns:
    @pytest.mark.parametrize("seed", [20131029, 7])
    def test_policies_reproducible_across_identical_systems(self, seed):
        for policy in POLICY_NAMES:
            first = _fresh_system(seed).run_campaign(
                ["HERMES"], ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"],
                workers=3, policy=policy,
            )
            second = _fresh_system(seed).run_campaign(
                ["HERMES"], ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"],
                workers=3, policy=policy,
            )
            assert first.schedule.assignments == second.schedule.assignments
            assert first.policy == policy

    def test_policy_changes_timeline_not_output(self):
        documents = {}
        schedules = {}
        for policy in POLICY_NAMES:
            campaign = _fresh_system().run_campaign(
                ["HERMES"], ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"],
                workers=2, policy=policy,
            )
            documents[policy] = [run.to_document() for run in campaign.runs()]
            schedules[policy] = [
                (a.task_id, a.worker_index, a.start_seconds)
                for a in campaign.schedule.assignments
            ]
        # Identical scientific output under every policy...
        assert documents["fifo"] == documents["longest-first"]
        assert documents["fifo"] == documents["critical-path"]
        # ... while at least one policy actually reorders the dispatch.
        assert any(
            schedules[policy] != schedules["fifo"]
            for policy in ("longest-first", "critical-path")
        )


class TestDeadlines:
    def test_late_cells_reported(self):
        dag = _diamond_dag()
        schedule = SimulatedWorkerPool(
            n_workers=1, policy="fifo", deadline_seconds=60.0
        ).execute(dag)
        assert not schedule.met_deadline
        # Cell 1 holds the 200 s chain; it cannot finish within 60 s.
        assert 1 in schedule.late_cells()

    def test_generous_deadline_is_met(self):
        schedule = SimulatedWorkerPool(
            n_workers=4, deadline_seconds=100000.0
        ).execute(_diamond_dag())
        assert schedule.met_deadline
        assert schedule.late_cells() == []

    def test_no_deadline_means_no_late_cells(self):
        schedule = SimulatedWorkerPool(n_workers=2).execute(_diamond_dag())
        assert schedule.met_deadline
        assert schedule.late_cells() == []
        # An explicit ad-hoc deadline can still be probed after the fact.
        assert schedule.late_cells(1.0)

    def test_cell_end_seconds_cover_every_cell(self):
        schedule = SimulatedWorkerPool(n_workers=2).execute(_diamond_dag())
        assert set(schedule.cell_end_seconds) == {0, 1, 2}
        assert schedule.cell_end_seconds[1] == max(
            a.end_seconds for a in schedule.assignments
            if a.task_id.startswith("long")
        )

    def test_invalid_deadline_raises(self):
        with pytest.raises(SchedulingError):
            SimulatedWorkerPool(n_workers=1, deadline_seconds=0.0)

    def test_campaign_reports_late_cells(self):
        campaign = _fresh_system().run_campaign(
            ["HERMES"], ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"],
            workers=1, deadline_seconds=1.0,
        )
        assert not campaign.schedule.met_deadline
        assert campaign.schedule.late_cells() == [0, 1]
        assert "deadline verdict" in campaign.render_text()


class TestPolicyCLI:
    def test_campaign_policy_flag(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main([
            "campaign", "--scale", "0.1", "--workers", "2",
            "--policy", "longest-first", "--deadline-seconds", "100",
        ]) == 0
        output = capsys.readouterr().out
        assert "longest-first" in output
        assert "deadline verdict" in output

    def test_campaign_rejects_unknown_policy(self, capsys):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit):
            cli_main(["campaign", "--policy", "round-robin"])
