"""Tests for the output comparator used in run-against-run validation."""

import pytest

from repro._common import ValidationError
from repro.core.comparison import ComparisonPolicy, OutputComparator
from repro.core.testspec import OutputKind, TestOutput
from repro.hepdata.histogram import Histogram1D, HistogramSet


@pytest.fixture()
def comparator():
    return OutputComparator()


def yes_no(value=True):
    return TestOutput(kind=OutputKind.YES_NO, passed=value, yes_no=value)


def numbers(**values):
    return TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers=dict(values))


def histograms(shift=0.0, n=300):
    import numpy as np

    rng = np.random.default_rng(7)
    histogram = Histogram1D("q2", 20, -5.0, 5.0)
    histogram.fill_many(rng.normal(shift, 1.0, n))
    return TestOutput(
        kind=OutputKind.HISTOGRAMS, passed=True,
        histograms=HistogramSet([histogram]),
    )


class TestComparisonPolicy:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ValidationError):
            ComparisonPolicy(relative_tolerance=-1.0)
        with pytest.raises(ValidationError):
            ComparisonPolicy(histogram_p_value=2.0)
        with pytest.raises(ValidationError):
            ComparisonPolicy(histogram_method="anderson")


class TestYesNoAndText:
    def test_matching_yes_no(self, comparator):
        assert comparator.compare("t", yes_no(True), yes_no(True)).compatible

    def test_flipped_yes_no(self, comparator):
        outcome = comparator.compare("t", yes_no(True), yes_no(False))
        assert not outcome.compatible
        assert "changed" in outcome.messages[0]

    def test_kind_change_detected(self, comparator):
        outcome = comparator.compare("t", yes_no(True), numbers(x=1.0))
        assert not outcome.compatible
        assert "kind changed" in outcome.messages[0]

    def test_text_identical_and_different(self, comparator):
        same = TestOutput(kind=OutputKind.TEXT, passed=True, text="a\nb")
        other = TestOutput(kind=OutputKind.TEXT, passed=True, text="a\nc")
        assert comparator.compare("t", same, same).compatible
        outcome = comparator.compare("t", same, other)
        assert not outcome.compatible
        assert any("line 2" in message for message in outcome.messages)


class TestNumbers:
    def test_within_tolerance(self, comparator):
        outcome = comparator.compare(
            "t", numbers(value=100.0), numbers(value=100.0 * (1 + 1e-9))
        )
        assert outcome.compatible

    def test_outside_tolerance(self, comparator):
        outcome = comparator.compare("t", numbers(value=100.0), numbers(value=101.0))
        assert not outcome.compatible
        assert "value" in outcome.messages[0]

    def test_appearing_and_disappearing_quantities(self, comparator):
        outcome = comparator.compare(
            "t", numbers(a=1.0, b=2.0), numbers(a=1.0, c=3.0)
        )
        assert not outcome.compatible
        joined = " ".join(outcome.messages)
        assert "disappeared" in joined
        assert "appeared" in joined

    def test_custom_tolerance(self):
        loose = OutputComparator(ComparisonPolicy(relative_tolerance=0.1))
        assert loose.compare("t", numbers(value=100.0), numbers(value=105.0)).compatible

    def test_zero_values_compared_absolutely(self, comparator):
        assert comparator.compare("t", numbers(value=0.0), numbers(value=0.0)).compatible


class TestHistogramsAndFiles:
    def test_identical_histograms(self, comparator):
        assert comparator.compare("t", histograms(), histograms()).compatible

    def test_shifted_histograms_detected(self, comparator):
        outcome = comparator.compare("t", histograms(0.0), histograms(2.0))
        assert not outcome.compatible
        assert outcome.histogram_results["q2"].compatible is False

    def test_missing_histogram_detected(self, comparator):
        reference = histograms()
        candidate = TestOutput(
            kind=OutputKind.HISTOGRAMS, passed=True, histograms=HistogramSet()
        )
        # An empty candidate set means the reference histogram disappeared.
        outcome = comparator.compare("t", reference, candidate)
        assert not outcome.compatible

    def test_ks_method(self):
        comparator = OutputComparator(ComparisonPolicy(histogram_method="ks"))
        assert comparator.compare("t", histograms(), histograms()).compatible
        assert not comparator.compare("t", histograms(), histograms(2.0)).compatible

    def test_file_summary_comparison(self, comparator):
        reference = TestOutput(
            kind=OutputKind.FILE_SUMMARY, passed=True,
            file_summary={"n_records": 100.0, "mean_q2": 25.0},
        )
        same = TestOutput(
            kind=OutputKind.FILE_SUMMARY, passed=True,
            file_summary={"n_records": 100.0, "mean_q2": 25.0},
        )
        different = TestOutput(
            kind=OutputKind.FILE_SUMMARY, passed=True,
            file_summary={"n_records": 90.0, "mean_q2": 25.0},
        )
        missing_field = TestOutput(
            kind=OutputKind.FILE_SUMMARY, passed=True, file_summary={"n_records": 100.0},
        )
        assert comparator.compare("t", reference, same).compatible
        assert not comparator.compare("t", reference, different).compatible
        assert not comparator.compare("t", reference, missing_field).compatible

    def test_outcome_summary_text(self, comparator):
        outcome = comparator.compare("t", yes_no(True), yes_no(False))
        assert "INCOMPATIBLE" in outcome.summary()
        assert "t:" in outcome.summary()
