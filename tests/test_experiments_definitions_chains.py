"""Tests for the HERA experiment definitions and the analysis chains."""

import pytest

from repro.core.levels import PreservationLevel
from repro.core.testspec import ExecutionContext, TestKind
from repro.experiments import build_hera_experiments
from repro.experiments.chains import (
    ANALYSIS_ONLY_STEPS,
    FULL_CHAIN_STEPS,
    build_analysis_chain,
)
from repro.experiments.h1 import H1_PROCESSES, build_h1_experiment
from repro.experiments.hermes import build_hermes_experiment
from repro.experiments.zeus import build_zeus_experiment
from repro.hepdata.generator import GeneratorSettings
from repro.hepdata.numerics import REFERENCE_CONTEXT


class TestChainConstruction:
    def test_full_chain_has_seven_ordered_steps(self):
        chain = build_analysis_chain(
            "H1", "nc_dis", GeneratorSettings(), n_events=30, chain_name="test-chain"
        )
        assert len(chain) == len(FULL_CHAIN_STEPS)
        assert chain.step_names()[0].endswith("mc-generation")
        assert chain.step_names()[-1].endswith("result-validation")
        for index, step in enumerate(chain.steps):
            assert step.chain_index == index
            assert step.kind is TestKind.CHAIN_STEP
            assert step.chain == "test-chain"

    def test_analysis_only_chain_skips_simulation(self):
        chain = build_analysis_chain(
            "HERMES", "nc_dis", GeneratorSettings(), n_events=30,
            steps=ANALYSIS_ONLY_STEPS,
        )
        names = chain.step_names()
        assert not any(name.endswith("detector-simulation") for name in names)
        assert not any(name.endswith("-dst-production") for name in names)
        assert any(name.endswith("microdst-production") for name in names)

    def test_chain_executes_end_to_end(self):
        chain = build_analysis_chain(
            "H1", "nc_dis", GeneratorSettings(), n_events=40, chain_name="exec-chain"
        )
        context = ExecutionContext(
            configuration=None, numeric_context=REFERENCE_CONTEXT, seed=3,
        )
        for step in chain.steps:
            output = step.executor(context)
            assert output.passed, f"{step.name} failed: {output.messages}"
        assert "analysis_result" in context.chain_state

    def test_chain_step_fails_gracefully_without_input(self):
        chain = build_analysis_chain(
            "H1", "nc_dis", GeneratorSettings(), n_events=10, chain_name="broken-chain"
        )
        # Execute the reconstruction step without running generation first.
        context = ExecutionContext(
            configuration=None, numeric_context=REFERENCE_CONTEXT, seed=3,
        )
        reconstruction_step = chain.steps[2]
        output = reconstruction_step.executor(context)
        assert not output.passed
        assert "missing" in output.messages[0]

    def test_chain_capabilities_follow_steps(self):
        chain = build_analysis_chain("H1", "nc_dis", GeneratorSettings(), n_events=10)
        capabilities = {step.capability for step in chain.steps}
        assert "mc-generation" in capabilities
        assert "simulation" in capabilities
        assert "analysis" in capabilities


class TestExperimentBuilders:
    def test_h1_full_size_matches_paper_outline(self):
        h1 = build_h1_experiment()
        # "the compilation of approximately 100 individual H1 software packages"
        assert 95 <= len(h1.inventory) <= 105
        # "expected to comprise of up to 500 tests in total"
        assert 400 <= h1.total_test_count() <= 500
        assert h1.preservation_level is PreservationLevel.FULL_SOFTWARE
        # One full chain per physics process.
        assert len(h1.chains) == len(H1_PROCESSES)
        for chain in h1.chains:
            assert len(chain) == len(FULL_CHAIN_STEPS)

    def test_zeus_is_smaller_than_h1(self):
        h1 = build_h1_experiment()
        zeus = build_zeus_experiment()
        assert zeus.total_test_count() < h1.total_test_count()
        assert zeus.preservation_level is PreservationLevel.FULL_SOFTWARE
        assert zeus.display_colour == "orange"

    def test_hermes_is_level3_and_smallest(self):
        hermes = build_hermes_experiment()
        zeus = build_zeus_experiment()
        assert hermes.preservation_level is PreservationLevel.ANALYSIS_SOFTWARE
        assert hermes.total_test_count() < zeus.total_test_count()
        # Level 3: no simulation steps in the chains.
        for chain in hermes.chains:
            assert all("detector-simulation" not in name for name in chain.step_names())

    def test_scaling_preserves_structure(self):
        full = build_h1_experiment()
        scaled = build_h1_experiment(scale=0.2)
        assert scaled.total_test_count() < full.total_test_count()
        assert len(scaled.chains) == len(full.chains)
        assert scaled.processes() == full.processes()

    def test_build_hera_experiments_order_and_colours(self):
        experiments = build_hera_experiments(scale=0.1)
        names = [experiment.name for experiment in experiments]
        assert names == ["ZEUS", "H1", "HERMES"]
        colours = {experiment.name: experiment.display_colour for experiment in experiments}
        assert colours == {"ZEUS": "orange", "H1": "blue", "HERMES": "red"}

    def test_test_names_are_unique_within_experiment(self):
        for experiment in build_hera_experiments(scale=0.15):
            names = [test.name for test in experiment.all_tests()]
            assert len(names) == len(set(names))

    def test_required_packages_exist_in_inventory(self):
        for experiment in build_hera_experiments(scale=0.15):
            for test in experiment.all_tests():
                for package_name in test.required_packages:
                    assert package_name in experiment.inventory
