"""Failure-injection tests: the framework must survive broken experiment tests.

The experiments write their own test scripts; the sp-system has no control
over their quality.  These tests inject misbehaving executors (crashes, wrong
payloads, missing chain products, non-deterministic behaviour across chain
boundaries) and check that the validation runner degrades gracefully: the
broken test fails, everything else still runs, and the run is recorded.
"""

import pytest

from repro._common import SchedulingError
from repro.buildsys.package import Language, PackageCategory, PackageInventory, SoftwarePackage
from repro.core.jobs import JobStatus
from repro.core.levels import PreservationLevel
from repro.core.runner import ValidationRunner
from repro.core.spsystem import SPSystem
from repro.core.testspec import (
    AnalysisChain,
    ExperimentDefinition,
    OutputKind,
    TestKind,
    TestOutput,
    ValidationTestSpec,
)
from repro.scheduler.pool import WorkerFailure


def _minimal_inventory(name="FAULTEXP"):
    return PackageInventory(
        name,
        [
            SoftwarePackage(
                name=f"{name.lower()}-core", version="1.0", experiment=name,
                category=PackageCategory.CORE, language=Language.CPP, lines_of_code=1000,
            )
        ],
    )


def _experiment(standalone=None, chains=None, name="FAULTEXP"):
    return ExperimentDefinition(
        name=name,
        full_name="fault injection experiment",
        preservation_level=PreservationLevel.ANALYSIS_SOFTWARE,
        inventory=_minimal_inventory(name),
        standalone_tests=standalone or [],
        chains=chains or [],
    )


def _passing_test(name, experiment="FAULTEXP"):
    return ValidationTestSpec(
        name=name, experiment=experiment, kind=TestKind.STANDALONE,
        executor=lambda context: TestOutput(kind=OutputKind.YES_NO, passed=True, yes_no=True),
    )


class TestExecutorCrashes:
    def test_crashing_executor_fails_only_its_own_job(self, sl5_64_gcc44):
        def crash(context):
            raise RuntimeError("segmentation violation in user code")

        crashing = ValidationTestSpec(
            name="crashing-test", experiment="FAULTEXP", kind=TestKind.STANDALONE,
            executor=crash,
        )
        experiment = _experiment(standalone=[crashing, _passing_test("healthy-test")])
        run = ValidationRunner().run(experiment, sl5_64_gcc44)
        assert run.job_for("crashing-test").status is JobStatus.FAILED
        assert "crashed" in run.job_for("crashing-test").messages[0]
        assert run.job_for("healthy-test").status is JobStatus.PASSED
        assert not run.all_passed

    def test_wrong_payload_is_a_failure_not_a_crash(self, sl5_64_gcc44):
        def wrong_payload(context):
            # Declares numbers but returns none: caught by output validation.
            return TestOutput(kind=OutputKind.NUMBERS, passed=True)

        broken = ValidationTestSpec(
            name="wrong-payload", experiment="FAULTEXP", kind=TestKind.STANDALONE,
            executor=wrong_payload,
        )
        run = ValidationRunner().run(_experiment(standalone=[broken]), sl5_64_gcc44)
        job = run.job_for("wrong-payload")
        assert job.status is JobStatus.FAILED
        assert "execution error" in job.messages[0]

    def test_run_with_crash_is_still_recorded_and_comparable(self, sl5_64_gcc44):
        def crash(context):
            raise ValueError("bad input file")

        crashing = ValidationTestSpec(
            name="crashing-test", experiment="FAULTEXP", kind=TestKind.STANDALONE,
            executor=crash,
        )
        runner = ValidationRunner()
        run = runner.run(_experiment(standalone=[crashing]), sl5_64_gcc44)
        assert runner.catalog.get(run.run_id).overall_status == "failed"
        stored = runner.load_output(run.job_for("crashing-test").output_key)
        assert not stored.passed


class TestChainFailurePropagation:
    def _chain(self, broken_step_index):
        chain = AnalysisChain(name="fault-chain", experiment="FAULTEXP")

        def make_executor(index):
            def execute(context):
                if index == broken_step_index:
                    raise RuntimeError(f"step {index} aborted")
                context.chain_state[f"product-{index}"] = index
                return TestOutput(
                    kind=OutputKind.NUMBERS, passed=True, numbers={"step": float(index)},
                )
            return execute

        for index in range(4):
            chain.add_step(
                ValidationTestSpec(
                    name=f"fault-chain-{index:02d}-step",
                    experiment="FAULTEXP",
                    kind=TestKind.CHAIN_STEP,
                    executor=make_executor(index),
                    chain="fault-chain",
                    chain_index=index,
                )
            )
        return chain

    def test_steps_after_broken_step_are_skipped(self, sl5_64_gcc44):
        run = ValidationRunner().run(
            _experiment(chains=[self._chain(broken_step_index=1)]), sl5_64_gcc44
        )
        statuses = [run.job_for(f"fault-chain-{i:02d}-step").status for i in range(4)]
        assert statuses[0] is JobStatus.PASSED
        assert statuses[1] is JobStatus.FAILED
        assert statuses[2] is JobStatus.SKIPPED
        assert statuses[3] is JobStatus.SKIPPED

    def test_unbroken_chain_passes_and_shares_state(self, sl5_64_gcc44):
        run = ValidationRunner().run(
            _experiment(chains=[self._chain(broken_step_index=99)]), sl5_64_gcc44
        )
        assert all(
            run.job_for(f"fault-chain-{i:02d}-step").status is JobStatus.PASSED
            for i in range(4)
        )

    def test_chain_failure_does_not_affect_other_chain(self, sl5_64_gcc44):
        healthy = AnalysisChain(name="healthy-chain", experiment="FAULTEXP")
        healthy.add_step(
            ValidationTestSpec(
                name="healthy-chain-00-step", experiment="FAULTEXP",
                kind=TestKind.CHAIN_STEP,
                executor=lambda context: TestOutput(
                    kind=OutputKind.YES_NO, passed=True, yes_no=True
                ),
                chain="healthy-chain", chain_index=0,
            )
        )
        run = ValidationRunner().run(
            _experiment(chains=[self._chain(broken_step_index=0), healthy]),
            sl5_64_gcc44,
        )
        assert run.job_for("healthy-chain-00-step").status is JobStatus.PASSED

    def test_chain_state_does_not_leak_between_runs(self, sl5_64_gcc44):
        observed_states = []

        def observe(context):
            observed_states.append(dict(context.chain_state))
            context.chain_state["seen"] = True
            return TestOutput(kind=OutputKind.YES_NO, passed=True, yes_no=True)

        chain = AnalysisChain(name="observe-chain", experiment="FAULTEXP")
        chain.add_step(
            ValidationTestSpec(
                name="observe-chain-00-step", experiment="FAULTEXP",
                kind=TestKind.CHAIN_STEP, executor=observe,
                chain="observe-chain", chain_index=0,
            )
        )
        experiment = _experiment(chains=[chain])
        runner = ValidationRunner()
        runner.run(experiment, sl5_64_gcc44)
        runner.run(experiment, sl5_64_gcc44)
        assert observed_states == [{}, {}]


class TestSchedulerFailureInjection:
    """The campaign scheduler must degrade gracefully, exactly like the runner.

    A worker dying mid-campaign reassigns its in-flight tasks to the
    survivors, a failing chain step still produces the sequential path's
    skip/fail statuses, and a pool with no survivors raises instead of
    deadlocking.
    """

    def _system(self, experiment):
        system = SPSystem()
        system.provision_standard_images()
        system.register_experiment(experiment)
        return system

    def _broken_chain_experiment(self):
        chain = AnalysisChain(name="fault-chain", experiment="FAULTEXP")

        def make_executor(index):
            def execute(context):
                if index == 1:
                    raise RuntimeError(f"step {index} aborted")
                return TestOutput(
                    kind=OutputKind.NUMBERS, passed=True, numbers={"step": float(index)},
                )
            return execute

        for index in range(4):
            chain.add_step(
                ValidationTestSpec(
                    name=f"fault-chain-{index:02d}-step",
                    experiment="FAULTEXP",
                    kind=TestKind.CHAIN_STEP,
                    executor=make_executor(index),
                    chain="fault-chain",
                    chain_index=index,
                )
            )
        # The data-export capability makes the experiment pass the workflow's
        # preparation checks (required at the ANALYSIS_SOFTWARE level).
        export_test = ValidationTestSpec(
            name="healthy-test", experiment="FAULTEXP", kind=TestKind.STANDALONE,
            executor=lambda context: TestOutput(
                kind=OutputKind.YES_NO, passed=True, yes_no=True
            ),
            capability="data-export",
        )
        return _experiment(standalone=[export_test], chains=[chain])

    def test_worker_death_reassigns_and_preserves_statuses(self):
        experiment = self._broken_chain_experiment()
        baseline_system = self._system(experiment)
        baseline = [
            baseline_system.validate("FAULTEXP", key)
            for key in ("SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4")
        ]

        system = self._system(experiment)
        campaign = system.run_campaign(
            ["FAULTEXP"],
            ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"],
            workers=2,
            failures=[WorkerFailure(worker_index=0, at_seconds=50.0)],
        )
        # The dead worker's in-flight tasks were retried on the survivor...
        assert campaign.schedule.failed_workers == (0,)
        assert campaign.schedule.n_retries > 0
        assert all(
            assignment.worker_index == 1
            for assignment in campaign.schedule.assignments
            if assignment.start_seconds >= 50.0
        )
        # ...and the scientific output is still the sequential baseline.
        assert [run.to_document() for run in campaign.runs()] == [
            cycle.run.to_document() for cycle in baseline
        ]

    def test_chain_failure_statuses_survive_pooled_scheduling(self):
        system = self._system(self._broken_chain_experiment())
        campaign = system.run_campaign(
            ["FAULTEXP"], ["SL5_64bit_gcc4.4"], workers=4,
        )
        run = campaign.cells[0].run
        statuses = [run.job_for(f"fault-chain-{i:02d}-step").status for i in range(4)]
        assert statuses == [
            JobStatus.PASSED, JobStatus.FAILED, JobStatus.SKIPPED, JobStatus.SKIPPED,
        ]
        assert run.job_for("healthy-test").status is JobStatus.PASSED
        # The skipped steps still appear in the DAG (zero-duration tasks).
        skipped_tasks = [
            task for task in campaign.dag.tasks()
            if task.task_id.endswith(("02-step", "03-step"))
        ]
        assert all(task.duration_seconds == 0.0 for task in skipped_tasks)

    def test_all_workers_dead_raises_instead_of_deadlocking(self):
        system = self._system(self._broken_chain_experiment())
        with pytest.raises(SchedulingError, match="every worker"):
            system.run_campaign(
                ["FAULTEXP"],
                ["SL5_64bit_gcc4.4"],
                workers=2,
                failures=[
                    WorkerFailure(worker_index=0, at_seconds=10.0),
                    WorkerFailure(worker_index=1, at_seconds=20.0),
                ],
            )

    def test_late_failure_after_campaign_end_is_harmless(self):
        system = self._system(self._broken_chain_experiment())
        campaign = system.run_campaign(
            ["FAULTEXP"],
            ["SL5_64bit_gcc4.4"],
            workers=2,
            failures=[WorkerFailure(worker_index=0, at_seconds=10.0 ** 9)],
        )
        assert campaign.schedule.n_retries == 0
        assert campaign.schedule.failed_workers == ()

    def test_crashing_executor_inside_campaign(self, sl5_64_gcc44):
        def crash(context):
            raise RuntimeError("segmentation violation in user code")

        crashing = ValidationTestSpec(
            name="crashing-test", experiment="FAULTEXP", kind=TestKind.STANDALONE,
            executor=crash,
        )
        export_test = ValidationTestSpec(
            name="healthy-test", experiment="FAULTEXP", kind=TestKind.STANDALONE,
            executor=lambda context: TestOutput(
                kind=OutputKind.YES_NO, passed=True, yes_no=True
            ),
            capability="data-export",
        )
        experiment = _experiment(standalone=[crashing, export_test])
        system = self._system(experiment)
        campaign = system.run_campaign(["FAULTEXP"], [sl5_64_gcc44.key], workers=3)
        run = campaign.cells[0].run
        assert run.job_for("crashing-test").status is JobStatus.FAILED
        assert run.job_for("healthy-test").status is JobStatus.PASSED
        assert system.catalog.get(run.run_id).overall_status == "failed"
