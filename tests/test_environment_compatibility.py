"""Tests for the compatibility checker: requirements against environments."""

import pytest

from repro._common import ConfigurationError
from repro.environment.compatibility import (
    CompatibilityChecker,
    ExternalRequirement,
    IssueCategory,
    IssueSeverity,
    SoftwareRequirements,
    summarise_issues,
)


@pytest.fixture()
def checker():
    return CompatibilityChecker()


class TestWordSizeAndOs:
    def test_32bit_only_code_fails_on_64bit(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(word_sizes=(32,))
        errors = checker.errors(requirements, sl6_64_gcc44)
        assert len(errors) == 1
        assert errors[0].category is IssueCategory.OPERATING_SYSTEM

    def test_unported_code_fails_on_newer_abi(self, checker, sl6_64_gcc44, sl5_64_gcc44):
        requirements = SoftwareRequirements(max_os_abi=2)
        assert checker.is_compatible(requirements, sl5_64_gcc44)
        assert not checker.is_compatible(requirements, sl6_64_gcc44)

    def test_minimum_abi_enforced(self, checker, sl5_64_gcc44):
        requirements = SoftwareRequirements(min_os_abi=3)
        errors = checker.errors(requirements, sl5_64_gcc44)
        assert errors and errors[0].category is IssueCategory.OPERATING_SYSTEM


class TestCompilerChecks:
    def test_minimum_compiler(self, checker, sl5_64_gcc44):
        requirements = SoftwareRequirements(min_compiler="4.8")
        errors = checker.errors(requirements, sl5_64_gcc44)
        assert errors and errors[0].category is IssueCategory.COMPILER

    def test_maximum_compiler_exclusive(self, checker, sl5_64_gcc44):
        # Code not ported beyond gcc 4.4 fails when built *with* gcc 4.4 or newer.
        requirements = SoftwareRequirements(max_compiler="4.4")
        assert not checker.is_compatible(requirements, sl5_64_gcc44)
        requirements_ok = SoftwareRequirements(max_compiler="4.5")
        assert checker.is_compatible(requirements_ok, sl5_64_gcc44)

    def test_strictness_at_limit_gives_warning_not_error(self, checker, sl6_64_gcc44):
        strictness_of_gcc44 = sl6_64_gcc44.compiler.strictness
        requirements = SoftwareRequirements(max_strictness=strictness_of_gcc44)
        issues = checker.check(requirements, sl6_64_gcc44)
        assert any(issue.severity is IssueSeverity.WARNING for issue in issues)
        assert checker.is_compatible(requirements, sl6_64_gcc44)

    def test_strictness_exceeded_is_error(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(max_strictness=1)
        assert not checker.is_compatible(requirements, sl6_64_gcc44)

    def test_missing_cxx_standard_support(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(cxx_standard="c++11")
        errors = checker.errors(requirements, sl6_64_gcc44)
        assert errors and errors[0].category is IssueCategory.COMPILER


class TestExternalChecks:
    def test_missing_product_is_error(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(
            externals=(ExternalRequirement(product="GEANT4", min_api_level=1),)
        )
        errors = checker.errors(requirements, sl6_64_gcc44)
        assert errors and errors[0].category is IssueCategory.EXTERNAL_DEPENDENCY

    def test_api_level_range(self, checker, sl6_64_gcc44):
        too_new = SoftwareRequirements(
            externals=(ExternalRequirement(product="ROOT", min_api_level=6),)
        )
        assert not checker.is_compatible(too_new, sl6_64_gcc44)
        capped = SoftwareRequirements(
            externals=(ExternalRequirement(product="ROOT", max_api_level=3),)
        )
        assert not checker.is_compatible(capped, sl6_64_gcc44)

    def test_removed_api_is_error_on_root6(self, checker, sl6_64_gcc44, sl7_root6):
        requirements = SoftwareRequirements(
            externals=(
                ExternalRequirement(
                    product="ROOT", min_api_level=1, used_apis=frozenset({"CINT"})
                ),
            )
        )
        assert checker.is_compatible(requirements, sl6_64_gcc44)
        errors = checker.errors(requirements, sl7_root6)
        assert errors
        assert all(issue.category is IssueCategory.EXTERNAL_DEPENDENCY for issue in errors)

    def test_deprecated_api_is_warning(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(
            externals=(
                ExternalRequirement(
                    product="ROOT",
                    min_api_level=1,
                    used_apis=frozenset({"PROOF-lite-legacy"}),
                ),
            )
        )
        issues = checker.check(requirements, sl6_64_gcc44)
        assert any(issue.severity is IssueSeverity.WARNING for issue in issues)
        assert checker.is_compatible(requirements, sl6_64_gcc44)

    def test_unknown_api_is_error(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(
            externals=(
                ExternalRequirement(
                    product="ROOT", min_api_level=1, used_apis=frozenset({"RooStats"})
                ),
            )
        )
        assert not checker.is_compatible(requirements, sl6_64_gcc44)

    def test_invalid_api_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ExternalRequirement(product="ROOT", min_api_level=3, max_api_level=1)


class TestSummaries:
    def test_summarise_compatible(self):
        assert summarise_issues([]) == "compatible"

    def test_summarise_counts(self, checker, sl6_64_gcc44):
        requirements = SoftwareRequirements(word_sizes=(32,), max_strictness=1)
        issues = checker.check(requirements, sl6_64_gcc44)
        summary = summarise_issues(issues)
        assert "error" in summary

    def test_healthy_requirements_everywhere(self, checker, standard_configurations):
        requirements = SoftwareRequirements()
        for configuration in standard_configurations:
            assert checker.is_compatible(requirements, configuration)
