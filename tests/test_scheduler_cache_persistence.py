"""Tests for cross-campaign persistence of the build cache.

The cache is a resident of the common sp-system storage: ``persist_to``
snapshots entries, tarball payloads and statistics into the ``buildcache``
namespace, ``restore_from`` warm-starts a fresh cache from the snapshot (and
evicts entries whose artifact digest can no longer be materialised), and a
fresh :class:`SPSystem` mounted on the persisted state warm-starts its first
campaign with cache hits while producing bit-identical run documents.
"""

import pytest

from repro._common import StorageError
from repro.buildsys.builder import BuildResult, PackageBuilder
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.scheduler.cache import BuildCache, CacheStatistics
from repro.storage.artifacts import ArtifactStore
from repro.storage.common_storage import CommonStorage


CAMPAIGN_KEYS = ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"]


@pytest.fixture()
def inventory():
    return build_inventory(
        "PERSISTEXP",
        6,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=0,
            n_legacy_root_api=0,
            n_strictness_limited=0,
            n_32bit_only=0,
        ),
    )


def _fresh_system():
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


def _populated_cache(inventory, configuration):
    store = ArtifactStore()
    cache = BuildCache(store)
    builder = PackageBuilder()
    for package in inventory.all():
        cache.store(package, configuration, builder.build_package(package, configuration))
    return cache, store


class TestBuildResultRoundTrip:
    def test_result_with_tarball_round_trips(self, inventory, sl5_64_gcc44):
        result = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        restored = BuildResult.from_dict(result.to_dict())
        assert restored.package == result.package
        assert restored.status is result.status
        assert restored.diagnostics == result.diagnostics
        assert restored.issues == result.issues
        assert restored.tarball == result.tarball
        assert restored.build_seconds == result.build_seconds

    def test_failed_result_without_tarball_round_trips(self, inventory, sl5_64_gcc44):
        from repro.environment.compatibility import SoftwareRequirements

        package = inventory.all()[0].with_requirements(
            SoftwareRequirements(max_strictness=0)
        )
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        assert not result.succeeded
        restored = BuildResult.from_dict(result.to_dict())
        assert restored.status is result.status
        assert restored.tarball is None
        assert restored.issues == result.issues

    def test_result_document_is_json_serialisable(self, inventory, sl5_64_gcc44):
        import json

        result = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        payload = json.loads(json.dumps(result.to_dict()))
        assert BuildResult.from_dict(payload).package == result.package


class TestPersistRestore:
    def test_in_memory_round_trip(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(storage) == len(cache)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache)
        for package in inventory.all():
            replay = restored.lookup(package, sl5_64_gcc44)
            fresh = PackageBuilder().build_package(package, sl5_64_gcc44)
            assert replay.status is fresh.status
            assert replay.diagnostics == fresh.diagnostics
            assert replay.tarball == fresh.tarball
            assert replay.build_seconds == fresh.build_seconds

    def test_restore_rematerialises_tarballs(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        target_store = ArtifactStore()
        restored = BuildCache.restore_from(storage, target_store)
        assert restored.statistics.evictions == 0
        for package in inventory.all():
            entry = restored.lookup(package, sl5_64_gcc44)
            assert target_store.exists(entry.tarball.digest)
            assert BuildCache.ARTIFACT_LABEL in target_store.labels_for(
                entry.tarball.digest
            )

    def test_disk_round_trip(self, inventory, sl5_64_gcc44, tmp_path):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        restored = BuildCache.restore_from(loaded, ArtifactStore())
        assert len(restored) == len(cache)
        replay = restored.lookup(inventory.all()[0], sl5_64_gcc44)
        fresh = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        assert replay.tarball == fresh.tarball
        assert replay.build_seconds == fresh.build_seconds

    def test_namespace_filtered_load(self, inventory, sl5_64_gcc44, tmp_path):
        """Warm-start reads only buildcache/, not the full run history."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        storage.put("results", "runmeta_sp-000001", {"run_id": "sp-000001"})
        cache.persist_to(storage)
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(
            str(tmp_path), namespaces=[BuildCache.NAMESPACE]
        )
        assert loaded.namespaces() == [BuildCache.NAMESPACE]
        restored = BuildCache.restore_from(loaded, ArtifactStore())
        assert len(restored) == len(cache)

    def test_statistics_survive_persistence(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        cache.lookup(inventory.all()[0], sl5_64_gcc44)  # one hit
        storage = CommonStorage()
        cache.persist_to(storage)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert restored.statistics.hits == cache.statistics.hits
        assert restored.statistics.stores == cache.statistics.stores

    def test_persist_replaces_previous_snapshot(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        first_keys = storage.keys(BuildCache.NAMESPACE)
        cache.clear()
        assert cache.persist_to(storage) == 0
        remaining = storage.keys(BuildCache.NAMESPACE)
        assert remaining == [BuildCache.STATISTICS_KEY]
        assert first_keys != remaining

    def test_restore_from_storage_without_namespace(self):
        restored = BuildCache.restore_from(CommonStorage(), ArtifactStore())
        assert len(restored) == 0
        assert restored.statistics == CacheStatistics()

    def test_statistics_round_trip(self):
        statistics = CacheStatistics(hits=3, misses=2, stores=2, evictions=1)
        assert CacheStatistics.from_dict(statistics.as_dict()) == statistics


class TestRestoreTimeEviction:
    def test_dangling_artifact_document_evicts_entry(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        storage.namespace(BuildCache.NAMESPACE).delete(
            f"{BuildCache.ARTIFACT_PREFIX}{victim.tarball.digest}"
        )
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache) - 1
        assert restored.statistics.evictions == cache.statistics.evictions + 1
        assert restored.lookup(inventory.all()[0], sl5_64_gcc44) is None

    def test_restore_never_mutates_the_source_storage(self, inventory, sl5_64_gcc44):
        """Restore is read-only: the snapshot may belong to a live installation."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        storage.namespace(BuildCache.NAMESPACE).delete(
            f"{BuildCache.ARTIFACT_PREFIX}{victim.tarball.digest}"
        )
        keys_before = storage.keys(BuildCache.NAMESPACE)
        BuildCache.restore_from(storage, ArtifactStore())
        assert storage.keys(BuildCache.NAMESPACE) == keys_before
        # The restored cache's next persist drops the dangling entry instead.
        restored = BuildCache.restore_from(storage, ArtifactStore())
        clean = CommonStorage()
        assert restored.persist_to(clean) == len(cache) - 1

    def test_artifact_already_in_store_needs_no_payload(self, inventory, sl5_64_gcc44):
        cache, source_store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        for key in storage.keys(
            BuildCache.NAMESPACE, prefix=BuildCache.ARTIFACT_PREFIX
        ):
            storage.namespace(BuildCache.NAMESPACE).delete(key)
        # Restoring against the store that still holds the artifacts works.
        restored = BuildCache.restore_from(storage, source_store)
        assert len(restored) == len(cache)
        assert restored.statistics.evictions == cache.statistics.evictions


class TestSizeBudget:
    """persist_to(max_bytes=...) keeps the snapshot within a size budget."""

    def test_budget_evicts_least_recently_hit_first(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        packages = inventory.all()
        # Touch every entry but the first: the untouched one must go first.
        for package in packages[1:]:
            assert cache.lookup(package, sl5_64_gcc44) is not None
        size_of_one = cache.entry_size_bytes(
            PackageBuilder().build_package(packages[0], sl5_64_gcc44)
        )
        storage = CommonStorage()
        persisted = cache.persist_to(
            storage, max_bytes=cache.total_size_bytes() - size_of_one
        )
        assert persisted == len(packages) - 1
        assert cache.lookup(packages[0], sl5_64_gcc44) is None  # evicted
        assert cache.lookup(packages[1], sl5_64_gcc44) is not None

    def test_zero_budget_persists_nothing(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(storage, max_bytes=0) == 0
        assert len(cache) == 0
        assert cache.statistics.evictions == len(inventory.all())
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == 0

    def test_generous_budget_evicts_nothing(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(
            storage, max_bytes=cache.total_size_bytes()
        ) == len(inventory.all())
        assert cache.statistics.evictions == 0

    def test_negative_budget_rejected(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        with pytest.raises(StorageError):
            cache.persist_to(CommonStorage(), max_bytes=-1)

    def test_budgeted_snapshot_still_round_trips(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        budget = cache.total_size_bytes() // 2
        storage = CommonStorage()
        persisted = cache.persist_to(storage, max_bytes=budget)
        assert 0 < persisted < len(inventory.all())
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == persisted
        # The surviving (most recently stored) entries replay as hits.
        survivors = [
            package for package in inventory.all()
            if cache.contains(package, sl5_64_gcc44)
        ]
        assert survivors
        for package in survivors:
            assert restored.lookup(package, sl5_64_gcc44) is not None


class TestWarmStartCampaigns:
    def test_second_installation_warm_starts_with_hits(self):
        cold = _fresh_system()
        first = cold.run_campaign(["HERMES"], CAMPAIGN_KEYS, workers=2)
        assert first.cache_statistics.hits == 0
        assert cold.persist_build_cache() > 0

        warm = _fresh_system()
        assert warm.restore_build_cache(cold.storage) is not None
        second = warm.run_campaign(["HERMES"], CAMPAIGN_KEYS, workers=2)
        assert second.cache_statistics.hits > 0
        assert second.cache_statistics.misses == 0

    def test_warm_campaign_output_is_bit_identical(self):
        # Cold sequential baseline: one validate() call per cell.
        baseline = _fresh_system()
        expected = [
            baseline.validate("HERMES", key).run.to_document()
            for key in CAMPAIGN_KEYS
        ]

        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        cold.persist_build_cache()

        warm = _fresh_system()
        warm.restore_build_cache(cold.storage)
        campaign = warm.run_campaign(["HERMES"], CAMPAIGN_KEYS, workers=3)
        assert campaign.cache_statistics.hits > 0
        assert [run.to_document() for run in campaign.runs()] == expected
        # Catalogue records are identical too.
        assert [record.to_dict() for record in warm.catalog.all()] == [
            record.to_dict() for record in baseline.catalog.all()
        ]

    def test_run_campaign_warm_starts_from_mounted_storage(self, tmp_path):
        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        cold.persist_build_cache()
        cold.storage.persist(str(tmp_path))

        # A fresh installation mounted on the loaded storage warm-starts
        # automatically — no explicit restore call.
        warm = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
            storage=CommonStorage.load(str(tmp_path)),
        )
        warm.provision_standard_images()
        warm.register_experiment(build_hermes_experiment(scale=0.2))
        campaign = warm.run_campaign(
            ["HERMES"], CAMPAIGN_KEYS, description="warm rerun"
        )
        assert campaign.cache_statistics.hits > 0
        assert campaign.cache_statistics.misses == 0

    def test_warm_start_can_be_disabled(self, tmp_path):
        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        cold.persist_build_cache()
        cold.storage.persist(str(tmp_path))

        warm = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
            storage=CommonStorage.load(str(tmp_path)),
        )
        warm.provision_standard_images()
        warm.register_experiment(build_hermes_experiment(scale=0.2))
        campaign = warm.run_campaign(
            ["HERMES"], CAMPAIGN_KEYS, description="cold rerun", warm_start=False
        )
        assert campaign.cache_statistics.hits == 0

    def test_restore_without_snapshot_raises(self):
        system = _fresh_system()
        with pytest.raises(StorageError):
            system.restore_build_cache(CommonStorage())
        assert system.restore_build_cache(CommonStorage(), missing_ok=True) is None
