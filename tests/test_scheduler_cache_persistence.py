"""Tests for cross-campaign persistence of the build cache.

The cache is a resident of the common sp-system storage, persisted as an
append-only journal in the ``buildcache`` namespace: ``persist_to`` appends
one record per new entry and one tombstone per eviction (repeated campaigns
write O(new entries), not O(cache)), ``restore_from`` replays the journal —
recovering cleanly from a corrupted trailing record — and ``compact``
rewrites the log from the live state under an optional size budget.  A fresh
:class:`SPSystem` mounted on the persisted state warm-starts its first
campaign with cache hits while producing bit-identical run documents.
"""

import pytest

from repro._common import StorageError
from repro.buildsys.builder import BuildResult, PackageBuilder
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.scheduler.cache import BuildCache, CacheStatistics
from repro.storage.artifacts import ArtifactStore
from repro.storage.common_storage import CommonStorage


CAMPAIGN_KEYS = ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"]


@pytest.fixture()
def inventory():
    return build_inventory(
        "PERSISTEXP",
        6,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=0,
            n_legacy_root_api=0,
            n_strictness_limited=0,
            n_32bit_only=0,
        ),
    )


def _fresh_system():
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


def _populated_cache(inventory, configuration):
    store = ArtifactStore()
    cache = BuildCache(store)
    builder = PackageBuilder()
    for package in inventory.all():
        cache.store(package, configuration, builder.build_package(package, configuration))
    return cache, store


class TestBuildResultRoundTrip:
    def test_result_with_tarball_round_trips(self, inventory, sl5_64_gcc44):
        result = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        restored = BuildResult.from_dict(result.to_dict())
        assert restored.package == result.package
        assert restored.status is result.status
        assert restored.diagnostics == result.diagnostics
        assert restored.issues == result.issues
        assert restored.tarball == result.tarball
        assert restored.build_seconds == result.build_seconds

    def test_failed_result_without_tarball_round_trips(self, inventory, sl5_64_gcc44):
        from repro.environment.compatibility import SoftwareRequirements

        package = inventory.all()[0].with_requirements(
            SoftwareRequirements(max_strictness=0)
        )
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        assert not result.succeeded
        restored = BuildResult.from_dict(result.to_dict())
        assert restored.status is result.status
        assert restored.tarball is None
        assert restored.issues == result.issues

    def test_result_document_is_json_serialisable(self, inventory, sl5_64_gcc44):
        import json

        result = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        payload = json.loads(json.dumps(result.to_dict()))
        assert BuildResult.from_dict(payload).package == result.package


class TestPersistRestore:
    def test_in_memory_round_trip(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(storage) == len(cache)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache)
        for package in inventory.all():
            replay = restored.lookup(package, sl5_64_gcc44)
            fresh = PackageBuilder().build_package(package, sl5_64_gcc44)
            assert replay.status is fresh.status
            assert replay.diagnostics == fresh.diagnostics
            assert replay.tarball == fresh.tarball
            assert replay.build_seconds == fresh.build_seconds

    def test_restore_rematerialises_tarballs(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        target_store = ArtifactStore()
        restored = BuildCache.restore_from(storage, target_store)
        assert restored.statistics.evictions == 0
        for package in inventory.all():
            entry = restored.lookup(package, sl5_64_gcc44)
            assert target_store.exists(entry.tarball.digest)
            assert BuildCache.ARTIFACT_LABEL in target_store.labels_for(
                entry.tarball.digest
            )

    def test_disk_round_trip(self, inventory, sl5_64_gcc44, tmp_path):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        restored = BuildCache.restore_from(loaded, ArtifactStore())
        assert len(restored) == len(cache)
        replay = restored.lookup(inventory.all()[0], sl5_64_gcc44)
        fresh = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        assert replay.tarball == fresh.tarball
        assert replay.build_seconds == fresh.build_seconds

    def test_namespace_filtered_load(self, inventory, sl5_64_gcc44, tmp_path):
        """Warm-start reads only buildcache/, not the full run history."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        storage.put("results", "runmeta_sp-000001", {"run_id": "sp-000001"})
        cache.persist_to(storage)
        storage.persist(str(tmp_path))
        loaded = CommonStorage.load(
            str(tmp_path), namespaces=[BuildCache.NAMESPACE]
        )
        assert loaded.namespaces() == [BuildCache.NAMESPACE]
        restored = BuildCache.restore_from(loaded, ArtifactStore())
        assert len(restored) == len(cache)

    def test_statistics_survive_persistence(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        cache.lookup(inventory.all()[0], sl5_64_gcc44)  # one hit
        storage = CommonStorage()
        cache.persist_to(storage)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert restored.statistics.hits == cache.statistics.hits
        assert restored.statistics.stores == cache.statistics.stores

    def test_restore_from_storage_without_namespace(self):
        restored = BuildCache.restore_from(CommonStorage(), ArtifactStore())
        assert len(restored) == 0
        assert restored.statistics == CacheStatistics()

    def test_statistics_round_trip(self):
        statistics = CacheStatistics(
            hits=3, misses=2, stores=2, evictions=1,
            shared_hits=1, donated_by_experiment={"ZEUS": 1},
        )
        assert CacheStatistics.from_dict(statistics.as_dict()) == statistics

    def test_statistics_from_pre_journal_snapshot_defaults(self):
        """Old snapshots without the sharing fields restore to zeros."""
        statistics = CacheStatistics.from_dict(
            {"hits": 3, "misses": 2, "stores": 2, "evictions": 1}
        )
        assert statistics.shared_hits == 0
        assert statistics.donated_by_experiment == {}

    def test_statistics_tolerates_malformed_donations(self):
        """A null/garbage donations field degrades to empty, not a crash."""
        for garbage in (None, "broken", 7):
            statistics = CacheStatistics.from_dict(
                {"hits": 1, "donated_by_experiment": garbage}
            )
            assert statistics.donated_by_experiment == {}
        # Garbage values inside an otherwise well-formed mapping too.
        statistics = CacheStatistics.from_dict(
            {
                "hits": 1,
                "shared_hits": "broken",
                "donated_by_experiment": {"ZEUS": "garbage", "H1": 2},
            }
        )
        assert statistics.shared_hits == 0
        assert statistics.donated_by_experiment == {"H1": 2}

    def test_corrupted_statistics_document_does_not_abort_restore(
        self, inventory, sl5_64_gcc44
    ):
        """Statistics are bookkeeping; a damaged document must not lose the
        journal's intact entries."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        namespace = storage.namespace(BuildCache.NAMESPACE)
        for garbage in ({"hits": "3x"}, ["not", "a", "dict"], None):
            namespace.put(BuildCache.STATISTICS_KEY, garbage)
            restored = BuildCache.restore_from(storage, ArtifactStore())
            assert len(restored) == len(cache)
            assert restored.statistics.hits == 0


def _journal_keys(storage):
    return storage.keys(BuildCache.NAMESPACE, prefix=BuildCache.JOURNAL_PREFIX)


def _journal_documents(storage):
    namespace = storage.namespace(BuildCache.NAMESPACE)
    return [namespace.get(key) for key in _journal_keys(storage)]


class TestJournalAppendOnly:
    """persist_to appends deltas; existing records are never rewritten."""

    def test_first_persist_appends_one_record_per_entry(
        self, inventory, sl5_64_gcc44
    ):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(storage) == len(cache)
        documents = _journal_documents(storage)
        assert len(documents) == len(cache)
        assert all(document["type"] == "entry" for document in documents)

    def test_repersist_without_changes_appends_nothing(
        self, inventory, sl5_64_gcc44
    ):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        before = storage.total_documents()
        keys_before = _journal_keys(storage)
        assert cache.persist_to(storage) == 0
        assert storage.total_documents() == before
        assert _journal_keys(storage) == keys_before

    def test_incremental_persist_appends_only_new_entries(
        self, inventory, sl5_64_gcc44, sl6_64_gcc44
    ):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        keys_before = _journal_keys(storage)
        documents_before = storage.total_documents()
        # A second campaign's worth of builds on another configuration.
        builder = PackageBuilder()
        new_packages = inventory.all()[:2]
        for package in new_packages:
            cache.store(
                package, sl6_64_gcc44,
                builder.build_package(package, sl6_64_gcc44),
            )
        assert cache.persist_to(storage) == len(new_packages)
        keys_after = _journal_keys(storage)
        # Strictly appended: the old records are byte-for-byte untouched.
        assert keys_after[:len(keys_before)] == keys_before
        assert len(keys_after) == len(keys_before) + len(new_packages)
        # Only the new entries, their artifacts and the statistics changed.
        assert (
            storage.total_documents()
            == documents_before + 2 * len(new_packages)
        )

    def test_eviction_appends_tombstone(self, inventory, sl5_64_gcc44):
        cache, store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        records_before = len(_journal_keys(storage))
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        store.remove(victim.tarball.digest)
        assert cache.lookup(inventory.all()[0], sl5_64_gcc44) is None  # evicts
        assert cache.persist_to(storage) == 0
        documents = _journal_documents(storage)
        assert len(documents) == records_before + 1
        victim_key = next(
            document["cache_key"]
            for document in documents
            if document["type"] == "entry"
            and document["result"]["package"]["name"] == inventory.all()[0].name
        )
        assert documents[-1] == {"type": "tombstone", "cache_key": victim_key}
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache)
        assert restored.lookup(inventory.all()[0], sl5_64_gcc44) is None

    def test_clear_then_persist_auto_compacts_to_empty(
        self, inventory, sl5_64_gcc44
    ):
        """Tombstoning everything trips auto-compaction: no dead journal."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        cache.clear()
        assert cache.persist_to(storage) == 0
        assert _journal_documents(storage) == []
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == 0

    def test_persist_auto_compacts_once_tombstones_outnumber_entries(
        self, inventory, sl5_64_gcc44
    ):
        cache, store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        builder = PackageBuilder()
        # Evict all but one entry: more tombstones pending than live entries.
        for package in inventory.all()[1:]:
            result = builder.build_package(package, sl5_64_gcc44)
            store.remove(result.tarball.digest)
            assert cache.lookup(package, sl5_64_gcc44) is None
        assert cache.persist_to(storage) == len(cache)
        status = BuildCache.journal_status(storage)
        assert status["tombstones"] == 0
        assert status["records"] == len(cache) == 1

    def test_tombstoned_key_can_be_rejournalled(self, inventory, sl5_64_gcc44):
        cache, store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        package = inventory.all()[0]
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        store.remove(result.tarball.digest)
        assert cache.lookup(package, sl5_64_gcc44) is None
        cache.persist_to(storage)  # tombstone
        cache.store(package, sl5_64_gcc44, result)  # re-stored (new artifact)
        assert cache.persist_to(storage) == 1
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert restored.lookup(package, sl5_64_gcc44) is not None

    def test_journal_status_counts(self, inventory, sl5_64_gcc44):
        cache, store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        store.remove(victim.tarball.digest)
        cache.lookup(inventory.all()[0], sl5_64_gcc44)
        cache.persist_to(storage)
        status = BuildCache.journal_status(storage)
        assert status["entries"] == len(inventory.all())
        assert status["tombstones"] == 1
        assert status["records"] == len(inventory.all()) + 1
        assert status["artifacts"] == len(inventory.all())
        assert status["bytes"] > 0
        assert BuildCache.journal_status(CommonStorage()) == {
            "records": 0, "entries": 0, "tombstones": 0, "artifacts": 0,
            "bytes": 0,
        }


class TestJournalCompaction:
    def test_compact_drops_tombstones_and_orphans(self, inventory, sl5_64_gcc44):
        cache, store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        store.remove(victim.tarball.digest)
        cache.lookup(inventory.all()[0], sl5_64_gcc44)
        cache.persist_to(storage)
        assert BuildCache.journal_status(storage)["tombstones"] == 1
        written = cache.compact(storage)
        assert written == len(cache)
        status = BuildCache.journal_status(storage)
        assert status["records"] == len(cache)
        assert status["tombstones"] == 0
        # The evicted entry's artifact payload was orphaned and dropped.
        assert status["artifacts"] == len(cache)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache)

    def test_compact_under_budget(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        budget = cache.total_size_bytes() // 2
        written = cache.compact(storage, max_bytes=budget)
        assert 0 < written < len(inventory.all())
        assert written == len(cache)
        assert cache.total_size_bytes() <= budget
        status = BuildCache.journal_status(storage)
        assert status["records"] == written
        assert status["tombstones"] == 0
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == written

    def test_compaction_bounds_journal_growth(self, inventory, sl5_64_gcc44):
        """Churn grows the journal without bound; compaction resets it."""
        cache, store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        builder = PackageBuilder()
        package = inventory.all()[0]
        for _churn in range(3):
            result = builder.build_package(package, sl5_64_gcc44)
            store.remove(result.tarball.digest)
            assert cache.lookup(package, sl5_64_gcc44) is None
            cache.persist_to(storage)
            cache.store(package, sl5_64_gcc44, result)
            cache.persist_to(storage)
        churned = BuildCache.journal_status(storage)
        assert churned["records"] > len(cache)
        cache.compact(storage)
        assert BuildCache.journal_status(storage)["records"] == len(cache)

    def test_compaction_reaches_disk(self, inventory, sl5_64_gcc44, tmp_path):
        """storage.persist mirrors the namespace: compacted-away journal
        files are removed on disk, so a reload cannot resurrect evicted
        entries from a stale tail."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        storage.persist(str(tmp_path))
        budget = cache.total_size_bytes() // 2
        survivors = cache.compact(storage, max_bytes=budget)
        assert 0 < survivors < len(inventory.all())
        storage.persist(str(tmp_path))
        reloaded = CommonStorage.load(str(tmp_path))
        assert BuildCache.journal_status(reloaded)["records"] == survivors
        restored = BuildCache.restore_from(reloaded, ArtifactStore())
        assert len(restored) == survivors
        # Appends after the reload continue cleanly past the compacted log.
        builder = PackageBuilder()
        evicted = [
            package for package in inventory.all()
            if not cache.contains(package, sl5_64_gcc44)
        ]
        restored.store(
            evicted[0], sl5_64_gcc44,
            builder.build_package(evicted[0], sl5_64_gcc44),
        )
        assert restored.persist_to(reloaded) == 1
        assert BuildCache.journal_status(reloaded)["records"] == survivors + 1

    def test_fresh_cache_rewrites_foreign_journal(self, inventory, sl5_64_gcc44):
        """A never-synced cache persisting over an existing journal replaces it."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        other = BuildCache(ArtifactStore())
        builder = PackageBuilder()
        package = inventory.all()[0]
        other.store(package, sl5_64_gcc44, builder.build_package(package, sl5_64_gcc44))
        assert other.persist_to(storage) == 1
        status = BuildCache.journal_status(storage)
        assert status["records"] == 1
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == 1

    def test_second_writer_rewrite_is_detected_by_the_first(
        self, inventory, sl5_64_gcc44
    ):
        """Two caches persisting into one storage cannot corrupt each other.

        Cache B's wholesale rewrite bumps the journal epoch, so cache A's
        next persist must notice (despite its same-namespace fast path),
        fall back to the lineage scan and rewrite from its own live state
        instead of appending onto B's journal.
        """
        storage = CommonStorage()
        builder = PackageBuilder()
        packages = inventory.all()

        cache_a = BuildCache(ArtifactStore())
        for package in packages[:2]:
            cache_a.store(
                package, sl5_64_gcc44,
                builder.build_package(package, sl5_64_gcc44),
            )
        cache_a.persist_to(storage)

        cache_b = BuildCache(ArtifactStore())
        cache_b.store(
            packages[2], sl5_64_gcc44,
            builder.build_package(packages[2], sl5_64_gcc44),
        )
        cache_b.persist_to(storage)  # never-synced writer: rewrites

        cache_a.store(
            packages[3], sl5_64_gcc44,
            builder.build_package(packages[3], sl5_64_gcc44),
        )
        cache_a.persist_to(storage)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        # The last writer's live state won wholesale; nothing was merged.
        assert len(restored) == len(cache_a) == 3
        for package in packages[:2] + [packages[3]]:
            assert restored.lookup(package, sl5_64_gcc44) is not None

    def test_restored_cache_rewrites_a_foreign_overlapping_journal(
        self, inventory, sl5_64_gcc44
    ):
        """Sequence overlap with a foreign journal does not fake 'in sync'.

        A cache restored from storage A must not silently merge into
        storage B's journal just because B happens to hold records at the
        same sequence numbers: the persisted state must equal the live
        cache, so the lineage check compares record content, not key
        existence.
        """
        big_cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage_b = CommonStorage()
        big_cache.persist_to(storage_b)  # sequences 1..N

        from dataclasses import replace

        donor = CommonStorage()
        small_cache = BuildCache(ArtifactStore())
        # A version bump guarantees a cache key disjoint from storage B's.
        package = replace(inventory.all()[0], version="99.9")
        small_cache.store(
            package, sl5_64_gcc44,
            PackageBuilder().build_package(package, sl5_64_gcc44),
        )
        small_cache.persist_to(donor)  # sequence 1 — overlaps storage B's
        restored = BuildCache.restore_from(donor, ArtifactStore())

        restored.persist_to(storage_b)
        merged = BuildCache.restore_from(storage_b, ArtifactStore())
        assert len(merged) == len(restored) == 1


class TestLegacySnapshotCleanup:
    """Pre-journal `entry_*` snapshots are dropped (their retired key format
    could never be hit again) and cleaned out by the next persist."""

    def _legacy_snapshot(self, inventory, configuration):
        storage = CommonStorage()
        namespace = storage.create_namespace(BuildCache.NAMESPACE)
        for package in inventory.all():
            result = PackageBuilder().build_package(package, configuration)
            key = f"legacyformat{package.name.replace('-', '')}"
            namespace.put(
                f"{BuildCache.LEGACY_ENTRY_PREFIX}{key}",
                {"cache_key": key, "result": result.to_dict()},
            )
            namespace.put(
                f"{BuildCache.ARTIFACT_PREFIX}{result.tarball.digest}",
                result.tarball.to_dict(),
            )
        namespace.put(
            BuildCache.STATISTICS_KEY,
            {"hits": 7, "misses": 3, "stores": 3, "evictions": 0},
        )
        return storage

    def test_legacy_snapshot_restores_empty_with_evictions(
        self, inventory, sl5_64_gcc44
    ):
        storage = self._legacy_snapshot(inventory, sl5_64_gcc44)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == 0
        assert restored.statistics.evictions == len(inventory.all())
        # The cumulative counters still travel.
        assert restored.statistics.hits == 7

    def test_next_persist_deletes_the_dead_snapshot(
        self, inventory, sl5_64_gcc44
    ):
        storage = self._legacy_snapshot(inventory, sl5_64_gcc44)
        restored = BuildCache.restore_from(storage, ArtifactStore())
        # New builds journal normally; the dead documents disappear.
        package = inventory.all()[0]
        restored.store(
            package, sl5_64_gcc44,
            PackageBuilder().build_package(package, sl5_64_gcc44),
        )
        assert restored.persist_to(storage) == 1
        assert storage.keys(
            BuildCache.NAMESPACE, prefix=BuildCache.LEGACY_ENTRY_PREFIX
        ) == []
        assert BuildCache.journal_status(storage)["entries"] == 1
        assert len(BuildCache.restore_from(storage, ArtifactStore())) == 1


class TestJournalCorruptionRecovery:
    def _persisted(self, inventory, configuration):
        cache, _store = _populated_cache(inventory, configuration)
        storage = CommonStorage()
        cache.persist_to(storage)
        return cache, storage

    def test_corrupted_trailing_record_is_dropped(self, inventory, sl5_64_gcc44):
        cache, storage = self._persisted(inventory, sl5_64_gcc44)
        namespace = storage.namespace(BuildCache.NAMESPACE)
        last_key = _journal_keys(storage)[-1]
        namespace.put(last_key, {"type": "entry", "cache_key": "x"})  # truncated
        restored = BuildCache.restore_from(storage, ArtifactStore())
        # Everything before the corrupted tail is recovered.
        assert len(restored) == len(cache) - 1

    def test_mid_journal_corruption_skips_only_the_broken_record(
        self, inventory, sl5_64_gcc44
    ):
        """One bad record must not discard the valid tail behind it.

        Skipping is safe for a content-addressed cache: a lost entry costs
        a rebuild, a resurrected one is still correct by construction.
        """
        cache, storage = self._persisted(inventory, sl5_64_gcc44)
        namespace = storage.namespace(BuildCache.NAMESPACE)
        keys = _journal_keys(storage)
        namespace.put(keys[1], "garbage")
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache) - 1

    def test_next_persist_repairs_a_recovered_journal(
        self, inventory, sl5_64_gcc44
    ):
        cache, storage = self._persisted(inventory, sl5_64_gcc44)
        namespace = storage.namespace(BuildCache.NAMESPACE)
        last_key = _journal_keys(storage)[-1]
        namespace.put(last_key, {"type": "entry", "cache_key": "x"})
        restored = BuildCache.restore_from(storage, ArtifactStore())
        written = restored.persist_to(storage)
        # The repair is a full rewrite of the journal from the live state.
        assert written == len(restored)
        status = BuildCache.journal_status(storage)
        assert status["records"] == len(restored)
        rerestored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(rerestored) == len(restored)


class TestRestoreTimeEviction:
    def test_dangling_artifact_document_evicts_entry(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        storage.namespace(BuildCache.NAMESPACE).delete(
            f"{BuildCache.ARTIFACT_PREFIX}{victim.tarball.digest}"
        )
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(cache) - 1
        assert restored.statistics.evictions == cache.statistics.evictions + 1
        assert restored.lookup(inventory.all()[0], sl5_64_gcc44) is None

    def test_restore_never_mutates_the_source_storage(self, inventory, sl5_64_gcc44):
        """Restore is read-only: the snapshot may belong to a live installation."""
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        victim = PackageBuilder().build_package(inventory.all()[0], sl5_64_gcc44)
        storage.namespace(BuildCache.NAMESPACE).delete(
            f"{BuildCache.ARTIFACT_PREFIX}{victim.tarball.digest}"
        )
        keys_before = storage.keys(BuildCache.NAMESPACE)
        BuildCache.restore_from(storage, ArtifactStore())
        assert storage.keys(BuildCache.NAMESPACE) == keys_before
        # The restored cache's next persist drops the dangling entry instead.
        restored = BuildCache.restore_from(storage, ArtifactStore())
        clean = CommonStorage()
        assert restored.persist_to(clean) == len(cache) - 1

    def test_artifact_already_in_store_needs_no_payload(self, inventory, sl5_64_gcc44):
        cache, source_store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        cache.persist_to(storage)
        for key in storage.keys(
            BuildCache.NAMESPACE, prefix=BuildCache.ARTIFACT_PREFIX
        ):
            storage.namespace(BuildCache.NAMESPACE).delete(key)
        # Restoring against the store that still holds the artifacts works.
        restored = BuildCache.restore_from(storage, source_store)
        assert len(restored) == len(cache)
        assert restored.statistics.evictions == cache.statistics.evictions


class TestSizeBudget:
    """persist_to(max_bytes=...) keeps the snapshot within a size budget."""

    def test_budget_evicts_least_recently_hit_first(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        packages = inventory.all()
        # Touch every entry but the first: the untouched one must go first.
        for package in packages[1:]:
            assert cache.lookup(package, sl5_64_gcc44) is not None
        size_of_one = cache.entry_size_bytes(
            PackageBuilder().build_package(packages[0], sl5_64_gcc44)
        )
        storage = CommonStorage()
        persisted = cache.persist_to(
            storage, max_bytes=cache.total_size_bytes() - size_of_one
        )
        assert persisted == len(packages) - 1
        assert cache.lookup(packages[0], sl5_64_gcc44) is None  # evicted
        assert cache.lookup(packages[1], sl5_64_gcc44) is not None

    def test_zero_budget_persists_nothing(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(storage, max_bytes=0) == 0
        assert len(cache) == 0
        assert cache.statistics.evictions == len(inventory.all())
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == 0

    def test_generous_budget_evicts_nothing(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert cache.persist_to(
            storage, max_bytes=cache.total_size_bytes()
        ) == len(inventory.all())
        assert cache.statistics.evictions == 0

    def test_negative_budget_rejected(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        with pytest.raises(StorageError):
            cache.persist_to(CommonStorage(), max_bytes=-1)

    def test_budgeted_snapshot_still_round_trips(self, inventory, sl5_64_gcc44):
        cache, _store = _populated_cache(inventory, sl5_64_gcc44)
        budget = cache.total_size_bytes() // 2
        storage = CommonStorage()
        persisted = cache.persist_to(storage, max_bytes=budget)
        assert 0 < persisted < len(inventory.all())
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == persisted
        # The surviving (most recently stored) entries replay as hits.
        survivors = [
            package for package in inventory.all()
            if cache.contains(package, sl5_64_gcc44)
        ]
        assert survivors
        for package in survivors:
            assert restored.lookup(package, sl5_64_gcc44) is not None


class TestWarmStartCampaigns:
    def test_second_installation_warm_starts_with_hits(self):
        cold = _fresh_system()
        first = cold.run_campaign(["HERMES"], CAMPAIGN_KEYS, workers=2)
        assert first.cache_statistics.hits == 0
        assert cold.persist_build_cache() > 0

        warm = _fresh_system()
        assert warm.restore_build_cache(cold.storage) is not None
        second = warm.run_campaign(["HERMES"], CAMPAIGN_KEYS, workers=2)
        assert second.cache_statistics.hits > 0
        assert second.cache_statistics.misses == 0

    def test_warm_campaign_output_is_bit_identical(self):
        # Cold sequential baseline: one validate() call per cell.
        baseline = _fresh_system()
        expected = [
            baseline.validate("HERMES", key).run.to_document()
            for key in CAMPAIGN_KEYS
        ]

        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        cold.persist_build_cache()

        warm = _fresh_system()
        warm.restore_build_cache(cold.storage)
        campaign = warm.run_campaign(["HERMES"], CAMPAIGN_KEYS, workers=3)
        assert campaign.cache_statistics.hits > 0
        assert [run.to_document() for run in campaign.runs()] == expected
        # Catalogue records are identical too.
        assert [record.to_dict() for record in warm.catalog.all()] == [
            record.to_dict() for record in baseline.catalog.all()
        ]

    def test_run_campaign_warm_starts_from_mounted_storage(self, tmp_path):
        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        cold.persist_build_cache()
        cold.storage.persist(str(tmp_path))

        # A fresh installation mounted on the loaded storage warm-starts
        # automatically — no explicit restore call.
        warm = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
            storage=CommonStorage.load(str(tmp_path)),
        )
        warm.provision_standard_images()
        warm.register_experiment(build_hermes_experiment(scale=0.2))
        campaign = warm.run_campaign(
            ["HERMES"], CAMPAIGN_KEYS, description="warm rerun"
        )
        assert campaign.cache_statistics.hits > 0
        assert campaign.cache_statistics.misses == 0

    def test_warm_start_can_be_disabled(self, tmp_path):
        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        cold.persist_build_cache()
        cold.storage.persist(str(tmp_path))

        warm = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
            storage=CommonStorage.load(str(tmp_path)),
        )
        warm.provision_standard_images()
        warm.register_experiment(build_hermes_experiment(scale=0.2))
        campaign = warm.run_campaign(
            ["HERMES"], CAMPAIGN_KEYS, description="cold rerun", warm_start=False
        )
        assert campaign.cache_statistics.hits == 0

    def test_restore_without_snapshot_raises(self):
        system = _fresh_system()
        with pytest.raises(StorageError):
            system.restore_build_cache(CommonStorage())
        assert system.restore_build_cache(CommonStorage(), missing_ok=True) is None

    def test_restore_mounts_the_journal_for_incremental_persists(self):
        """A warm installation appends to the inherited journal, not rewrites.

        This is the CLI round trip: restore from a loaded storage, run a
        campaign, persist into the installation's own storage — without new
        builds, zero journal records are appended.
        """
        cold = _fresh_system()
        cold.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        entries = cold.persist_build_cache()
        assert entries > 0
        source_keys = cold.storage.keys(BuildCache.NAMESPACE)

        warm = _fresh_system()
        warm.restore_build_cache(cold.storage)
        # The journal travelled into the warm installation's own storage...
        assert warm.storage.keys(BuildCache.NAMESPACE) == source_keys
        warm.run_campaign(["HERMES"], CAMPAIGN_KEYS)
        # ...and a fully warm campaign appends nothing to it.
        assert warm.persist_build_cache() == 0
        assert warm.storage.keys(BuildCache.NAMESPACE) == source_keys
        # The source installation's storage was never modified.
        assert cold.storage.keys(BuildCache.NAMESPACE) == source_keys


class TestShardMergeJournalAppend:
    """Shard-merged entries reach a synced journal without a later persist.

    ``merge_from`` is the sharded backend's merge primitive; when the
    parent cache is synced to a journal (restored from it, or last to
    persist into it), the merge appends the new entries immediately — a
    daemon crash between the shard merge and the next explicit persist
    loses nothing.  An unsynced cache, or one whose journal another writer
    bumped, defers to the next ``persist_to`` exactly as before.
    """

    def _split_caches(self, inventory, configuration):
        builder = PackageBuilder()
        parent = BuildCache(ArtifactStore())
        shard = BuildCache(ArtifactStore())
        packages = inventory.all()
        half = len(packages) // 2
        for package in packages[:half]:
            parent.store(
                package, configuration, builder.build_package(package, configuration)
            )
        for package in packages[half:]:
            shard.store(
                package, configuration, builder.build_package(package, configuration)
            )
        return parent, shard

    def test_merge_into_synced_cache_journals_without_persist(
        self, inventory, sl5_64_gcc44
    ):
        parent, shard = self._split_caches(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        assert parent.persist_to(storage) == len(parent)
        assert parent.merge_from(shard) == len(shard)
        # No persist_to after the merge: the journal already has them.
        restored = BuildCache.restore_from(storage, ArtifactStore())
        assert len(restored) == len(parent) == len(inventory.all())
        for package in inventory.all():
            assert restored.contains(package, sl5_64_gcc44)

    def test_persist_after_journalled_merge_appends_nothing(
        self, inventory, sl5_64_gcc44
    ):
        parent, shard = self._split_caches(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        parent.persist_to(storage)
        parent.merge_from(shard)
        records = storage.keys(BuildCache.NAMESPACE)
        # The merge marked the entries persisted: idempotent follow-up.
        assert parent.persist_to(storage) == 0
        assert storage.keys(BuildCache.NAMESPACE) == records

    def test_journal_false_defers_to_the_next_persist(
        self, inventory, sl5_64_gcc44
    ):
        parent, shard = self._split_caches(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        persisted = parent.persist_to(storage)
        merged = parent.merge_from(shard, journal=False)
        assert merged == len(shard)
        assert len(BuildCache.restore_from(storage, ArtifactStore())) == persisted
        assert parent.persist_to(storage) == merged
        assert len(BuildCache.restore_from(storage, ArtifactStore())) == len(parent)

    def test_never_synced_cache_defers_to_the_first_persist(
        self, inventory, sl5_64_gcc44
    ):
        parent, shard = self._split_caches(inventory, sl5_64_gcc44)
        assert parent.merge_from(shard) == len(shard)
        storage = CommonStorage()
        # Nothing was journalled by the merge (there was no journal);
        # the first persist writes the full merged cache.
        assert parent.persist_to(storage) == len(parent)
        assert len(parent) == len(inventory.all())

    def test_foreign_epoch_bump_defers_the_append(
        self, inventory, sl5_64_gcc44
    ):
        parent, shard = self._split_caches(inventory, sl5_64_gcc44)
        storage = CommonStorage()
        parent.persist_to(storage)
        # A rival writer rewrites the journal, bumping its epoch.
        rival = BuildCache.restore_from(storage, ArtifactStore())
        rival.clear()
        rival.persist_to(storage)
        # The merge still lands in memory, but appending to the bumped
        # journal would interleave two lineages — it is deferred.
        assert parent.merge_from(shard) == len(shard)
        assert len(BuildCache.restore_from(storage, ArtifactStore())) == 0
        # The next persist detects the stale sync and rewrites wholesale.
        assert parent.persist_to(storage) == len(parent)
        assert len(BuildCache.restore_from(storage, ArtifactStore())) == len(parent)


class TestShardedCampaignJournal:
    """System level: sharded merges never disturb a mounted journal."""

    def test_sharded_campaign_keeps_the_mounted_journal_consistent(self):
        from repro.scheduler.spec import CampaignSpec

        system = _fresh_system()
        system.run_campaign(["HERMES"], [CAMPAIGN_KEYS[0]])
        assert system.persist_build_cache() > 0
        before = len(BuildCache.restore_from(system.storage, ArtifactStore()))
        system.submit(
            CampaignSpec(
                experiments=("HERMES",),
                configuration_keys=tuple(CAMPAIGN_KEYS),
                workers=2,
                shards=2,
                persist_spec=False,
            )
        ).result()
        # The parent cell pass stored the second configuration's builds
        # itself, so the shard merge replays entries the parent already
        # has — an idempotent no-op that must not touch the synced
        # journal's lineage.  The next persist appends exactly the new
        # entries, after which restore equals the live cache.
        assert len(
            BuildCache.restore_from(system.storage, ArtifactStore())
        ) == before
        live = system.effective_build_cache()
        assert system.persist_build_cache() == len(live) - before
        restored = BuildCache.restore_from(system.storage, ArtifactStore())
        assert len(restored) == len(live)

    def test_unsynced_sharded_run_leaves_storage_untouched(self):
        from repro.scheduler.spec import CampaignSpec

        system = _fresh_system()
        system.submit(
            CampaignSpec(
                experiments=("HERMES",),
                configuration_keys=tuple(CAMPAIGN_KEYS),
                workers=2,
                shards=2,
                persist_spec=False,
            )
        ).result()
        # Never persisted, so the merge had no journal to extend.
        assert BuildCache.NAMESPACE not in system.storage.namespaces()
