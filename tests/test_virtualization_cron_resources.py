"""Tests for the cron scheduler and the resource accounting."""

import pytest

from repro._common import SchedulingError
from repro.storage.bookkeeping import EPOCH_2013, SimulatedClock
from repro.virtualization.cron import (
    CronExpression,
    CronScheduler,
    NIGHTLY_BUILD_SCHEDULE,
    WEEKLY_VALIDATION_SCHEDULE,
)
from repro.virtualization.resources import (
    BATCH_WORKER_PROFILE,
    ResourceAccountant,
    ResourceProfile,
    VALIDATION_VM_PROFILE,
)


class TestCronExpression:
    def test_parse_wildcards(self):
        expression = CronExpression.parse("* * * * *")
        assert len(expression.minutes) == 60
        assert len(expression.hours) == 24

    def test_parse_lists_ranges_steps(self):
        expression = CronExpression.parse("0,30 2-4 */10 1 0-6/2")
        assert expression.minutes == frozenset({0, 30})
        assert expression.hours == frozenset({2, 3, 4})
        assert expression.days_of_month == frozenset({1, 11, 21, 31})
        assert expression.months == frozenset({1})
        assert expression.days_of_week == frozenset({0, 2, 4, 6})

    def test_invalid_expressions_rejected(self):
        for text in ("* * * *", "61 * * * *", "* 25 * * *", "a * * * *", "*/0 * * * *",
                     "5-1 * * * *", "1,, * * * *"):
            with pytest.raises(SchedulingError):
                CronExpression.parse(text)

    def test_matches_midnight(self):
        # EPOCH_2013 is 1 January 2013 00:00 UTC, a Tuesday.
        expression = CronExpression.parse("0 0 1 1 *")
        assert expression.matches(EPOCH_2013)
        assert not expression.matches(EPOCH_2013 + 60)

    def test_matches_weekday(self):
        tuesday_expression = CronExpression.parse("0 0 * * 2")
        sunday_expression = CronExpression.parse("0 0 * * 0")
        assert tuesday_expression.matches(EPOCH_2013)
        assert not sunday_expression.matches(EPOCH_2013)

    def test_next_fire(self):
        expression = CronExpression.parse("30 2 * * *")
        fire = expression.next_fire(EPOCH_2013)
        assert fire == EPOCH_2013 + 2 * 3600 + 30 * 60

    def test_next_fire_never_raises(self):
        expression = CronExpression.parse("0 0 31 2 *")  # 31 February never exists
        with pytest.raises(SchedulingError):
            expression.next_fire(EPOCH_2013, horizon_days=400)


class TestCronScheduler:
    def test_nightly_job_fires_once_per_day(self):
        scheduler = CronScheduler(SimulatedClock())
        fired = []
        scheduler.install("nightly", NIGHTLY_BUILD_SCHEDULE, lambda ts: fired.append(ts))
        events = scheduler.advance_days(3)
        assert len(events) == 3
        assert len(fired) == 3
        assert scheduler.job("nightly").fire_count == 3

    def test_weekly_job(self):
        scheduler = CronScheduler(SimulatedClock())
        scheduler.install("weekly", WEEKLY_VALIDATION_SCHEDULE, lambda ts: "ok")
        events = scheduler.advance_days(14)
        assert len(events) == 2

    def test_duplicate_and_missing_jobs(self):
        scheduler = CronScheduler()
        scheduler.install("job", "0 0 * * *", lambda ts: None)
        with pytest.raises(SchedulingError):
            scheduler.install("job", "0 0 * * *", lambda ts: None)
        with pytest.raises(SchedulingError):
            scheduler.job("ghost")
        scheduler.remove("job")
        with pytest.raises(SchedulingError):
            scheduler.remove("job")

    def test_disabled_job_does_not_fire(self):
        scheduler = CronScheduler(SimulatedClock())
        scheduler.install("nightly", NIGHTLY_BUILD_SCHEDULE, lambda ts: "ok")
        scheduler.disable("nightly")
        assert scheduler.advance_days(2) == []
        scheduler.enable("nightly")
        assert len(scheduler.advance_days(1)) == 1

    def test_negative_advance_rejected(self):
        with pytest.raises(SchedulingError):
            CronScheduler().advance(-10)

    def test_results_carried_in_events(self):
        scheduler = CronScheduler(SimulatedClock())
        scheduler.install("nightly", NIGHTLY_BUILD_SCHEDULE, lambda ts: ts + 1)
        events = scheduler.advance_days(1)
        timestamp, name, result = events[0]
        assert name == "nightly"
        assert result == timestamp + 1


class TestResources:
    def test_invalid_profile(self):
        with pytest.raises(Exception):
            ResourceProfile(cpu_cores=0, memory_gb=1.0, disk_gb=1.0)

    def test_reserve_and_release(self):
        accountant = ResourceAccountant(VALIDATION_VM_PROFILE)
        accountant.reserve("job-1", cpu_cores=1, memory_gb=1.0, disk_gb=5.0)
        assert accountant.used_cores == 1
        assert accountant.free_cores == 1
        accountant.release("job-1", cpu_seconds_used=120.0)
        assert accountant.used_cores == 0
        assert accountant.total_cpu_seconds == 120.0

    def test_overcommit_rejected(self):
        accountant = ResourceAccountant(VALIDATION_VM_PROFILE)
        accountant.reserve("job-1", cpu_cores=2)
        with pytest.raises(SchedulingError):
            accountant.reserve("job-2", cpu_cores=1)

    def test_duplicate_and_unknown_jobs(self):
        accountant = ResourceAccountant(BATCH_WORKER_PROFILE)
        accountant.reserve("job-1")
        with pytest.raises(SchedulingError):
            accountant.reserve("job-1")
        with pytest.raises(SchedulingError):
            accountant.release("ghost")
        with pytest.raises(SchedulingError):
            accountant.release("job-1", cpu_seconds_used=-1.0)

    def test_utilisation_and_peak(self):
        accountant = ResourceAccountant(BATCH_WORKER_PROFILE)
        accountant.reserve("job-1", cpu_cores=4)
        accountant.reserve("job-2", cpu_cores=4)
        assert accountant.utilisation() == pytest.approx(1.0)
        assert accountant.peak_concurrent_jobs == 2
        assert accountant.active_jobs() == ["job-1", "job-2"]
