"""Tests for the environment evolution timeline."""

import pytest

from repro._common import ConfigurationError
from repro.environment.evolution import (
    EVENT_COMPILER_RELEASE,
    EVENT_EXTERNAL_RELEASE,
    EVENT_OS_EOL,
    EVENT_OS_RELEASE,
    EnvironmentTimeline,
)


@pytest.fixture(scope="module")
def timeline():
    return EnvironmentTimeline()


class TestEvents:
    def test_sl6_release_event_in_2011(self, timeline):
        events = timeline.events_in(2011)
        assert any(
            event.kind == EVENT_OS_RELEASE and event.subject == "SL6" for event in events
        )

    def test_sl5_end_of_life_event(self, timeline):
        events = timeline.events_in(2017)
        assert any(
            event.kind == EVENT_OS_EOL and event.subject == "SL5" for event in events
        )

    def test_root6_release_event(self, timeline):
        events = timeline.events_in(2014)
        assert any(
            event.kind == EVENT_EXTERNAL_RELEASE and event.subject == "ROOT-6.02"
            for event in events
        )

    def test_compiler_release_event(self, timeline):
        events = timeline.events_in(2013)
        assert any(
            event.kind == EVENT_COMPILER_RELEASE and event.subject == "gcc4.8"
            for event in events
        )

    def test_quiet_year_has_no_events(self, timeline):
        assert timeline.events_in(2018) == []

    def test_event_string_rendering(self, timeline):
        event = timeline.events_in(2011)[0]
        assert str(event).startswith("2011:")


class TestRecommendedConfiguration:
    def test_recommendation_in_2010_is_sl5(self, timeline):
        recommended = timeline.recommended_configuration(2010)
        assert recommended.operating_system.name == "SL5"
        assert recommended.word_size == 64

    def test_recommendation_in_2013_is_sl6(self, timeline):
        recommended = timeline.recommended_configuration(2013)
        assert recommended.operating_system.name == "SL6"
        assert recommended.compiler.name == "gcc4.8"

    def test_recommendation_in_2015_is_sl7_with_root6(self, timeline):
        recommended = timeline.recommended_configuration(2015)
        assert recommended.operating_system.name == "SL7"
        assert recommended.external("ROOT").version == "6.02"

    def test_recommendation_tracks_only_released_externals(self, timeline):
        recommended = timeline.recommended_configuration(2009)
        assert recommended.external("ROOT").version == "5.26"

    def test_recommendation_before_any_os_raises(self, timeline):
        with pytest.raises(ConfigurationError):
            timeline.recommended_configuration(1990)


class TestReplay:
    def test_replay_yields_one_snapshot_per_year(self, timeline):
        snapshots = list(timeline.replay(2010, 2015))
        assert [snapshot.year for snapshot in snapshots] == list(range(2010, 2016))

    def test_replay_rejects_reversed_range(self, timeline):
        with pytest.raises(ConfigurationError):
            list(timeline.replay(2015, 2010))

    def test_snapshot_supported_operating_systems(self, timeline):
        snapshot = timeline.snapshot(2013)
        assert "SL5" in snapshot.supported_operating_systems
        assert "SL6" in snapshot.supported_operating_systems

    def test_has_events_flag(self, timeline):
        assert timeline.snapshot(2011).has_events()
        assert not timeline.snapshot(2018).has_events()

    def test_operating_system_is_safe(self, timeline):
        assert timeline.operating_system_is_safe("SL6", 2015)
        assert not timeline.operating_system_is_safe("SL5", 2019)
