"""Tests for the operating system and compiler catalogues."""

import pytest

from repro._common import ConfigurationError
from repro.environment.compilers import Compiler, CompilerCatalog, default_compilers
from repro.environment.os_catalog import (
    OperatingSystemCatalog,
    OperatingSystemRelease,
    default_releases,
)


class TestOperatingSystemRelease:
    def test_default_catalog_contains_sl5_and_sl6(self):
        catalog = OperatingSystemCatalog()
        assert "SL5" in catalog
        assert "SL6" in catalog
        assert "SL7" in catalog

    def test_sl6_is_64bit_only(self):
        sl6 = OperatingSystemCatalog().get("SL6")
        assert sl6.supports_word_size(64)
        assert not sl6.supports_word_size(32)

    def test_sl5_supports_both_word_sizes(self):
        sl5 = OperatingSystemCatalog().get("SL5")
        assert sl5.supports_word_size(32)
        assert sl5.supports_word_size(64)

    def test_support_window(self):
        sl5 = OperatingSystemCatalog().get("SL5")
        assert sl5.is_supported_in(2013)
        assert not sl5.is_supported_in(2019)
        assert not sl5.is_supported_in(2005)

    def test_invalid_eol_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingSystemRelease(
                name="BAD", family="Test", major_version=1,
                release_year=2010, end_of_life_year=2009,
                word_sizes=(64,), system_compiler=("gcc", "4.4"),
                abi_level=9, libc_version="2.12",
            )

    def test_invalid_word_size_rejected(self):
        with pytest.raises(ConfigurationError):
            OperatingSystemRelease(
                name="BAD", family="Test", major_version=1,
                release_year=2010, end_of_life_year=2015,
                word_sizes=(16,), system_compiler=("gcc", "4.4"),
                abi_level=9, libc_version="2.12",
            )


class TestOperatingSystemCatalog:
    def test_ordering_by_abi_level(self):
        names = [release.name for release in OperatingSystemCatalog().all()]
        assert names == ["SL4", "SL5", "SL6", "SL7"]

    def test_latest_overall_and_by_year(self):
        catalog = OperatingSystemCatalog()
        assert catalog.latest().name == "SL7"
        assert catalog.latest(year=2012).name == "SL6"
        assert catalog.latest(year=2008).name == "SL5"

    def test_latest_before_any_release_raises(self):
        with pytest.raises(ConfigurationError):
            OperatingSystemCatalog().latest(year=1990)

    def test_successor(self):
        catalog = OperatingSystemCatalog()
        assert catalog.successor_of("SL5").name == "SL6"
        assert catalog.successor_of("SL7") is None

    def test_duplicate_registration_rejected(self):
        catalog = OperatingSystemCatalog()
        with pytest.raises(ConfigurationError):
            catalog.register(default_releases()[0])

    def test_unknown_lookup_raises(self):
        with pytest.raises(ConfigurationError):
            OperatingSystemCatalog().get("Windows95")

    def test_supported_in_excludes_eol(self):
        names = [release.name for release in OperatingSystemCatalog().supported_in(2019)]
        assert "SL5" not in names
        assert "SL6" in names


class TestCompilerCatalog:
    def test_default_compilers_present(self):
        catalog = CompilerCatalog()
        assert "gcc4.1" in catalog
        assert "gcc4.4" in catalog
        assert "gcc4.8" in catalog

    def test_lookup_by_version_only(self):
        assert CompilerCatalog().get("4.4").name == "gcc4.4"

    def test_strictness_increases_with_version(self):
        catalog = CompilerCatalog()
        strictness = [compiler.strictness for compiler in catalog.family("gcc")]
        assert strictness == sorted(strictness)

    def test_gcc48_supports_cxx11_but_gcc44_does_not(self):
        catalog = CompilerCatalog()
        assert catalog.get("gcc4.8").supports_cxx_standard("c++11")
        assert not catalog.get("gcc4.4").supports_cxx_standard("c++11")

    def test_latest_by_year(self):
        catalog = CompilerCatalog()
        assert catalog.latest(year=2010).name == "gcc4.4"
        assert catalog.latest(year=2014).name == "gcc4.9"

    def test_is_newer_than(self):
        catalog = CompilerCatalog()
        assert catalog.get("gcc4.4").is_newer_than(catalog.get("gcc4.1"))
        assert not catalog.get("gcc4.1").is_newer_than(catalog.get("gcc4.4"))

    def test_ordering_different_families_rejected(self):
        gcc = CompilerCatalog().get("gcc4.4")
        clang = Compiler(
            family="clang", version="3.4", release_year=2013, strictness=4,
            cxx_standards=("c++98", "c++11"), fortran_standards=(),
            default_cxx_standard="c++98",
        )
        with pytest.raises(ConfigurationError):
            gcc.is_newer_than(clang)

    def test_unknown_compiler_raises(self):
        with pytest.raises(ConfigurationError):
            CompilerCatalog().get("gcc99")

    def test_duplicate_registration_rejected(self):
        catalog = CompilerCatalog()
        with pytest.raises(ConfigurationError):
            catalog.register(default_compilers()[0])

    def test_invalid_default_standard_rejected(self):
        with pytest.raises(ConfigurationError):
            Compiler(
                family="gcc", version="9.9", release_year=2020, strictness=9,
                cxx_standards=("c++11",), fortran_standards=(),
                default_cxx_standard="c++98",
            )
