"""Tests for regression detection and failure diagnosis."""

import pytest

from repro.core.diagnosis import FailureDiagnosisEngine, RESPONSIBLE_PARTY
from repro.core.regression import RegressionDetector
from repro.core.runner import ValidationRunner
from repro.environment.compatibility import IssueCategory
from repro.hepdata.numerics import NumericContext, context_for_environment


@pytest.fixture()
def runner():
    return ValidationRunner()


class TestRegressionDetector:
    def test_no_reference_for_first_run(self, runner, tiny_hermes, sl5_64_gcc44):
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        detector = RegressionDetector(runner.storage, runner.catalog)
        report = detector.compare_to_reference(run)
        assert report.reference_run_id is None
        assert not report.has_regressions
        assert report.unchanged == run.n_jobs

    def test_identical_rerun_has_no_regressions(self, runner, tiny_hermes, sl5_64_gcc44):
        first = runner.run(tiny_hermes, sl5_64_gcc44)
        second = runner.run(tiny_hermes, sl5_64_gcc44)
        detector = RegressionDetector(runner.storage, runner.catalog)
        report = detector.compare_to_reference(second)
        assert report.reference_run_id == first.run_id
        assert not report.has_regressions

    def test_migration_failures_reported_as_regressions(
        self, runner, tiny_zeus, sl5_64_gcc44, sl6_64_gcc44
    ):
        runner.run(tiny_zeus, sl5_64_gcc44)
        sl6_run = runner.run(tiny_zeus, sl6_64_gcc44)
        detector = RegressionDetector(runner.storage, runner.catalog)
        report = detector.compare_to_reference(sl6_run)
        assert report.has_regressions
        assert report.reference_configuration_key == sl5_64_gcc44.key
        assert any("compile-" in name for name in report.regression_names())

    def test_same_configuration_only_restriction(
        self, runner, tiny_hermes, sl5_64_gcc44, sl6_64_gcc44
    ):
        runner.run(tiny_hermes, sl5_64_gcc44)
        sl6_run = runner.run(tiny_hermes, sl6_64_gcc44)
        detector = RegressionDetector(runner.storage, runner.catalog)
        assert detector.find_reference(sl6_run, same_configuration_only=True) is None
        assert detector.find_reference(sl6_run) is not None

    def test_numeric_drift_detected_in_outputs(self, tiny_hermes, sl5_64_gcc44):
        # First run with the reference numeric behaviour, second with a
        # defective environment: results shift far outside tolerance even
        # though the tests themselves may still "pass".
        healthy_runner = ValidationRunner()
        healthy_runner.run(tiny_hermes, sl5_64_gcc44)

        def defective_context(configuration):
            return NumericContext(
                label=configuration.key,
                rounding_scale=1e-12,
                defects=(("uninitialised-memory", 0.3),),
            )

        defective_runner = ValidationRunner(
            storage=healthy_runner.storage,
            catalog=healthy_runner.catalog,
            artifact_store=healthy_runner.artifact_store,
            id_allocator=healthy_runner.id_allocator,
            numeric_context_factory=defective_context,
        )
        drifted = defective_runner.run(tiny_hermes, sl5_64_gcc44)
        detector = RegressionDetector(healthy_runner.storage, healthy_runner.catalog)
        report = detector.compare_to_reference(drifted)
        assert report.has_regressions

    def test_report_summary_text(self, runner, tiny_hermes, sl5_64_gcc44):
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        detector = RegressionDetector(runner.storage, runner.catalog)
        summary = detector.compare_to_reference(run).summary()
        assert run.run_id in summary
        assert "regression" in summary


class TestFailureDiagnosis:
    def test_healthy_run_has_no_diagnoses(self, runner, tiny_hermes, sl5_64_gcc44):
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        report = FailureDiagnosisEngine().diagnose_run(run)
        assert report.diagnoses == []
        assert report.dominant_category() is None

    def test_sl6_migration_failures_attributed_to_environment(
        self, runner, tiny_zeus, sl5_64_gcc44, sl6_64_gcc44
    ):
        runner.run(tiny_zeus, sl5_64_gcc44)
        sl6_run = runner.run(tiny_zeus, sl6_64_gcc44)
        report = FailureDiagnosisEngine().diagnose_run(
            sl6_run,
            reference_configuration=sl5_64_gcc44,
            current_configuration=sl6_64_gcc44,
        )
        assert report.diagnoses
        dominant = report.dominant_category()
        assert dominant in (IssueCategory.OPERATING_SYSTEM, IssueCategory.COMPILER)
        assert report.configuration_changes
        for diagnosis in report.diagnoses:
            assert diagnosis.responsible_party == RESPONSIBLE_PARTY[diagnosis.category]
            assert 0.0 < diagnosis.confidence <= 1.0
            assert diagnosis.evidence

    def test_experiment_software_is_default_suspect(self, runner, tiny_hermes, sl5_64_gcc44):
        def broken_context(configuration):
            return NumericContext(
                label=configuration.key,
                defects=(("uninitialised-memory", 0.5),),
            )

        broken_runner = ValidationRunner(numeric_context_factory=broken_context)
        run = broken_runner.run(tiny_hermes, sl5_64_gcc44)
        if run.all_passed:
            pytest.skip("defect did not trigger a failure in this tiny suite")
        report = FailureDiagnosisEngine().diagnose_run(run)
        categories = report.by_category()
        assert "experiment_software" in categories

    def test_by_category_counts_sum_to_diagnoses(self, runner, tiny_zeus, sl6_64_gcc44):
        run = runner.run(tiny_zeus, sl6_64_gcc44)
        report = FailureDiagnosisEngine().diagnose_run(run)
        assert sum(report.by_category().values()) == len(report.diagnoses)

    def test_for_party_partition(self, runner, tiny_zeus, sl6_64_gcc44):
        run = runner.run(tiny_zeus, sl6_64_gcc44)
        report = FailureDiagnosisEngine().diagnose_run(run)
        it_count = len(report.for_party("host IT department"))
        experiment_count = len(report.for_party("experiment"))
        assert it_count + experiment_count == len(report.diagnoses)
