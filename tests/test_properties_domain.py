"""Property-based tests on domain invariants (inventories, builds, schedules)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buildsys.builder import PackageBuilder
from repro.buildsys.graph import DependencyGraph
from repro.core.comparison import OutputComparator
from repro.core.testspec import OutputKind, TestOutput
from repro.environment.compatibility import CompatibilityChecker, SoftwareRequirements
from repro.environment.configuration import sp_system_configurations
from repro.environment.evolution import EnvironmentTimeline
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.hepdata.generator import GeneratorSettings, MonteCarloGenerator
from repro.preservation.outreach import SIMPLIFIED_SCHEMA, SimplifiedDataset
from repro.virtualization.cron import CronExpression


CONFIGURATIONS = sp_system_configurations()


# -- synthetic inventories ----------------------------------------------------------
@given(
    st.integers(min_value=8, max_value=40),
    st.sampled_from(["ALPHA", "BETA", "GAMMA"]),
)
@settings(max_examples=25, deadline=None)
def test_inventories_are_valid_dags_of_requested_size(n_packages, experiment):
    inventory = build_inventory(experiment, n_packages)
    assert len(inventory) == n_packages
    assert inventory.validate_dependencies() == []
    graph = DependencyGraph(inventory)
    order = graph.build_order()
    assert len(order) == n_packages
    positions = {name: index for index, name in enumerate(order)}
    for package in inventory.all():
        for dependency in package.dependencies:
            assert positions[dependency] < positions[package.name]


@given(
    st.integers(min_value=8, max_value=30),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_quirk_free_inventories_build_everywhere(n_packages, n_unported, n_legacy_root):
    inventory = build_inventory(
        "PROP",
        n_packages,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=n_unported,
            n_legacy_root_api=n_legacy_root,
            n_strictness_limited=0,
        ),
    )
    builder = PackageBuilder()
    # On the established SL5/64 platform everything always builds, regardless
    # of the quirks aimed at newer platforms.
    sl5 = CONFIGURATIONS[3]
    campaign = builder.build_inventory(inventory, sl5)
    assert campaign.all_usable
    # On SL6 exactly the un-ported packages fail (legacy ROOT still works there).
    sl6 = CONFIGURATIONS[4]
    campaign_sl6 = builder.build_inventory(inventory, sl6)
    assert len(campaign_sl6.failed_packages()) == min(n_unported, _leaf_budget(inventory))


def _leaf_budget(inventory):
    """Number of leaf-layer packages available to carry quirks."""
    from repro.buildsys.package import PackageCategory

    return len(
        inventory.by_category(PackageCategory.ANALYSIS)
        + inventory.by_category(PackageCategory.MONITORING)
        + inventory.by_category(PackageCategory.UTILITIES)
    )


# -- builds are deterministic --------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=6),
    st.sampled_from([configuration.key for configuration in CONFIGURATIONS]),
)
@settings(max_examples=20, deadline=None)
def test_builds_are_deterministic(max_strictness, configuration_key):
    configuration = next(
        configuration for configuration in CONFIGURATIONS
        if configuration.key == configuration_key
    )
    inventory = build_inventory("DETEXP", 10)
    builder = PackageBuilder()
    first = builder.build_inventory(inventory, configuration)
    second = builder.build_inventory(inventory, configuration)
    assert {name: result.status for name, result in first.results.items()} == {
        name: result.status for name, result in second.results.items()
    }


# -- compatibility checking is monotone in the requirements ---------------------------
@given(
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_stricter_requirements_never_reduce_issues(strictness_a, strictness_b):
    lenient_limit = max(strictness_a, strictness_b)
    strict_limit = min(strictness_a, strictness_b)
    checker = CompatibilityChecker()
    for configuration in CONFIGURATIONS:
        lenient_issues = checker.errors(
            SoftwareRequirements(max_strictness=lenient_limit), configuration
        )
        strict_issues = checker.errors(
            SoftwareRequirements(max_strictness=strict_limit), configuration
        )
        assert len(strict_issues) >= len(lenient_issues)


# -- the generator respects its configuration ------------------------------------------
@given(
    st.integers(min_value=1, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_generator_event_count_and_determinism(n_events, seed):
    generator = MonteCarloGenerator(GeneratorSettings())
    first = generator.generate(n_events, seed=seed)
    second = generator.generate(n_events, seed=seed)
    assert len(first) == n_events
    assert [event.q_squared for event in first] == [event.q_squared for event in second]
    assert all(event.scattered_lepton is not None for event in first)


# -- the recommended configuration always moves forward in time -------------------------
@given(st.integers(min_value=2008, max_value=2023))
@settings(max_examples=30, deadline=None)
def test_recommended_configuration_never_regresses(year):
    timeline = EnvironmentTimeline()
    earlier = timeline.recommended_configuration(year)
    later = timeline.recommended_configuration(year + 1)
    assert later.operating_system.abi_level >= earlier.operating_system.abi_level
    assert later.compiler.strictness >= earlier.compiler.strictness


# -- simplified datasets always validate after construction from rows --------------------
simplified_row = st.fixed_dictionaries(
    {name: st.floats(min_value=0.0, max_value=1e4, allow_nan=False)
     for name, _unit, _description in SIMPLIFIED_SCHEMA}
)


@given(st.lists(simplified_row, max_size=30))
@settings(max_examples=30, deadline=None)
def test_simplified_dataset_schema_round_trip(rows):
    dataset = SimplifiedDataset(
        experiment="H1", name="prop", schema=SIMPLIFIED_SCHEMA, rows=list(rows)
    )
    assert dataset.validate() == []
    rebuilt = SimplifiedDataset.from_document(dataset.to_document())
    assert len(rebuilt) == len(dataset)
    assert rebuilt.validate() == []


# -- cron expressions: parsing is stable and matching respects fields ---------------------
@given(
    st.integers(min_value=0, max_value=59),
    st.integers(min_value=0, max_value=23),
    st.integers(min_value=0, max_value=6),
)
@settings(max_examples=30, deadline=None)
def test_cron_specific_fields_only_match_those_values(minute, hour, weekday):
    expression = CronExpression.parse(f"{minute} {hour} * * {weekday}")
    fire = expression.next_fire(1356998400)
    assert expression.matches(fire)
    # One minute later can only match if the expression is minute-insensitive,
    # which a pinned minute never is.
    assert not expression.matches(fire + 60)


# -- output comparison symmetry ------------------------------------------------------------
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1, max_size=3,
    ),
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1, max_size=3,
    ),
)
@settings(max_examples=50, deadline=None)
def test_numeric_comparison_is_symmetric_in_verdict(reference_numbers, candidate_numbers):
    comparator = OutputComparator()
    reference = TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers=reference_numbers)
    candidate = TestOutput(kind=OutputKind.NUMBERS, passed=True, numbers=candidate_numbers)
    forward = comparator.compare("t", reference, candidate)
    backward = comparator.compare("t", candidate, reference)
    assert forward.compatible == backward.compatible
