"""Tests for virtual machine images, the hypervisor, clients and provisioning."""

import pytest

from repro._common import ConfigurationError
from repro.storage.common_storage import CommonStorage
from repro.virtualization.client import (
    BatchWorkerClient,
    ClientKind,
    ClientMachine,
    GridWorkerClient,
    VirtualMachineClient,
)
from repro.virtualization.hypervisor import Hypervisor
from repro.virtualization.image import ImageState, VirtualMachineImage, image_name_for
from repro.virtualization.provisioning import ProvisioningService


class TestVirtualMachineImage:
    def test_image_name_convention(self, sl6_64_gcc44):
        assert image_name_for(sl6_64_gcc44) == "vm-SL6_64bit_gcc4.4"

    def test_lifecycle(self, sl6_64_gcc44):
        image = VirtualMachineImage("img", sl6_64_gcc44, built_at=0)
        assert image.is_usable
        image.deprecate("superseded")
        assert image.state is ImageState.DEPRECATED
        assert not image.is_usable

    def test_conserved_image_cannot_be_deprecated(self, sl6_64_gcc44):
        image = VirtualMachineImage("img", sl6_64_gcc44, built_at=0)
        image.conserve("final H1 system")
        assert image.state is ImageState.CONSERVED
        assert image.is_usable
        with pytest.raises(ConfigurationError):
            image.deprecate("too late")

    def test_invalid_disk_size(self, sl6_64_gcc44):
        with pytest.raises(ConfigurationError):
            VirtualMachineImage("img", sl6_64_gcc44, built_at=0, disk_gb=0.0)

    def test_describe_serialisable(self, sl6_64_gcc44):
        import json

        image = VirtualMachineImage("img", sl6_64_gcc44, built_at=10)
        json.dumps(image.describe())


class TestHypervisor:
    def test_build_and_lookup_images(self, sl5_64_gcc44, sl6_64_gcc44):
        hypervisor = Hypervisor()
        hypervisor.build_image(sl5_64_gcc44)
        hypervisor.build_image(sl6_64_gcc44)
        assert len(hypervisor.images()) == 2
        assert hypervisor.image_for_configuration(sl6_64_gcc44) is not None
        assert hypervisor.total_image_disk_gb() == pytest.approx(40.0)

    def test_duplicate_image_rejected(self, sl6_64_gcc44):
        hypervisor = Hypervisor()
        hypervisor.build_image(sl6_64_gcc44)
        with pytest.raises(ConfigurationError):
            hypervisor.build_image(sl6_64_gcc44)

    def test_unknown_image_raises(self):
        with pytest.raises(ConfigurationError):
            Hypervisor().image("ghost")

    def test_start_and_stop_clients(self, sl6_64_gcc44):
        hypervisor = Hypervisor(storage=CommonStorage())
        image = hypervisor.build_image(sl6_64_gcc44)
        client = hypervisor.start_client(image.name)
        assert client.kind is ClientKind.VIRTUAL_MACHINE
        assert client.meets_requirements()
        assert len(hypervisor.running_clients()) == 1
        hypervisor.stop_client(client.name)
        assert hypervisor.running_clients() == []
        with pytest.raises(ConfigurationError):
            hypervisor.stop_client(client.name)

    def test_capacity_limit(self, sl6_64_gcc44):
        hypervisor = Hypervisor(max_running_clients=1)
        image = hypervisor.build_image(sl6_64_gcc44)
        hypervisor.start_client(image.name, "client-a")
        assert hypervisor.capacity_remaining() == 0
        with pytest.raises(ConfigurationError):
            hypervisor.start_client(image.name, "client-b")

    def test_deprecated_image_cannot_boot(self, sl6_64_gcc44):
        hypervisor = Hypervisor()
        image = hypervisor.build_image(sl6_64_gcc44)
        hypervisor.deprecate_image(image.name, "old")
        with pytest.raises(ConfigurationError):
            hypervisor.start_client(image.name)

    def test_conserve_image(self, sl6_64_gcc44):
        hypervisor = Hypervisor(storage=CommonStorage())
        image = hypervisor.build_image(sl6_64_gcc44)
        hypervisor.conserve_image(image.name, "end of programme")
        assert hypervisor.conserved_images() == [image]


class TestClients:
    def test_client_requirements(self, sl6_64_gcc44):
        client = ClientMachine(
            "node-1", ClientKind.BATCH_WORKER, sl6_64_gcc44, storage=None,
        )
        assert not client.meets_requirements()
        assert "common sp-system storage" in client.missing_requirements()[0]
        client.attach_storage(CommonStorage())
        assert client.meets_requirements()

    def test_client_without_cron(self, sl6_64_gcc44):
        client = ClientMachine(
            "node-2", ClientKind.GRID_WORKER, sl6_64_gcc44,
            storage=CommonStorage(), cron_capable=False,
        )
        assert not client.meets_requirements()
        assert client.cron is None

    def test_batch_and_grid_profiles_differ(self, sl6_64_gcc44):
        storage = CommonStorage()
        batch = BatchWorkerClient("batch-1", sl6_64_gcc44, storage=storage)
        grid = GridWorkerClient("grid-1", sl6_64_gcc44, storage=storage)
        assert grid.resources.profile.cpu_cores > batch.resources.profile.cpu_cores

    def test_vm_client_requires_usable_image(self, sl6_64_gcc44):
        image = VirtualMachineImage("img", sl6_64_gcc44, built_at=0)
        image.deprecate("old")
        with pytest.raises(ConfigurationError):
            VirtualMachineClient("vm-1", image)

    def test_describe(self, sl6_64_gcc44):
        client = BatchWorkerClient("batch-1", sl6_64_gcc44, storage=CommonStorage())
        description = client.describe()
        assert description["kind"] == "batch-worker"
        assert description["has_storage_access"] is True


class TestProvisioningService:
    def test_standard_images_built_once(self):
        service = ProvisioningService()
        report = service.provision_standard_images()
        assert report.n_images == 5
        # Provisioning again is a no-op.
        assert service.provision_standard_images().n_images == 0

    def test_validation_clients_started_per_image(self):
        service = ProvisioningService()
        service.provision_standard_images()
        report = service.start_validation_clients()
        assert report.n_clients == 5
        assert service.start_validation_clients().n_clients == 0

    def test_attach_external_clients(self, sl6_64_gcc44):
        service = ProvisioningService()
        batch = service.attach_batch_worker("batch-node-7", sl6_64_gcc44)
        grid = service.attach_grid_worker("grid-node-3", sl6_64_gcc44)
        assert batch.meets_requirements()
        assert {client.name for client in service.external_clients()} == {
            "batch-node-7", "grid-node-3",
        }
        with pytest.raises(ConfigurationError):
            service.attach_batch_worker("batch-node-7", sl6_64_gcc44)

    def test_clients_for_configuration(self, sl6_64_gcc44):
        service = ProvisioningService()
        service.provision_standard_images()
        service.start_validation_clients()
        service.attach_batch_worker("batch-node-1", sl6_64_gcc44)
        matching = service.clients_for_configuration(sl6_64_gcc44.key)
        assert len(matching) == 2
