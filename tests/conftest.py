"""Shared fixtures for the repro test suite.

The fixtures provide small, fast instances of the main building blocks: the
standard environment configurations, tiny experiment definitions (scaled-down
H1/ZEUS/HERMES) and a ready-to-use sp-system.  Everything is deterministic,
so the tests never need to seed anything themselves.
"""

from __future__ import annotations

import pytest

from repro.core.spsystem import SPSystem
from repro.environment.configuration import (
    EnvironmentFactory,
    next_generation_configuration,
    sp_system_configurations,
)
from repro.experiments.h1 import build_h1_experiment
from repro.experiments.hermes import build_hermes_experiment
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.experiments.zeus import build_zeus_experiment


@pytest.fixture(scope="session")
def environment_factory():
    """A shared factory over the default catalogues."""
    return EnvironmentFactory()


@pytest.fixture(scope="session")
def standard_configurations():
    """The five standard sp-system configurations."""
    return sp_system_configurations()


@pytest.fixture(scope="session")
def sl5_64_gcc44(standard_configurations):
    """The SL5/64bit gcc4.4 configuration (the 'established' platform)."""
    return next(
        configuration for configuration in standard_configurations
        if configuration.key == "SL5_64bit_gcc4.4"
    )


@pytest.fixture(scope="session")
def sl6_64_gcc44(standard_configurations):
    """The SL6/64bit gcc4.4 configuration (the migration target)."""
    return next(
        configuration for configuration in standard_configurations
        if configuration.key == "SL6_64bit_gcc4.4"
    )


@pytest.fixture(scope="session")
def sl7_root6():
    """The SL7 + ROOT 6 'next challenge' configuration."""
    return next_generation_configuration()


@pytest.fixture(scope="session")
def tiny_h1():
    """A small but structurally complete H1 definition (fast to run)."""
    return build_h1_experiment(scale=0.15)


@pytest.fixture(scope="session")
def tiny_zeus():
    """A small ZEUS definition."""
    return build_zeus_experiment(scale=0.2)


@pytest.fixture(scope="session")
def tiny_hermes():
    """A small HERMES definition."""
    return build_hermes_experiment(scale=0.3)


@pytest.fixture(scope="session")
def small_inventory():
    """A 20-package inventory without any migration quirks."""
    return build_inventory(
        "TESTEXP",
        20,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=0,
            n_legacy_root_api=0,
            n_strictness_limited=0,
            n_32bit_only=0,
        ),
    )


@pytest.fixture()
def sp_system():
    """A freshly provisioned sp-system with the five standard images."""
    system = SPSystem()
    system.provision_standard_images()
    return system
