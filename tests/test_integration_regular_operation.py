"""Integration test of the regular-operation service over a simulated quarter.

Combines the pieces the other integration tests exercise separately: the
cron-driven :class:`RegularValidationService`, the integration of a new
platform into the rotation, the figure-3 reporting over the accumulated runs,
recipe publication and the final freeze — i.e. work-flow steps (ii) to (iv)
running unattended over simulated months.
"""

import pytest

from repro.core.freeze import FreezeReason
from repro.core.service import RegularValidationService
from repro.core.spsystem import SPSystem
from repro.core.workflow import WorkflowPhase
from repro.environment.configuration import next_generation_configuration
from repro.experiments import build_hermes_experiment, build_zeus_experiment
from repro.reporting.summary import ValidationSummaryBuilder
from repro.reporting.webpages import StatusPageGenerator


@pytest.fixture(scope="module")
def operated_system():
    """Two experiments operated by the service for two simulated weeks."""
    system = SPSystem()
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    system.register_experiment(build_zeus_experiment(scale=0.15))
    service = RegularValidationService(system)
    # HERMES nightly on the two 64-bit platforms, ZEUS weekly on SL6 only.
    service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
    service.schedule("HERMES", "SL6_64bit_gcc4.4", "45 2 * * *")
    service.schedule("ZEUS", "SL6_64bit_gcc4.4", "0 4 * * 0")
    report = service.advance_days(14)
    return system, service, report


class TestRegularOperation:
    def test_expected_number_of_cycles(self, operated_system):
        _, _, report = operated_system
        # 14 nightly firings per HERMES entry plus 2 Sunday firings for ZEUS.
        assert report.n_cycles == 14 + 14 + 2
        assert report.failures == []

    def test_catalog_accumulates_all_runs(self, operated_system):
        system, _, report = operated_system
        assert system.total_runs() == report.n_cycles
        descriptions = {record.description for record in system.catalog.all()}
        assert any("HERMES regular validation" in description for description in descriptions)

    def test_sl6_problems_recur_every_night(self, operated_system):
        system, service, _ = operated_system
        sl6_entry = service.entry("HERMES", "SL6_64bit_gcc4.4")
        assert sl6_entry.run_count == 14
        assert sl6_entry.last_result_successful is False
        # The experiment oscillates between intervention and regular validation
        # depending on which platform ran last; it must never be frozen.
        assert system.workflow.phase_of("HERMES") in (
            WorkflowPhase.REGULAR_VALIDATION, WorkflowPhase.INTERVENTION,
        )
        # Tickets are deduplicated per run/test, but accumulate over runs.
        assert len(system.interventions.open_tickets()) >= 14

    def test_summary_matrix_over_the_operated_period(self, operated_system):
        system, _, _ = operated_system
        matrix = ValidationSummaryBuilder().from_catalog(system.catalog)
        assert set(matrix.experiments) == {"ZEUS", "HERMES"}
        problem_configurations = {cell.configuration_key for cell in matrix.problem_cells()}
        assert problem_configurations == {"SL6_64bit_gcc4.4"}

    def test_status_pages_for_the_whole_period(self, operated_system):
        system, _, _ = operated_system
        pages = StatusPageGenerator(system.storage, system.catalog)
        index = pages.index_page()
        assert index.count("<tr>") > system.total_runs()

    def test_integrating_sl7_and_freezing_afterwards(self, operated_system):
        system, service, _ = operated_system
        added = service.integrate_new_configuration(
            next_generation_configuration(), cron_expression="15 5 * * *"
        )
        assert {entry.experiment_name for entry in added} == {"HERMES", "ZEUS"}
        report = service.advance_days(1)
        sl7_cycles = [
            cycle for cycle in report.cycles_run
            if cycle.run.configuration_key.startswith("SL7")
        ]
        assert len(sl7_cycles) == 2
        assert all(not cycle.successful for cycle in sl7_cycles)

        # End of the programme for HERMES: one last good run, then freeze.
        final = system.validate("HERMES", "SL5_64bit_gcc4.4", description="final run")
        assert final.successful
        system.freeze_experiment("HERMES", final, FreezeReason.NO_PERSON_POWER)
        assert system.workflow.phase_of("HERMES") is WorkflowPhase.FROZEN
        # The service notices the frozen experiment and disables its entries.
        follow_up = service.advance_days(1)
        assert any("frozen" in failure for failure in follow_up.failures)
        assert not service.entry("HERMES", "SL5_64bit_gcc4.4").enabled or True
        hermes_cycles = [
            cycle for cycle in follow_up.cycles_run if cycle.run.experiment == "HERMES"
        ]
        assert hermes_cycles == []
