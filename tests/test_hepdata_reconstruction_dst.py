"""Tests for event reconstruction and the DST / micro-DST production."""

import numpy as np
import pytest

from repro._common import ValidationError
from repro.hepdata.dst import (
    DSTFile,
    DSTProducer,
    MICRO_DST_COLUMNS,
    MicroDST,
    MicroDSTProducer,
)
from repro.hepdata.generator import MonteCarloGenerator
from repro.hepdata.reconstruction import EventReconstruction
from repro.hepdata.simulation import DetectorSimulation


@pytest.fixture(scope="module")
def reconstructed_events():
    record = MonteCarloGenerator().generate(60, seed=11)
    simulated = DetectorSimulation().simulate(record, seed=12)
    return EventReconstruction().reconstruct(simulated)


class TestReconstruction:
    def test_one_output_per_event(self, reconstructed_events):
        assert len(reconstructed_events) == 60

    def test_invalid_jet_parameters(self):
        with pytest.raises(ValidationError):
            EventReconstruction(jet_min_pt=0.0)
        with pytest.raises(ValidationError):
            EventReconstruction(jet_cone_radius=-1.0)

    def test_electron_method_close_to_truth(self):
        record = MonteCarloGenerator().generate(80, seed=13)
        reconstructed = EventReconstruction().reconstruct(record)
        pulls = []
        for truth, reco in zip(record, reconstructed):
            if reco.kinematics.has_scattered_lepton and truth.q_squared > 0:
                pulls.append(reco.kinematics.q_squared_electron / truth.q_squared)
        assert np.median(pulls) == pytest.approx(1.0, rel=0.2)

    def test_jacquet_blondel_roughly_consistent(self, reconstructed_events):
        with_lepton = [
            event for event in reconstructed_events
            if event.kinematics.has_scattered_lepton
        ]
        consistent = [event for event in with_lepton if event.kinematics.consistent()]
        assert len(consistent) >= 0.3 * len(with_lepton)

    def test_jets_have_minimum_pt(self, reconstructed_events):
        for event in reconstructed_events:
            for jet in event.jets:
                assert jet.pt >= 4.0
                assert jet.n_constituents >= 1

    def test_consistency_requires_lepton(self):
        from repro.hepdata.reconstruction import ReconstructedKinematics

        kinematics = ReconstructedKinematics(
            q_squared_electron=10.0, bjorken_x_electron=0.01,
            inelasticity_electron=0.3, q_squared_jb=10.0, inelasticity_jb=0.3,
            has_scattered_lepton=False,
        )
        assert not kinematics.consistent()


class TestDSTProduction:
    def test_dst_has_one_record_per_event(self, reconstructed_events):
        dst = DSTProducer().produce(reconstructed_events)
        assert len(dst) == len(reconstructed_events)

    def test_dst_summary_fields(self, reconstructed_events):
        summary = DSTProducer().produce(reconstructed_events).summary()
        assert summary["n_records"] == len(reconstructed_events)
        assert summary["mean_q2"] > 0

    def test_empty_dst_summary(self):
        summary = DSTFile().summary()
        assert summary["n_records"] == 0.0

    def test_dst_serialisation_round_trip(self, reconstructed_events):
        dst = DSTProducer(production_tag="test-tag").produce(reconstructed_events)
        payload = dst.to_dict()
        assert payload["production_tag"] == "test-tag"
        assert len(payload["records"]) == len(dst)


class TestMicroDST:
    def test_columns_match_specification(self, reconstructed_events):
        micro = MicroDSTProducer().produce(DSTProducer().produce(reconstructed_events))
        assert set(micro.columns) == set(MICRO_DST_COLUMNS)
        assert len(micro) == len(reconstructed_events)

    def test_unequal_columns_rejected(self):
        with pytest.raises(ValidationError):
            MicroDST({"a": np.array([1.0, 2.0]), "b": np.array([1.0])})

    def test_unknown_column_raises(self, reconstructed_events):
        micro = MicroDSTProducer().produce(DSTProducer().produce(reconstructed_events))
        with pytest.raises(ValidationError):
            micro.column("does_not_exist")

    def test_selection_mask(self, reconstructed_events):
        micro = MicroDSTProducer().produce(DSTProducer().produce(reconstructed_events))
        mask = micro.column("q2") > np.median(micro.column("q2"))
        selected = micro.select(mask)
        assert len(selected) < len(micro)
        assert (selected.column("q2") > np.median(micro.column("q2"))).all()

    def test_selection_wrong_length_rejected(self, reconstructed_events):
        micro = MicroDSTProducer().produce(DSTProducer().produce(reconstructed_events))
        with pytest.raises(ValidationError):
            micro.select(np.array([True, False]))

    def test_serialisation_round_trip(self, reconstructed_events):
        micro = MicroDSTProducer().produce(DSTProducer().produce(reconstructed_events))
        rebuilt = MicroDST.from_dict(micro.to_dict())
        assert len(rebuilt) == len(micro)
        assert np.allclose(rebuilt.column("q2"), micro.column("q2"))
