"""Backend-level regression tests: slot reporting and the failure contract.

Two bugs are pinned here.  First, ``PoolSchedule.slots_per_worker`` used to
report the worker profile's raw ``cpu_cores`` even when memory or disk was
the binding constraint — inflating ``total_slots`` and
``available_slot_seconds`` and so deflating ``utilisation`` for any
memory-bound profile.  Every backend must now report the *effective* slot
count, ``min(cpu, memory, disk)`` in task units.  Second, a failing payload
used to abort the campaign with an anonymous :class:`SchedulingError`; the
wall-clock backends must name the failing task and cancel still-queued
work.
"""

import pytest

from repro._common import SchedulingError
from repro.buildsys.builder import BuildTask, PackageBuilder
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.scheduler.backends import (
    EXECUTION_BACKENDS,
    ExecutionRequest,
    ProcessPoolBackend,
    ShardedBackend,
    ThreadPoolBackend,
    execution_backend,
)
from repro.scheduler.campaign import CampaignScheduler
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.pool import (
    SimulatedWorkerPool,
    effective_slots_per_worker,
)
from repro.virtualization.resources import VALIDATION_VM_PROFILE, ResourceProfile

KEYS = ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"]

#: Four cores but only 2 GB of memory: with one core and 1 GB per task,
#: memory binds the worker to two concurrent tasks, not four.
MEMORY_BOUND_PROFILE = ResourceProfile(cpu_cores=4, memory_gb=2.0, disk_gb=100.0)


def _fresh_system(seed=20131029):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0, seed=seed)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


def _tiny_dag():
    """One cell: a build task feeding a test batch."""
    dag = CampaignDAG()
    dag.add(
        CampaignTask(
            task_id="c0000:build:alpha",
            kind=TaskKind.BUILD,
            cell_index=0,
            experiment="HERMES",
            configuration_key=KEYS[0],
            duration_seconds=10.0,
        )
    )
    dag.add(
        CampaignTask(
            task_id="c0000:standalone-batch:000",
            kind=TaskKind.TEST_BATCH,
            cell_index=0,
            experiment="HERMES",
            configuration_key=KEYS[0],
            duration_seconds=5.0,
            dependencies=("c0000:build:alpha",),
        )
    )
    return dag


class TestEffectiveSlotArithmetic:
    def test_cpu_bound_profile(self):
        # The standard VM: 2 cores, 4 GB, 100 GB -> the cores bind.
        assert effective_slots_per_worker(VALIDATION_VM_PROFILE) == 2

    def test_memory_bound_profile(self):
        assert effective_slots_per_worker(MEMORY_BOUND_PROFILE) == 2

    def test_disk_bound_profile(self):
        # 10 GB of disk holds two 5 GB task sandboxes, regardless of cores.
        profile = ResourceProfile(cpu_cores=8, memory_gb=16.0, disk_gb=10.0)
        assert effective_slots_per_worker(profile) == 2


class TestSlotReportingRegression:
    """slots_per_worker must be the effective count, not raw cpu_cores."""

    def _memory_bound_campaign(self, backend):
        system = _fresh_system()
        scheduler = CampaignScheduler(
            system,
            workers=2,
            worker_profile=MEMORY_BOUND_PROFILE,
            backend=backend,
        )
        return scheduler.run(["HERMES"], KEYS)

    @pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
    def test_memory_bound_profile_reports_effective_slots(self, backend):
        schedule = self._memory_bound_campaign(backend).schedule
        # min(4 cores, 2 GB / 1 GB, 100 GB / 5 GB) = 2, not cpu_cores = 4.
        assert schedule.slots_per_worker == 2
        assert schedule.total_slots == 4
        assert schedule.backend == backend

    @pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
    def test_memory_bound_utilisation_is_a_fraction(self, backend):
        """The inflated denominator used to push utilisation far below 1."""
        schedule = self._memory_bound_campaign(backend).schedule
        assert 0.0 < schedule.utilisation <= 1.0
        assert schedule.available_slot_seconds == pytest.approx(
            schedule.makespan_seconds * schedule.total_slots
        )

    def test_simulated_pool_reports_effective_slots_directly(self):
        pool = SimulatedWorkerPool(2, profile=MEMORY_BOUND_PROFILE)
        schedule = pool.execute(_tiny_dag())
        assert schedule.slots_per_worker == 2
        assert schedule.total_slots == 4

    def test_sharded_backend_reports_one_slot_per_shard(self):
        system = _fresh_system()
        scheduler = CampaignScheduler(
            system, workers=2, backend="sharded", shards=2
        )
        schedule = scheduler.run(["HERMES"], KEYS).schedule
        assert schedule.n_workers == 2
        assert schedule.slots_per_worker == 1
        assert schedule.shards == 2

    def test_oversubscribed_spec_slots_are_capped_by_memory(self):
        """A spec asking for 8 slots gets the memory-capped effective count.

        ``CampaignSpec.slots_per_worker`` only raises the profile's core
        count; the 4 GB of memory still caps the worker at 4 tasks, and the
        schedule must say so instead of echoing the requested 8.
        """
        from repro.scheduler.spec import CampaignSpec

        system = _fresh_system()
        campaign = system.submit(
            CampaignSpec(
                configuration_keys=tuple(KEYS),
                workers=2,
                slots_per_worker=8,
                persist_spec=False,
            )
        ).result()
        assert campaign.schedule.slots_per_worker == 4


class TestFailureContract:
    """A failing payload names its task and cancels still-queued work."""

    def _failing_request(self):
        def boom():
            raise ValueError("injected payload failure")

        return ExecutionRequest(
            dag=_tiny_dag(),
            workers=1,
            payloads={"c0000:build:alpha": boom},
        )

    @pytest.mark.parametrize("backend_name", ["threads", "processes"])
    def test_pool_backend_failure_names_the_task(self, backend_name):
        backend = execution_backend(backend_name)
        with pytest.raises(SchedulingError) as error:
            backend.execute(self._failing_request())
        message = str(error.value)
        assert "c0000:build:alpha" in message
        assert backend_name in message
        assert "still-queued tasks were cancelled" in message
        assert "injected payload failure" in message

    def test_process_backend_names_task_of_diverging_child_build(
        self, sp_system, tiny_hermes
    ):
        """A child-process digest mismatch surfaces with the task's name."""
        sp_system.register_experiment(tiny_hermes)
        package = tiny_hermes.inventory.all()[0]
        configuration = sp_system.configuration(KEYS[0])
        bad = BuildTask(
            package=package,
            configuration=configuration,
            builder=PackageBuilder(),
            expected_digest="not-the-digest",
        )
        request = ExecutionRequest(
            dag=_tiny_dag(),
            workers=1,
            payloads={"c0000:build:alpha": bad},
        )
        with pytest.raises(SchedulingError) as error:
            ProcessPoolBackend().execute(request)
        message = str(error.value)
        assert "c0000:build:alpha" in message
        assert "BuildError" in message

    def test_sharded_backend_names_task_of_failing_shard(
        self, sp_system, tiny_hermes
    ):
        sp_system.register_experiment(tiny_hermes)
        package = tiny_hermes.inventory.all()[0]
        configuration = sp_system.configuration(KEYS[0])
        bad = BuildTask(
            package=package,
            configuration=configuration,
            builder=PackageBuilder(),
            expected_digest="not-the-digest",
        )
        request = ExecutionRequest(
            dag=_tiny_dag(),
            workers=1,
            shards=1,
            payloads={"c0000:build:alpha": bad},
        )
        with pytest.raises(SchedulingError) as error:
            ShardedBackend().execute(request)
        message = str(error.value)
        assert "c0000:build:alpha" in message
        assert "shard" in message

    def test_sharded_backend_failing_verification_names_the_task(self):
        def boom():
            raise ValueError("injected replay failure")

        request = ExecutionRequest(
            dag=_tiny_dag(),
            workers=1,
            shards=1,
            payloads={"c0000:standalone-batch:000": boom},
        )
        with pytest.raises(SchedulingError) as error:
            ShardedBackend().execute(request)
        message = str(error.value)
        assert "c0000:standalone-batch:000" in message
        assert "injected replay failure" in message

    @pytest.mark.parametrize(
        "backend_name", ["threads", "processes", "sharded"]
    )
    def test_wall_clock_backends_reject_failure_injection(self, backend_name):
        from repro.scheduler.pool import WorkerFailure

        request = ExecutionRequest(
            dag=_tiny_dag(),
            workers=1,
            failures=(WorkerFailure(worker_index=0, at_seconds=1.0),),
        )
        with pytest.raises(SchedulingError, match="simulated backend"):
            execution_backend(backend_name).execute(request)

    def test_registry_knows_all_four_backends(self):
        assert set(EXECUTION_BACKENDS) == {
            "simulated",
            "threads",
            "processes",
            "sharded",
        }
        assert isinstance(execution_backend("threads"), ThreadPoolBackend)
        assert isinstance(execution_backend("processes"), ProcessPoolBackend)
        assert isinstance(execution_backend("sharded"), ShardedBackend)
