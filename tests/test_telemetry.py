"""Tests of the unified telemetry subsystem.

Covers the metrics registry (labelled series, snapshot round-trips, the
injectable monotonic clock), the span tracer (parent/child trees,
category inheritance, the comparable cell sequence, Chrome trace export),
the Prometheus text exporter, the bench-trend series with its regression
gate, the durable lifecycle event log, the heartbeat worker's error
reporting, the ``MetricsObserver`` bridge, the fingerprint memoisation
satellites, the telemetry status page and the new CLI commands.
"""

import json
import os
import threading

import pytest

from repro._common import ReproError, SchedulingError
from repro.cli import main as cli_main
from repro.scheduler.lifecycle import (
    EVENT_CELL_COMPLETED,
    EVENT_HEARTBEAT,
    EVENT_TENANT_THROTTLED,
    FileEventSink,
    LifecycleEvent,
    PluginRegistry,
    read_event_log,
)
from repro.storage.common_storage import CommonStorage
from repro.telemetry import (
    MetricsObserver,
    MetricsRegistry,
    NULL_TELEMETRY,
    SpanTracer,
    Telemetry,
    check_series,
    check_trends,
    prometheus_text,
    read_trend_series,
    record_trend,
)


class FakeClock:
    """A hand-stepped monotonic clock for deterministic durations."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestMetricsRegistry:
    def test_counters_gauges_and_labels(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("cells_total", outcome="passed")
        registry.increment("cells_total", outcome="passed")
        registry.increment("cells_total", amount=3, outcome="failed")
        registry.set_gauge("queue_depth", 7)
        assert registry.counter_value("cells_total", outcome="passed") == 2
        assert registry.counter_value("cells_total", outcome="failed") == 3
        assert registry.counter_value("cells_total", outcome="skipped") == 0
        assert registry.gauge_value("queue_depth") == 7.0
        assert registry.gauge_value("missing") is None

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("tasks", backend="threads", tenant="h1")
        registry.increment("tasks", tenant="h1", backend="threads")
        assert registry.counter_value("tasks", tenant="h1", backend="threads") == 2

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.declare_histogram("wait", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 5.0, 50.0):
            registry.observe("wait", value)
        series = registry.histogram("wait")
        assert series.counts == [1, 1, 1, 1]  # one overflow beyond 10.0
        assert series.count == 4
        assert series.minimum == 0.05
        assert series.maximum == 50.0
        assert series.mean == pytest.approx(55.55 / 4)

    def test_time_block_observes_the_injected_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        with registry.time_block("build_seconds", package="reco"):
            clock.advance(2.5)
        series = registry.histogram("build_seconds", package="reco")
        assert series.count == 1
        assert series.total == pytest.approx(2.5)

    def test_snapshot_round_trip_is_exact(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        registry.increment("cells_total", outcome="passed")
        registry.set_gauge("cache_bytes", 12345, backend="threads")
        registry.declare_histogram("wait", buckets=[0.5, 2.0])
        registry.observe("wait", 0.25, tenant="h1")
        registry.observe("wait", 3.0, tenant="h1")
        clock.advance(1.0)
        registry.increment("cells_total", outcome="passed")
        restored = MetricsRegistry.from_dict(registry.to_dict(), clock=FakeClock())
        assert restored.to_dict() == registry.to_dict()

    def test_summary_rows_render_every_kind(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("cells_total", outcome="passed")
        registry.set_gauge("queue_depth", 2)
        registry.observe("wait", 0.5)
        kinds = [row[0] for row in registry.summary_rows()]
        assert kinds == ["counter", "gauge", "histogram"]
        labels = [row[1] for row in registry.summary_rows()]
        assert "cells_total{outcome=passed}" in labels


class TestSpanTracer:
    def test_parent_child_tree_and_self_seconds(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer", category="cell"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(2.0)
            clock.advance(0.5)
        inner, outer = tracer.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        # An unadorned child inherits the parent's category.
        assert inner.category == "cell"
        assert outer.duration == pytest.approx(3.5)
        assert outer.child_seconds == pytest.approx(2.0)
        assert outer.self_seconds == pytest.approx(1.5)

    def test_sequence_filters_by_category_and_keeps_attributes(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("cell_validate", category="cell", experiment="H1"):
            pass
        with tracer.span("backend_dispatch", category="dispatch"):
            pass
        with tracer.span("cache_probe", category="cell", package="reco"):
            pass
        assert tracer.sequence(category="cell") == (
            ("cell_validate", (("experiment", "H1"),)),
            ("cache_probe", (("package", "reco"),)),
        )
        assert len(tracer.sequence()) == 3

    def test_phase_rows_aggregate_by_category_and_name(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        for _ in range(3):
            with tracer.span("probe", category="cell"):
                clock.advance(1.0)
        with tracer.span("dispatch", category="dispatch"):
            clock.advance(5.0)
        rows = tracer.phase_rows()
        # Sorted by descending cumulative seconds.
        assert rows[0][:4] == ["dispatch", "dispatch", 1, 5.0]
        assert rows[1][:4] == ["cell", "probe", 3, 3.0]

    def test_chrome_trace_document_shape(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("build", category="cell", task="reco"):
            clock.advance(0.002)
        document = tracer.chrome_trace()
        assert document["displayTimeUnit"] == "ms"
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "build"
        assert event["cat"] == "cell"
        assert event["dur"] == pytest.approx(2000.0)
        assert event["args"] == {"task": "reco"}
        # The document must be JSON-serialisable as-is.
        json.dumps(document)

    def test_threads_get_separate_stacks(self):
        tracer = SpanTracer(clock=FakeClock())

        def worker():
            with tracer.span("child_thread_span", category="dispatch"):
                pass

        with tracer.span("main_span", category="cell"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        threaded = next(s for s in tracer.spans if s.name == "child_thread_span")
        # Parentage never crosses threads, and the category is its own.
        assert threaded.parent_id is None
        assert threaded.category == "dispatch"
        assert threaded.thread != 0

    def test_reset_drops_finished_spans(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("one"):
            pass
        tracer.reset()
        assert tracer.spans == []
        assert tracer.sequence() == ()


class TestNullTelemetry:
    def test_null_bundle_is_inert(self):
        assert NULL_TELEMETRY.enabled is False
        with NULL_TELEMETRY.tracer.span("anything", category="cell"):
            NULL_TELEMETRY.metrics.increment("counter")
            NULL_TELEMETRY.metrics.observe("histogram", 1.0)
        assert NULL_TELEMETRY.tracer.sequence() == ()
        assert NULL_TELEMETRY.metrics.counter_value("counter") == 0.0
        assert NULL_TELEMETRY.metrics.summary_rows() == []

    def test_system_default_is_the_null_bundle(self):
        from repro.core.spsystem import SPSystem

        system = SPSystem()
        assert system.telemetry.enabled is False


class TestPrometheusExport:
    def test_counters_gauges_and_histograms_render(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("cells_total", amount=5, outcome="passed")
        registry.set_gauge("cache_bytes", 1024.5)
        registry.declare_histogram("wait_seconds", buckets=[0.1, 1.0])
        registry.observe("wait_seconds", 0.05)
        registry.observe("wait_seconds", 0.5)
        registry.observe("wait_seconds", 5.0)
        text = prometheus_text(registry)
        assert '# TYPE repro_cells_total counter' in text
        assert 'repro_cells_total{outcome="passed"} 5' in text
        assert "# TYPE repro_cache_bytes gauge" in text
        assert "repro_cache_bytes 1024.5" in text
        assert "# TYPE repro_wait_seconds histogram" in text
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_wait_seconds_bucket{le="1"} 2' in text
        assert 'repro_wait_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_wait_seconds_sum 5.55" in text
        assert "repro_wait_seconds_count 3" in text
        assert text.endswith("\n")

    def test_type_line_appears_once_per_family(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("cells_total", outcome="passed")
        registry.increment("cells_total", outcome="failed")
        text = prometheus_text(registry)
        assert text.count("# TYPE repro_cells_total counter") == 1

    def test_names_and_labels_are_sanitised(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("weird-metric.name", **{"bad-label": 'va"lue'})
        text = prometheus_text(registry)
        assert "repro_weird_metric_name" in text
        assert 'bad_label="va\\"lue"' in text


class TestTrendSeries:
    def test_record_and_read_round_trip(self, tmp_path):
        directory = str(tmp_path)
        path = record_trend(
            "cells_per_second", 120.5, "higher_is_better",
            unit="cells/s", context={"backend": "simulated"},
            directory=directory,
        )
        record_trend(
            "cells_per_second", 118.0, "higher_is_better", directory=directory
        )
        points = read_trend_series(path)
        assert [point["value"] for point in points] == [120.5, 118.0]
        assert points[0]["context"] == {"backend": "simulated"}
        assert points[0]["unit"] == "cells/s"

    def test_unknown_direction_is_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            record_trend("x", 1.0, "sideways_is_better", directory=str(tmp_path))

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = record_trend(
            "journal_bytes", 100.0, "lower_is_better", directory=str(tmp_path)
        )
        record_trend("journal_bytes", 105.0, "lower_is_better", directory=str(tmp_path))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"metric": "journal_bytes", "val')  # killed mid-append
        points = read_trend_series(path)
        assert [point["value"] for point in points] == [100.0, 105.0]

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = os.path.join(str(tmp_path), "bad.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"metric": "x", "value": 1.0}\n')
        with pytest.raises(ReproError):
            read_trend_series(path)

    def test_check_series_flags_regressions_in_the_bad_direction(self):
        def points(direction, values):
            return [
                {"metric": "m", "direction": direction, "value": value}
                for value in values
            ]

        # Throughput halves: regression.
        verdict = check_series(
            points("higher_is_better", [100, 100, 100, 45]),
            threshold=0.25, window=10,
        )
        assert verdict.regressed
        # Throughput doubles: improvement, not a regression.
        verdict = check_series(
            points("higher_is_better", [100, 100, 100, 220]),
            threshold=0.25, window=10,
        )
        assert not verdict.regressed
        # Latency doubles: regression the other way round.
        verdict = check_series(
            points("lower_is_better", [10, 10, 10, 22]),
            threshold=0.25, window=10,
        )
        assert verdict.regressed

    def test_single_point_has_no_baseline_and_passes(self):
        verdict = check_series(
            [{"metric": "m", "direction": "lower_is_better", "value": 5.0}],
            threshold=0.25, window=10,
        )
        assert verdict.baseline is None
        assert not verdict.regressed
        assert verdict.to_row()[-1] == "ok"

    def test_check_trends_over_a_directory(self, tmp_path):
        directory = str(tmp_path)
        for value in (100.0, 101.0, 99.0, 40.0):
            record_trend("throughput", value, "higher_is_better", directory=directory)
        record_trend("bytes", 10.0, "lower_is_better", directory=directory)
        verdicts = check_trends(directory, threshold=0.25, window=10)
        assert set(verdicts) == {"throughput", "bytes"}
        assert verdicts["throughput"].regressed
        assert not verdicts["bytes"].regressed

    def test_missing_directory_yields_no_verdicts(self, tmp_path):
        assert check_trends(str(tmp_path / "nowhere")) == {}


class TestEventLogDurability:
    def _emit(self, registry, path, count):
        sink = FileEventSink(path)
        registry.add_observer(sink)
        for index in range(count):
            registry.emit(
                EVENT_CELL_COMPLETED,
                campaign_id="campaign-0001",
                payload={"cell": index, "passed": True},
            )
        return sink

    def test_sink_round_trips_through_the_reader(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        self._emit(PluginRegistry(), path, count=3)
        events = read_event_log(path)
        assert [event["payload"]["cell"] for event in events] == [0, 1, 2]
        assert all(event["event"] == EVENT_CELL_COMPLETED for event in events)

    def test_missing_log_reads_as_empty(self, tmp_path):
        assert read_event_log(str(tmp_path / "absent.jsonl")) == []

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        self._emit(PluginRegistry(), path, count=2)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 3, "event": "cell_co')  # torn tail
        events = read_event_log(path)
        assert len(events) == 2

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("garbage\n")
            handle.write('{"sequence": 2, "event": "cell_completed"}\n')
        with pytest.raises(SchedulingError):
            read_event_log(path)


class TestHeartbeatWorkerErrors:
    def test_last_error_keeps_the_exception_type(self):
        from repro.service.telemetry import HeartbeatWorker

        class PoisonedService:
            def beat(self, source):
                raise KeyError("cache_hit_rate")

        worker = HeartbeatWorker(
            PoisonedService(), interval=0.01, max_consecutive_failures=1
        )
        worker.start()
        worker._thread.join(timeout=5.0)
        status = worker.status()
        assert status["failures"] >= 1
        # A bare str(KeyError(...)) would be just "'cache_hit_rate'".
        assert status["last_error"] == "KeyError: 'cache_hit_rate'"
        worker.stop()


class TestMetricsObserver:
    def test_events_fold_into_counters_and_gauges(self):
        registry = MetricsRegistry(clock=FakeClock())
        bus = PluginRegistry()
        bus.add_observer(MetricsObserver(registry))
        bus.emit(EVENT_CELL_COMPLETED, payload={"passed": True})
        bus.emit(EVENT_CELL_COMPLETED, payload={"passed": False})
        bus.emit(EVENT_TENANT_THROTTLED, payload={"tenant": "zeus"})
        bus.emit(
            EVENT_HEARTBEAT,
            payload={"queue_depth": 4, "cache_hit_rate": 0.75, "source": "test"},
        )
        assert registry.counter_value("cells_total", outcome="passed") == 1
        assert registry.counter_value("cells_total", outcome="failed") == 1
        assert registry.counter_value("service_throttled_total", tenant="zeus") == 1
        assert registry.counter_value("service_heartbeats_total") == 1
        assert registry.counter_value(
            "lifecycle_events_total", event=EVENT_CELL_COMPLETED
        ) == 2
        assert registry.gauge_value("service_queue_depth") == 4.0
        assert registry.gauge_value("cache_hit_rate") == 0.75


class TestFingerprintMemoisation:
    def test_configuration_fingerprint_is_memoised_and_stable(self):
        from repro.environment.configuration import (
            _configuration_fingerprint,
            configuration_fingerprint,
            sp_system_configurations,
        )

        configuration = sp_system_configurations()[0]
        first = configuration_fingerprint(configuration)
        assert first == _configuration_fingerprint(configuration)
        assert configuration_fingerprint(configuration) == first
        # A value-equal copy hits the same memo entry.
        clone = sp_system_configurations()[0]
        assert configuration_fingerprint(clone) == first

    def test_package_identity_digest_is_memoised_and_stable(self):
        from repro.experiments import build_hermes_experiment
        from repro.environment.configuration import sp_system_configurations
        from repro.scheduler.cache import (
            _package_identity_digest,
            package_identity_digest,
        )

        experiment = build_hermes_experiment(scale=0.2)
        package = experiment.inventory.all()[0]
        configuration = sp_system_configurations()[0]
        first = package_identity_digest(package, configuration)
        assert first == _package_identity_digest(package, configuration)
        assert package_identity_digest(package, configuration) == first


class TestTelemetryPage:
    def test_page_renders_phases_and_metrics(self):
        from repro.reporting.webpages import StatusPageGenerator

        storage = CommonStorage()
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("cell_validate", category="cell"):
            pass
        registry = MetricsRegistry(clock=FakeClock())
        registry.increment("cells_total", outcome="passed")
        page = StatusPageGenerator(storage).telemetry_page(
            tracer.phase_rows(),
            metric_rows=registry.summary_rows(),
            span_count=len(tracer.spans),
        )
        assert "cell_validate" in page
        assert "cells_total{outcome=passed}" in page
        assert "1 recorded span(s)" in page
        assert storage.exists("reports", "telemetry")


class TestTelemetryCli:
    def test_metrics_command_prints_prometheus_text(self, capsys):
        exit_code = cli_main(["metrics", "--scale", "0.02"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "# TYPE repro_cells_total counter" in captured.out
        assert "repro_scheduler_cells_total" in captured.out

    def test_trace_command_writes_a_chrome_trace(self, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        exit_code = cli_main(["trace", "--out", out, "--scale", "0.02"])
        captured = capsys.readouterr()
        assert exit_code == 0
        with open(out, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["traceEvents"]
        names = {event["name"] for event in document["traceEvents"]}
        assert "cell_validate" in names
        assert "spec_validation" in names
        assert "cumulative s" in captured.out

    def test_bench_trends_check_gates_on_regressions(self, tmp_path, capsys):
        directory = str(tmp_path)
        for value in (100.0, 101.0, 99.0):
            record_trend(
                "cells_per_second", value, "higher_is_better",
                directory=directory,
            )
        assert cli_main(["bench-trends", "check", "--dir", directory]) == 0
        record_trend(
            "cells_per_second", 10.0, "higher_is_better", directory=directory
        )
        assert cli_main(["bench-trends", "check", "--dir", directory]) == 1
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out

    def test_bench_trends_check_passes_on_a_fresh_checkout(self, tmp_path, capsys):
        missing = str(tmp_path / "never-recorded")
        assert cli_main(["bench-trends", "check", "--dir", missing]) == 0
        assert "nothing to gate" in capsys.readouterr().out

    def test_campaign_telemetry_flag_prints_the_phase_table(self, capsys):
        exit_code = cli_main([
            "campaign", "--scale", "0.02", "--workers", "2", "--telemetry",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "cell_validate" in captured.out
        assert "cumulative s" in captured.out
