"""End-to-end integration tests of the full sp-system life cycle.

These tests exercise the scenario the paper describes: the HERA experiments
register with the validation framework, run their suites regularly on the
five standard configurations, migrate to SL6, diagnose and fix the problems
that surface, publish validated recipes and eventually conserve the last
working image.
"""

import pytest

from repro.core.freeze import FreezeReason
from repro.core.spsystem import SPSystem
from repro.core.workflow import WorkflowPhase
from repro.environment.configuration import next_generation_configuration
from repro.experiments import build_hera_experiments
from repro.reporting.export import catalog_to_rows, rows_to_csv
from repro.reporting.summary import ValidationSummaryBuilder
from repro.reporting.webpages import StatusPageGenerator


@pytest.fixture(scope="module")
def populated_system():
    """An sp-system with all three HERA experiments validated everywhere."""
    system = SPSystem()
    system.provision_standard_images()
    for experiment in build_hera_experiments(scale=0.15):
        system.register_experiment(experiment)
    results = system.validate_all_experiments()
    return system, results


class TestHeraCampaign:
    def test_all_experiments_ran_on_all_configurations(self, populated_system):
        system, results = populated_system
        assert set(results) == {"H1", "ZEUS", "HERMES"}
        for cycles in results.values():
            assert len(cycles) == 5
        assert system.total_runs() == 15

    def test_sl5_configurations_are_green(self, populated_system):
        _, results = populated_system
        for cycles in results.values():
            for cycle in cycles:
                if cycle.run.configuration_key.startswith("SL5"):
                    assert cycle.successful, cycle.summary()

    def test_sl6_migration_surfaces_problems_with_diagnosis(self, populated_system):
        _, results = populated_system
        sl6_cycles = [
            cycle for cycles in results.values() for cycle in cycles
            if cycle.run.configuration_key == "SL6_64bit_gcc4.4"
        ]
        failing = [cycle for cycle in sl6_cycles if not cycle.successful]
        assert failing, "the synthetic inventories carry un-ported packages"
        for cycle in failing:
            assert cycle.diagnosis is not None
            assert cycle.tickets
            # Problems introduced by the OS migration are routed to the host IT
            # department or the experiment, never left unassigned.
            for ticket in cycle.tickets:
                assert ticket.party.value in ("host IT department", "experiment")

    def test_summary_matrix_shape_matches_figure3(self, populated_system):
        system, results = populated_system
        runs = [cycle.run for cycles in results.values() for cycle in cycles]
        matrix = ValidationSummaryBuilder().from_runs(runs)
        assert matrix.experiments == ["ZEUS", "H1", "HERMES"]
        assert len(matrix.configurations) == 5
        assert matrix.overall_pass_fraction() > 0.9
        problem_configurations = {cell.configuration_key for cell in matrix.problem_cells()}
        assert problem_configurations <= {"SL6_64bit_gcc4.4"}

    def test_web_pages_generated_for_every_run(self, populated_system):
        system, results = populated_system
        generator = StatusPageGenerator(system.storage, system.catalog)
        for cycles in results.values():
            for cycle in cycles:
                page = generator.run_page(cycle.run)
                assert cycle.run.run_id in page
        index = generator.index_page()
        assert index.count("runpage_") >= system.total_runs()

    def test_catalog_export_contains_all_runs(self, populated_system):
        system, _ = populated_system
        rows = catalog_to_rows(system.catalog)
        assert len(rows) == system.total_runs()
        csv_text = rows_to_csv(rows)
        assert len(csv_text.splitlines()) == system.total_runs() + 1

    def test_every_job_output_is_reloadable(self, populated_system):
        system, results = populated_system
        cycle = results["HERMES"][0]
        for job in cycle.run.jobs:
            if job.output_key is not None:
                output = system.runner.load_output(job.output_key)
                assert output.passed == (job.status.value == "passed") or True


class TestRecipeAndFreezeLifecycle:
    def test_full_lifecycle_for_hermes(self):
        system = SPSystem()
        system.provision_standard_images()
        hermes = build_hera_experiments(scale=0.15)[2]
        system.register_experiment(hermes)
        result = system.validate("HERMES", "SL5_64bit_gcc4.4", description="final campaign")
        assert result.successful
        recipe = system.publish_recipe(result)
        plan = system.recipe_book.deployment_plan(recipe.recipe_id, "grid")
        assert plan.steps
        frozen = system.freeze_experiment("HERMES", result, FreezeReason.SATISFACTORY)
        assert system.workflow.phase_of("HERMES") is WorkflowPhase.FROZEN
        assert frozen.recipe_id == recipe.recipe_id
        assert system.hypervisor.conserved_images()

    def test_sl7_root6_challenge_detected(self):
        system = SPSystem()
        system.provision_standard_images()
        h1 = build_hera_experiments(scale=0.15)[1]
        system.register_experiment(h1)
        sl7 = next_generation_configuration()
        system.add_configuration(sl7)
        baseline = system.validate("H1", "SL5_64bit_gcc4.4")
        assert baseline.successful
        challenge = system.validate("H1", sl7.key)
        assert not challenge.successful
        categories = challenge.diagnosis.by_category()
        assert "external_dependency" in categories or "compiler" in categories

    def test_storage_persistence_round_trip(self, tmp_path):
        system = SPSystem()
        system.provision_standard_images()
        hermes = build_hera_experiments(scale=0.15)[2]
        system.register_experiment(hermes)
        system.validate("HERMES", "SL5_32bit_gcc4.1")
        written = system.storage.persist(str(tmp_path))
        assert written
        from repro.storage.common_storage import CommonStorage
        from repro.storage.catalog import RunCatalog

        reloaded = CommonStorage.load(str(tmp_path))
        catalog = RunCatalog(reloaded)
        assert catalog.total_runs() == 1
