"""Tests for the shared helpers in repro._common."""

import pytest

from repro._common import (
    ReproError,
    chunked,
    ensure_identifier,
    format_table,
    parse_version,
    stable_digest,
    stable_fraction,
    stable_hash,
    unique_preserving_order,
    version_at_least,
    version_less_than,
)


class TestEnsureIdentifier:
    def test_accepts_simple_names(self):
        assert ensure_identifier("h1-tracking") == "h1-tracking"
        assert ensure_identifier("SL6_64bit") == "SL6_64bit"
        assert ensure_identifier("ROOT-5.34") == "ROOT-5.34"

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            ensure_identifier("")

    def test_rejects_non_string(self):
        with pytest.raises(ReproError):
            ensure_identifier(42)  # type: ignore[arg-type]

    def test_rejects_spaces_and_slashes(self):
        with pytest.raises(ReproError):
            ensure_identifier("a b")
        with pytest.raises(ReproError):
            ensure_identifier("a/b")

    def test_rejects_leading_digit(self):
        with pytest.raises(ReproError):
            ensure_identifier("1abc")


class TestStableHashing:
    def test_stable_across_calls(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_fraction_in_unit_interval(self):
        for value in ("x", "y", 123, ("a", "b")):
            fraction = stable_fraction(value)
            assert 0.0 <= fraction < 1.0

    def test_digest_is_hex_and_stable(self):
        digest = stable_digest("package", "1.0")
        assert digest == stable_digest("package", "1.0")
        assert len(digest) == 40
        int(digest, 16)  # must be valid hex


class TestVersionParsing:
    def test_parse_simple(self):
        assert parse_version("5.34") == (5, 34)

    def test_parse_with_slash(self):
        assert parse_version("6.02/05") == (6, 2, 5)

    def test_parse_rejects_empty(self):
        with pytest.raises(ReproError):
            parse_version("")

    def test_version_at_least(self):
        assert version_at_least("4.4", "4.1")
        assert version_at_least("4.4", "4.4")
        assert not version_at_least("4.1", "4.4")

    def test_version_less_than(self):
        assert version_less_than("4.1", "4.4")
        assert not version_less_than("4.4", "4.4")

    def test_two_component_versus_three_component(self):
        assert version_at_least("5.34.1", "5.34")
        assert version_less_than("5.34", "5.34.1")


class TestSmallUtilities:
    def test_chunked_splits_evenly(self):
        assert list(chunked([1, 2, 3, 4], 2)) == [[1, 2], [3, 4]]

    def test_chunked_last_chunk_short(self):
        assert list(chunked([1, 2, 3], 2)) == [[1, 2], [3]]

    def test_chunked_rejects_non_positive(self):
        with pytest.raises(ReproError):
            list(chunked([1], 0))

    def test_unique_preserving_order(self):
        assert unique_preserving_order([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_format_table_handles_extra_columns(self):
        text = format_table(["a"], [["x", "y"]])
        assert "y" in text
