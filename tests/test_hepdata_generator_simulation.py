"""Tests for the Monte Carlo generator and the detector simulation."""

import numpy as np
import pytest

from repro._common import ValidationError
from repro.hepdata.generator import (
    GeneratorSettings,
    LEPTON_BEAM_ENERGY,
    MonteCarloGenerator,
    default_processes,
)
from repro.hepdata.numerics import NumericContext
from repro.hepdata.simulation import (
    DetectorSettings,
    DetectorSimulation,
    detector_for_experiment,
)


class TestGeneratorSettings:
    def test_defaults_valid(self):
        settings = GeneratorSettings()
        assert settings.process == "nc_dis"

    def test_invalid_q2_range(self):
        with pytest.raises(ValidationError):
            GeneratorSettings(q2_min=0.0)
        with pytest.raises(ValidationError):
            GeneratorSettings(q2_min=100.0, q2_max=10.0)

    def test_invalid_multiplicity_and_cross_section(self):
        with pytest.raises(ValidationError):
            GeneratorSettings(mean_charged_multiplicity=0.0)
        with pytest.raises(ValidationError):
            GeneratorSettings(cross_section_pb=-1.0)

    def test_default_processes_cover_four_channels(self):
        processes = {settings.process for settings in default_processes()}
        assert processes == {"nc_dis", "cc_dis", "photoproduction", "heavy_flavour"}


class TestMonteCarloGenerator:
    def test_generates_requested_number_of_events(self):
        record = MonteCarloGenerator().generate(25, seed=3)
        assert len(record) == 25

    def test_zero_events_allowed(self):
        assert len(MonteCarloGenerator().generate(0)) == 0

    def test_negative_events_rejected(self):
        with pytest.raises(ValidationError):
            MonteCarloGenerator().generate(-1)

    def test_determinism_per_seed(self):
        first = MonteCarloGenerator().generate(10, seed=7)
        second = MonteCarloGenerator().generate(10, seed=7)
        assert [event.q_squared for event in first] == [event.q_squared for event in second]

    def test_different_seeds_differ(self):
        first = MonteCarloGenerator().generate(10, seed=7)
        second = MonteCarloGenerator().generate(10, seed=8)
        assert [event.q_squared for event in first] != [event.q_squared for event in second]

    def test_q2_within_configured_range(self):
        settings = GeneratorSettings(process="cc_dis", q2_min=100.0, q2_max=20000.0)
        record = MonteCarloGenerator(settings).generate(50, seed=1)
        for event in record:
            assert 50.0 <= event.q_squared <= 40000.0  # allow for numeric perturbation

    def test_every_event_has_scattered_lepton(self):
        record = MonteCarloGenerator().generate(30, seed=2)
        for event in record:
            assert event.scattered_lepton is not None

    def test_hadronic_system_balances_lepton_pt(self):
        record = MonteCarloGenerator().generate(50, seed=4)
        ratios = []
        for event in record:
            lepton_pt = event.scattered_lepton.four_vector.pt
            total = event.total_four_vector()
            residual_pt = np.hypot(total.px, total.py)
            ratios.append(residual_pt / max(lepton_pt, 1e-9))
        # Transverse momentum is approximately conserved event by event.
        assert np.median(ratios) < 0.6

    def test_provenance_recorded(self):
        record = MonteCarloGenerator().generate(3, seed=1)
        assert any("mc-generation" in step for step in record.provenance)

    def test_numeric_context_changes_values_slightly(self):
        reference = MonteCarloGenerator().generate(10, seed=5)
        perturbed_context = NumericContext(label="other", rounding_scale=1e-10)
        perturbed = MonteCarloGenerator(numeric_context=perturbed_context).generate(10, seed=5)
        ref_q2 = [event.q_squared for event in reference]
        other_q2 = [event.q_squared for event in perturbed]
        assert ref_q2 != other_q2
        assert np.allclose(ref_q2, other_q2, rtol=1e-6)


class TestDetectorSimulation:
    def test_invalid_settings_rejected(self):
        with pytest.raises(ValidationError):
            DetectorSettings(track_efficiency=0.0)
        with pytest.raises(ValidationError):
            DetectorSettings(momentum_resolution=-0.1)
        with pytest.raises(ValidationError):
            DetectorSettings(min_pt=-0.1)

    def test_simulation_preserves_event_count(self):
        record = MonteCarloGenerator().generate(20, seed=1)
        simulated = DetectorSimulation().simulate(record, seed=2)
        assert len(simulated) == len(record)

    def test_simulation_removes_some_particles(self):
        record = MonteCarloGenerator().generate(40, seed=1)
        simulated = DetectorSimulation().simulate(record, seed=2)
        generated_particles = sum(len(event.particles) for event in record)
        simulated_particles = sum(len(event.particles) for event in simulated)
        assert 0 < simulated_particles <= generated_particles

    def test_simulation_is_deterministic(self):
        record = MonteCarloGenerator().generate(15, seed=1)
        first = DetectorSimulation().simulate(record, seed=9)
        second = DetectorSimulation().simulate(record, seed=9)
        assert [len(event.particles) for event in first] == [
            len(event.particles) for event in second
        ]

    def test_acceptance_cut_respected(self):
        settings = DetectorSettings(min_pt=0.5, max_abs_eta=2.0)
        record = MonteCarloGenerator().generate(20, seed=1)
        simulated = DetectorSimulation(settings).simulate(record, seed=2)
        for event in simulated:
            for particle in event.particles:
                assert particle.four_vector.pt >= 0.5 * 0.9  # smearing margin

    def test_experiment_presets(self):
        for name in ("H1", "ZEUS", "HERMES"):
            settings = detector_for_experiment(name)
            assert name.split("-")[0] in settings.name or name in settings.name
        assert detector_for_experiment("UNKNOWN").name == "generic-detector"

    def test_provenance_extended(self):
        record = MonteCarloGenerator().generate(5, seed=1)
        simulated = DetectorSimulation().simulate(record, seed=2)
        assert any("detector-simulation" in step for step in simulated.provenance)
        assert any("mc-generation" in step for step in simulated.provenance)
