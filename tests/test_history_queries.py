"""Tests for the longitudinal queries over the history ledger.

Trends, campaign diffs and the history-level regression detector all work
on plain :class:`ValidationEvent` data, so these tests drive them with
synthetic timelines (fast, and every corner reachable) plus one full
three-campaign end-to-end scenario: cold -> warm -> post-evolution-event,
with the regression attributed to the injected evolution event.
"""

import pytest

from repro._common import StorageError
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.environment.evolution import EVENT_EXTERNAL_RELEASE, EnvironmentEvent
from repro.environment.external import ExternalSoftwareCatalog
from repro.experiments import build_hermes_experiment
from repro.history import (
    CLASS_FLAKY,
    CLASS_HEALTHY,
    CLASS_NEVER_VALIDATED,
    CLASS_REGRESSED,
    RegressionDetector,
    ValidationEvent,
    ValidationHistoryLedger,
    campaign_matrix,
    diff_campaigns,
    diff_rows,
    health_trends,
    regression_rows,
    trend_rows,
)
from repro.scheduler.spec import CampaignSpec
from repro.storage.common_storage import CommonStorage


def _event(
    run_id,
    timestamp,
    status="passed",
    campaign_id="campaign-0001",
    configuration_key="SL5_64bit_gcc4.4",
    experiment="HERMES",
    fingerprint="fp-1",
):
    return ValidationEvent(
        run_id=run_id,
        campaign_id=campaign_id,
        experiment=experiment,
        configuration_key=configuration_key,
        configuration_fingerprint=fingerprint,
        status=status,
        n_passed=10 if status == "passed" else 7,
        n_failed=0 if status == "passed" else 3,
        n_skipped=0,
        failed_tests=() if status == "passed" else ("t-a",),
        diagnostics_digest="" if status == "passed" else "digest",
        cache_provenance="cold",
        backend="simulated",
        logical_timestamp=timestamp,
    )


def _ledger(events, evolutions=()):
    ledger = ValidationHistoryLedger(CommonStorage())
    for event in events:
        assert ledger.record_validation(event)
    for evolution, timestamp in evolutions:
        ledger.record_evolution(evolution, timestamp)
    return ledger


class TestHealthTrends:
    def test_one_point_per_experiment_per_campaign(self):
        ledger = _ledger([
            _event("sp-1", 100),
            _event("sp-2", 110, configuration_key="SL6_64bit_gcc4.4",
                   status="failed"),
            _event("sp-3", 200, campaign_id="campaign-0002"),
            _event("sp-4", 210, campaign_id="campaign-0002",
                   configuration_key="SL6_64bit_gcc4.4"),
        ])
        trends = health_trends(ledger)
        points = trends["HERMES"]
        assert [point.campaign_id for point in points] == [
            "campaign-0001", "campaign-0002",
        ]
        assert (points[0].n_cells, points[0].n_validated) == (2, 1)
        assert points[0].pass_fraction == 0.5
        assert points[1].healthy

    def test_rounds_count_by_latest_event(self):
        """A cell validated twice in one campaign counts once, latest wins."""
        ledger = _ledger([
            _event("sp-1", 100, status="failed"),
            _event("sp-2", 150),  # second round of the same cell passes
        ])
        point = health_trends(ledger)["HERMES"][0]
        assert (point.n_cells, point.n_validated) == (1, 1)

    def test_experiment_filter(self):
        ledger = _ledger([
            _event("sp-1", 100),
            _event("sp-2", 110, experiment="ZEUS"),
        ])
        assert set(health_trends(ledger)) == {"HERMES", "ZEUS"}
        assert set(health_trends(ledger, experiment="ZEUS")) == {"ZEUS"}
        rows = trend_rows(ledger, experiment="ZEUS")
        assert len(rows) == 1 and rows[0]["experiment"] == "ZEUS"


class TestCampaignDiff:
    def test_flipped_appeared_disappeared_unchanged(self):
        ledger = _ledger([
            _event("sp-1", 100),  # stays green
            _event("sp-2", 110, configuration_key="SL6_64bit_gcc4.4"),  # breaks
            _event("sp-3", 120, configuration_key="SL5_32bit_gcc4.1"),  # vanishes
            _event("sp-4", 200, campaign_id="campaign-0002"),
            _event("sp-5", 210, campaign_id="campaign-0002",
                   configuration_key="SL6_64bit_gcc4.4", status="failed"),
            _event("sp-6", 220, campaign_id="campaign-0002",
                   configuration_key="SL6_64bit_gcc4.1"),  # appears
        ])
        diff = diff_campaigns(ledger, "campaign-0001", "campaign-0002")
        assert diff.unchanged == 1
        assert [flip.configuration_key for flip in diff.flipped] == [
            "SL6_64bit_gcc4.4"
        ]
        assert diff.flipped[0].broke and not diff.flipped[0].fixed
        assert [flip.configuration_key for flip in diff.appeared] == [
            "SL6_64bit_gcc4.1"
        ]
        assert [flip.configuration_key for flip in diff.disappeared] == [
            "SL5_32bit_gcc4.1"
        ]
        assert "1 flipped cell(s) (1 broke, 0 fixed)" in diff.summary()
        rows = diff_rows(diff)
        assert {row["change"] for row in rows} == {
            "flipped", "appeared", "disappeared",
        }

    def test_fixed_direction(self):
        ledger = _ledger([
            _event("sp-1", 100, status="failed"),
            _event("sp-2", 200, campaign_id="campaign-0002"),
        ])
        diff = diff_campaigns(ledger, "campaign-0001", "campaign-0002")
        assert diff.fixed and not diff.broke

    def test_unknown_campaign_raises(self):
        ledger = _ledger([_event("sp-1", 100)])
        with pytest.raises(StorageError):
            diff_campaigns(ledger, "campaign-0001", "campaign-9999")
        with pytest.raises(StorageError):
            campaign_matrix(ledger, "nope")


class TestRegressionClassification:
    def test_healthy_cell(self):
        ledger = _ledger([_event("sp-1", 100), _event("sp-2", 200)])
        [finding] = RegressionDetector(ledger).findings()
        assert finding.classification == CLASS_HEALTHY
        assert not finding.is_regression

    def test_never_validated_cell(self):
        ledger = _ledger([
            _event("sp-1", 100, status="failed"),
            _event("sp-2", 200, status="failed"),
        ])
        [finding] = RegressionDetector(ledger).findings()
        assert finding.classification == CLASS_NEVER_VALIDATED

    def test_regressed_cell_pins_last_good_and_first_bad(self):
        ledger = _ledger([
            _event("sp-1", 100),
            _event("sp-2", 200),
            _event("sp-3", 300, status="failed"),
            _event("sp-4", 400, status="failed"),
        ])
        [finding] = RegressionDetector(ledger).findings()
        assert finding.classification == CLASS_REGRESSED
        assert finding.last_good.run_id == "sp-2"
        assert finding.first_bad.run_id == "sp-3"
        assert finding.n_flips == 1

    def test_flaky_cell(self):
        ledger = _ledger([
            _event("sp-1", 100),
            _event("sp-2", 200, status="failed"),
            _event("sp-3", 300),
        ])
        [finding] = RegressionDetector(ledger).findings()
        assert finding.classification == CLASS_FLAKY
        assert finding.n_flips == 2

    def test_recovered_once_is_healthy_not_flaky(self):
        ledger = _ledger([
            _event("sp-1", 100, status="failed"),
            _event("sp-2", 200),
        ])
        [finding] = RegressionDetector(ledger).findings()
        assert finding.classification == CLASS_HEALTHY

    def test_evolution_event_in_window_is_suspected(self):
        evolution = EnvironmentEvent(
            year=2014, kind=EVENT_EXTERNAL_RELEASE, subject="ROOT-6.02",
            detail="removes legacy interfaces",
        )
        early = EnvironmentEvent(
            year=2013, kind=EVENT_EXTERNAL_RELEASE, subject="MCGEN-2.0",
            detail="before the last good run",
        )
        ledger = _ledger(
            [
                _event("sp-1", 100, fingerprint="fp-1"),
                _event("sp-2", 300, status="failed", fingerprint="fp-2"),
            ],
            evolutions=[(early, 50), (evolution, 200)],
        )
        [finding] = RegressionDetector(ledger).regressions()
        assert finding.suspected_event is not None
        assert finding.suspected_event.subject == "ROOT-6.02"
        assert finding.fingerprint_changed
        assert "ROOT-6.02" in finding.summary()

    def test_no_evolution_in_window_means_no_suspect(self):
        evolution = EnvironmentEvent(
            year=2013, kind=EVENT_EXTERNAL_RELEASE, subject="MCGEN-2.0",
            detail="too early",
        )
        ledger = _ledger(
            [
                _event("sp-1", 100),
                _event("sp-2", 300, status="failed"),
            ],
            evolutions=[(evolution, 50)],
        )
        [finding] = RegressionDetector(ledger).regressions()
        assert finding.suspected_event is None
        assert not finding.fingerprint_changed

    def test_rows_put_regressions_first(self):
        ledger = _ledger([
            _event("sp-1", 100),
            _event("sp-2", 200),  # healthy cell
            _event("sp-3", 100, configuration_key="SL6_64bit_gcc4.4"),
            _event("sp-4", 200, configuration_key="SL6_64bit_gcc4.4",
                   status="failed"),  # regressed cell
        ])
        rows = regression_rows(RegressionDetector(ledger).findings())
        assert rows[0]["classification"] == CLASS_REGRESSED
        assert rows[-1]["classification"] == CLASS_HEALTHY


class TestThreeCampaignScenario:
    """The acceptance scenario: cold -> warm -> post-evolution-event."""

    KEYS = ("SL5_64bit_gcc4.4", "SL5_64bit_gcc4.1")

    def _system(self):
        system = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
        )
        system.provision_standard_images()
        system.register_experiment(build_hermes_experiment(scale=0.3))
        return system

    def _spec(self):
        return CampaignSpec(
            experiments=("HERMES",),
            configuration_keys=self.KEYS,
            record_history=True,
            persist_spec=False,
        )

    def test_regression_is_attributed_to_the_evolution_event(self):
        system = self._system()
        cold = system.submit(self._spec())
        assert all(cell.result.successful for cell in cold.result().cells)
        system.clock.advance_days(7)
        warm = system.submit(self._spec())
        assert warm.result().cache_statistics.hits > 0

        # The evolution event: ROOT 6.02 lands on the established platform
        # (same configuration key, new content fingerprint).
        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        target = system.configuration("SL5_64bit_gcc4.4")
        system.replace_configuration(target.with_external(root6))
        system.clock.advance_days(1)
        evolution = EnvironmentEvent(
            year=2014,
            kind=EVENT_EXTERNAL_RELEASE,
            subject="ROOT-6.02",
            detail="ROOT 6.02 installed; removes the CINT interfaces",
        )
        system.history.record_evolution(evolution, system.clock.now)
        system.clock.advance_days(6)
        after = system.submit(self._spec())

        # The diff names exactly the flipped cell.
        diff = diff_campaigns(
            system.history, cold.campaign_id, after.campaign_id
        )
        assert [flip.configuration_key for flip in diff.broke] == [
            "SL5_64bit_gcc4.4"
        ]
        assert diff.unchanged == 1

        # The regression is attributed to the injected evolution event.
        [finding] = RegressionDetector(system.history).regressions()
        assert finding.configuration_key == "SL5_64bit_gcc4.4"
        assert finding.suspected_event.subject == "ROOT-6.02"
        assert finding.fingerprint_changed
        assert finding.last_good.campaign_id == warm.campaign_id
        assert finding.first_bad.campaign_id == after.campaign_id

        # And the trend shows the drop in the third campaign.
        points = health_trends(system.history)["HERMES"]
        assert [point.pass_fraction for point in points] == [1.0, 1.0, 0.5]

    def test_trends_page_renders_the_scenario(self):
        from repro.reporting.webpages import StatusPageGenerator

        system = self._system()
        first = system.submit(self._spec())
        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        target = system.configuration("SL5_64bit_gcc4.4")
        system.replace_configuration(target.with_external(root6))
        system.clock.advance_days(1)
        system.history.record_evolution(
            EnvironmentEvent(
                year=2014, kind=EVENT_EXTERNAL_RELEASE, subject="ROOT-6.02",
                detail="removes the CINT interfaces",
            ),
            system.clock.now,
        )
        system.clock.advance_days(1)
        second = system.submit(self._spec())

        pages = StatusPageGenerator(system.storage, system.catalog)
        detector = RegressionDetector(system.history)
        diff = diff_campaigns(
            system.history, first.campaign_id, second.campaign_id
        )
        page = pages.trends_page(
            trend_rows(system.history),
            regression_rows(detector.findings()),
            diff_rows=diff_rows(diff),
            history_status=system.history.status(),
            evolution_rows=[
                record.to_dict()
                for record in system.history.evolution_records()
            ],
        )
        assert "regressed" in page
        assert "ROOT-6.02" in page
        assert system.storage.exists("reports", "trends")
        campaign_page = pages.campaign_page(
            second.result(), history_link=True
        )
        assert "trends.html" in campaign_page
