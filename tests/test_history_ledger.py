"""Tests for the validation history ledger.

The ledger is the longitudinal memory of the sp-system: every completed
validation cell becomes an immutable event in an append-only journal inside
the ``history`` namespace of the common storage, evolution events share the
same time axis, ingestion is idempotent per run ID, and mounting the ledger
on a restored storage rebuilds the secondary indexes without duplicating
anything.
"""

import pytest

from repro._common import StorageError
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.environment.configuration import configuration_fingerprint
from repro.environment.evolution import EVENT_EXTERNAL_RELEASE, EnvironmentEvent
from repro.experiments import build_hermes_experiment
from repro.history import (
    EvolutionRecord,
    ValidationEvent,
    ValidationHistoryLedger,
)
from repro.scheduler.spec import CampaignSpec
from repro.storage.common_storage import CommonStorage


KEYS = ("SL5_64bit_gcc4.4", "SL5_64bit_gcc4.1")


def _fresh_system(storage=None):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0),
        storage=storage,
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


def _spec(**overrides):
    options = dict(
        experiments=("HERMES",),
        configuration_keys=KEYS,
        record_history=True,
        persist_spec=False,
    )
    options.update(overrides)
    return CampaignSpec(**options)


def _event(run_id, timestamp=1356998400, status="passed", **overrides):
    options = dict(
        run_id=run_id,
        campaign_id="campaign-0001",
        experiment="HERMES",
        configuration_key="SL5_64bit_gcc4.4",
        configuration_fingerprint="fp-1",
        status=status,
        n_passed=10 if status == "passed" else 8,
        n_failed=0 if status == "passed" else 2,
        n_skipped=0,
        failed_tests=() if status == "passed" else ("t-a", "t-b"),
        diagnostics_digest="" if status == "passed" else "digest-1",
        cache_provenance="cold",
        backend="simulated",
        logical_timestamp=timestamp,
        description="test",
    )
    options.update(overrides)
    return ValidationEvent(**options)


class TestEventRoundTrip:
    def test_validation_event_round_trips(self):
        event = _event("sp-000001", status="failed")
        assert ValidationEvent.from_dict(event.to_dict()) == event

    def test_evolution_record_round_trips(self):
        record = EvolutionRecord(
            year=2014,
            kind=EVENT_EXTERNAL_RELEASE,
            subject="ROOT-6.02",
            detail="removes 4 legacy interfaces",
            logical_timestamp=1400000000,
        )
        assert EvolutionRecord.from_dict(record.to_dict()) == record

    def test_event_document_is_json_serialisable(self):
        import json

        payload = json.loads(json.dumps(_event("sp-000001").to_dict()))
        assert ValidationEvent.from_dict(payload) == _event("sp-000001")


class TestIngestion:
    def test_submit_with_record_history_ingests_every_cell(self):
        system = _fresh_system()
        handle = system.submit(_spec())
        assert system.history is not None
        assert len(system.history) == len(handle.result().cells)
        events = system.history.events()
        assert [event.run_id for event in events] == [
            cell.run.run_id for cell in handle.result().cells
        ]
        assert all(event.campaign_id == handle.campaign_id for event in events)
        assert all(event.backend == "simulated" for event in events)
        assert all(event.cache_provenance == "cold" for event in events)

    def test_event_carries_configuration_fingerprint(self):
        system = _fresh_system()
        system.submit(_spec())
        event = system.history.events()[0]
        configuration = system.configuration(event.configuration_key)
        assert event.configuration_fingerprint == configuration_fingerprint(
            configuration
        )

    def test_warm_campaign_records_warm_provenance(self):
        system = _fresh_system()
        system.submit(_spec())
        second = system.submit(_spec())
        provenances = {
            event.cache_provenance
            for event in system.history.events_for_campaign(second.campaign_id)
        }
        assert provenances == {"warm"}

    def test_uncached_campaign_records_uncached_provenance(self):
        system = _fresh_system()
        handle = system.submit(_spec(use_cache=False))
        provenances = {
            event.cache_provenance
            for event in system.history.events_for_campaign(handle.campaign_id)
        }
        assert provenances == {"uncached"}

    def test_default_spec_does_not_record_on_fresh_storage(self):
        """record_history=None means auto: no ledger, no recording."""
        system = _fresh_system()
        system.submit(_spec(record_history=None))
        assert system.history is None
        assert ValidationHistoryLedger.NAMESPACE not in system.storage.namespaces()

    def test_default_spec_keeps_recording_on_mounted_ledger(self):
        """The auto mode records when the storage already carries history."""
        first = _fresh_system()
        first.submit(_spec())
        events_before = len(first.history)
        mounted = _fresh_system(storage=first.storage)
        assert mounted.history is not None
        mounted.submit(_spec(record_history=None))
        assert len(mounted.history) == 2 * events_before

    def test_record_history_false_never_records(self):
        first = _fresh_system()
        first.submit(_spec())
        mounted = _fresh_system(storage=first.storage)
        events_before = len(mounted.history)
        mounted.submit(_spec(record_history=False))
        assert len(mounted.history) == events_before

    def test_regular_service_auto_ingests_on_mounted_storage(self):
        from repro.core.service import RegularValidationService

        first = _fresh_system()
        first.submit(_spec())
        mounted = _fresh_system(storage=first.storage)
        service = RegularValidationService(mounted)
        service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        events_before = len(mounted.history)
        report = service.advance_days(2)
        assert report.n_cycles == 2
        assert len(mounted.history) == events_before + 2

    def test_regular_service_can_record_onto_fresh_storage(self):
        from repro.core.service import RegularValidationService

        system = _fresh_system()
        service = RegularValidationService(system, record_history=True)
        service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        service.advance_days(1)
        assert system.history is not None
        assert len(system.history) == 1


class TestIdempotence:
    def test_duplicate_run_is_not_reingested(self):
        storage = CommonStorage()
        ledger = ValidationHistoryLedger(storage)
        assert ledger.record_validation(_event("sp-000001"))
        assert not ledger.record_validation(_event("sp-000001"))
        assert len(ledger) == 1
        assert ledger.journal_records() == 1

    def test_duplicate_evolution_is_not_rerecorded(self):
        ledger = ValidationHistoryLedger(CommonStorage())
        event = EnvironmentEvent(
            year=2014, kind=EVENT_EXTERNAL_RELEASE, subject="ROOT-6.02",
            detail="x",
        )
        assert ledger.record_evolution(event, 100) is not None
        assert ledger.record_evolution(event, 200) is None
        assert len(ledger.evolution_records()) == 1

    def test_restore_then_reingest_is_idempotent(self):
        """Warm-starting and replaying the same cells adds nothing."""
        system = _fresh_system()
        handle = system.submit(_spec())
        records_before = system.history.journal_records()

        remounted = ValidationHistoryLedger(system.storage)
        assert len(remounted) == len(system.history)
        for cell in handle.result().cells:
            assert (
                remounted.ingest_cycle(
                    cell.result,
                    configuration=system.configuration(cell.configuration_key),
                    campaign_id=handle.campaign_id,
                    backend="simulated",
                    cache_provenance="cold",
                )
                is None
            )
        assert remounted.journal_records() == records_before
        assert len(remounted) == len(system.history)


class TestPersistence:
    def test_disk_round_trip_rebuilds_indexes(self, tmp_path):
        system = _fresh_system()
        handle = system.submit(_spec())
        system.history.record_evolution(
            EnvironmentEvent(
                year=2014, kind=EVENT_EXTERNAL_RELEASE, subject="ROOT-6.02",
                detail="x",
            ),
            system.clock.now,
        )
        system.storage.persist(str(tmp_path))
        loaded = CommonStorage.load(str(tmp_path))
        ledger = ValidationHistoryLedger.open(loaded)
        assert len(ledger) == len(system.history)
        assert ledger.campaign_ids() == [handle.campaign_id]
        assert [event.to_dict() for event in ledger.events()] == [
            event.to_dict() for event in system.history.events()
        ]
        assert len(ledger.evolution_records()) == 1
        assert ledger.corrupted_records == 0

    def test_history_persists_as_segment_files(self, tmp_path):
        """The journal lands on disk as batched segments, not per-record files."""
        import os

        system = _fresh_system()
        system.submit(_spec())
        assert system.history.journal_records() > 1
        system.storage.persist(str(tmp_path))
        history_dir = tmp_path / ValidationHistoryLedger.NAMESPACE
        files = sorted(os.listdir(history_dir))
        assert files == ["journal_segment_00000001.json"]

    def test_mounted_system_resumes_campaign_ids_past_history(self, tmp_path):
        """A resumed installation never merges into an inherited campaign."""
        system = _fresh_system()
        first = system.submit(_spec())
        system.storage.persist(str(tmp_path))
        resumed = _fresh_system(storage=CommonStorage.load(str(tmp_path)))
        second = resumed.submit(_spec())
        assert second.campaign_id != first.campaign_id
        assert resumed.history.campaign_ids() == [
            first.campaign_id, second.campaign_id,
        ]

    def test_restore_history_copies_foreign_journal(self):
        donor = _fresh_system()
        donor.submit(_spec())
        donor_keys = donor.storage.keys(ValidationHistoryLedger.NAMESPACE)

        target = _fresh_system()
        ledger = target.restore_history(donor.storage)
        assert len(ledger) == len(donor.history)
        # The journal travelled into the target's own storage; the donor's
        # was never modified.
        assert target.storage.keys(ValidationHistoryLedger.NAMESPACE) == donor_keys
        assert donor.storage.keys(ValidationHistoryLedger.NAMESPACE) == donor_keys

    def test_restore_history_without_ledger_raises(self):
        system = _fresh_system()
        with pytest.raises(StorageError):
            system.restore_history(CommonStorage())
        assert system.restore_history(CommonStorage(), missing_ok=True) is None

    def test_open_without_namespace_raises_clearly(self):
        with pytest.raises(StorageError) as error:
            ValidationHistoryLedger.open(CommonStorage())
        assert "history" in str(error.value)


class TestCorruptionTolerance:
    def test_corrupted_record_is_skipped_and_counted(self):
        storage = CommonStorage()
        ledger = ValidationHistoryLedger(storage)
        ledger.record_validation(_event("sp-000001"))
        ledger.record_validation(_event("sp-000002", timestamp=1357000000))
        namespace = storage.namespace(ValidationHistoryLedger.NAMESPACE)
        keys = namespace.keys(prefix=ValidationHistoryLedger.JOURNAL_PREFIX)
        namespace.put(keys[0], "garbage")
        remounted = ValidationHistoryLedger(storage)
        assert len(remounted) == 1
        assert remounted.corrupted_records == 1
        assert remounted.events()[0].run_id == "sp-000002"

    def test_unknown_record_type_is_treated_as_corrupted(self):
        storage = CommonStorage()
        ledger = ValidationHistoryLedger(storage)
        ledger.record_validation(_event("sp-000001"))
        namespace = storage.namespace(ValidationHistoryLedger.NAMESPACE)
        namespace.put("journal_00000099", {"type": "mystery", "event": {}})
        remounted = ValidationHistoryLedger(storage)
        assert len(remounted) == 1
        assert remounted.corrupted_records == 1


class TestQueries:
    def _ledger(self):
        ledger = ValidationHistoryLedger(CommonStorage())
        ledger.record_validation(_event("sp-000001", timestamp=100))
        ledger.record_validation(
            _event(
                "sp-000002", timestamp=200, campaign_id="campaign-0002",
                status="failed",
            )
        )
        ledger.record_validation(
            _event(
                "sp-000003", timestamp=150, campaign_id="campaign-0002",
                configuration_key="SL6_64bit_gcc4.4",
            )
        )
        return ledger

    def test_events_ordered_by_timestamp(self):
        ledger = self._ledger()
        assert [event.run_id for event in ledger.events()] == [
            "sp-000001", "sp-000003", "sp-000002",
        ]

    def test_campaign_ids_in_first_seen_order(self):
        ledger = self._ledger()
        assert ledger.campaign_ids() == ["campaign-0001", "campaign-0002"]

    def test_cells_and_cell_timeline(self):
        ledger = self._ledger()
        assert ledger.cells() == [
            ("HERMES", "SL5_64bit_gcc4.4"),
            ("HERMES", "SL6_64bit_gcc4.4"),
        ]
        timeline = ledger.cell_timeline("HERMES", "SL5_64bit_gcc4.4")
        assert [event.run_id for event in timeline] == ["sp-000001", "sp-000002"]

    def test_status_counts(self):
        status = self._ledger().status()
        assert status == {
            "events": 3,
            "evolutions": 0,
            "campaigns": 2,
            "cells": 2,
            "corrupted_records": 0,
        }
