"""Determinism regression tests for the campaign scheduler.

The scheduler's contract is that pooled execution changes the campaign's
wall-clock story only: for any worker count, the produced
:class:`~repro.core.jobs.ValidationRun` documents and
:class:`~repro.storage.catalog.RunCatalog` records must be bit-identical to
the sequential baseline of calling ``SPSystem.validate`` cell by cell.  The
tests here pin that property across seeds, scales and worker counts, and also
cover the ``ValidationJob``/``ValidationRun`` document round-trip the
structural comparisons rely on.
"""

import os
import pickle

import pytest

from repro.buildsys.builder import BuildTask
from repro.core.jobs import JobStatus, ValidationJob, ValidationRun
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.experiments import build_hermes_experiment
from repro.scheduler.dag import TaskKind
from repro.scheduler.spec import CampaignSpec


def _fresh_system(seed, telemetry=None):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0, seed=seed),
        telemetry=telemetry,
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=0.2))
    return system


def _sequential_baseline(seed, keys, rounds=1):
    """The pre-scheduler behaviour: one validate() call per cell, in order."""
    system = _fresh_system(seed)
    results = [
        system.validate("HERMES", key)
        for _round in range(rounds)
        for key in keys
    ]
    return system, results


KEYS = ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"]

#: The backends the parity suite runs against.  CI shards the matrix by
#: exporting REPRO_PARITY_BACKENDS (e.g. "simulated,threads,processes");
#: the default covers every registered backend.
PARITY_BACKENDS = tuple(
    entry.strip()
    for entry in os.environ.get(
        "REPRO_PARITY_BACKENDS", "simulated,threads,processes,sharded"
    ).split(",")
    if entry.strip()
)

#: The backends that really execute task payloads (everything but the
#: simulation) — these are the ones whose builds must run exactly once.
EXECUTING_BACKENDS = tuple(
    backend for backend in PARITY_BACKENDS if backend != "simulated"
)


def _campaign_spec(backend, keys=None, **overrides):
    options = dict(workers=4, backend=backend, persist_spec=False)
    if keys is not None:
        options["configuration_keys"] = tuple(keys)
    options.update(overrides)
    return CampaignSpec(**options)


class TestSchedulerMatchesSequentialBaseline:
    @pytest.mark.parametrize("seed", [20131029, 7, 424242])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_run_documents_identical(self, seed, workers):
        baseline_system, baseline = _sequential_baseline(seed, KEYS)
        scheduled_system = _fresh_system(seed)
        scheduled = scheduled_system.validate_everywhere(
            "HERMES", KEYS, workers=workers
        )
        assert [cycle.run.to_document() for cycle in scheduled] == [
            cycle.run.to_document() for cycle in baseline
        ]
        # The catalogue records are equally bit-identical.
        assert [record.to_dict() for record in scheduled_system.catalog.all()] == [
            record.to_dict() for record in baseline_system.catalog.all()
        ]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_multi_round_campaign_identical_despite_cache(self, workers):
        """Round >= 2 is served from the build cache, yet output is identical."""
        seed = 20131029
        baseline_system, baseline = _sequential_baseline(seed, KEYS, rounds=2)
        scheduled_system = _fresh_system(seed)
        campaign = scheduled_system.run_campaign(
            ["HERMES"], KEYS, workers=workers, rounds=2
        )
        assert campaign.cache_statistics.hits > 0
        assert [run.to_document() for run in campaign.runs()] == [
            cycle.run.to_document() for cycle in baseline
        ]
        assert [record.to_dict() for record in scheduled_system.catalog.all()] == [
            record.to_dict() for record in baseline_system.catalog.all()
        ]

    def test_regression_and_workflow_side_effects_identical(self):
        """Diagnosis, tickets and workflow phases match the sequential path."""
        seed = 20131029
        baseline_system, baseline = _sequential_baseline(seed, KEYS)
        scheduled_system = _fresh_system(seed)
        scheduled = scheduled_system.validate_everywhere("HERMES", KEYS, workers=4)
        for before, after in zip(baseline, scheduled):
            assert before.successful == after.successful
            assert len(before.tickets) == len(after.tickets)
            assert (before.diagnosis is None) == (after.diagnosis is None)
        assert (
            baseline_system.workflow.phase_of("HERMES")
            is scheduled_system.workflow.phase_of("HERMES")
        )

    def test_worker_count_does_not_change_storage(self):
        """The common storage is byte-for-byte independent of the pool size."""
        documents = []
        for workers in (1, 2, 5):
            system = _fresh_system(20131029)
            system.validate_everywhere("HERMES", KEYS, workers=workers)
            documents.append({
                namespace: {
                    key: system.storage.get(namespace, key)
                    for key in system.storage.keys(namespace)
                }
                for namespace in system.storage.namespaces()
            })
        assert documents[0] == documents[1] == documents[2]


class TestBackendParity:
    """The same spec yields bit-identical science on every backend.

    The wall-clock backends (threads, processes, sharded) really execute
    the campaign DAG, so their schedules carry measured timing —
    nondeterministic by nature and therefore excluded from these
    comparisons by design.  The run documents and catalogue records,
    produced by the deterministic cell pass, must stay bit-identical to
    the simulated backend and to the sequential ``validate`` path.
    """

    def _full_matrix_spec(self, backend):
        return CampaignSpec(workers=4, backend=backend, persist_spec=False)

    @pytest.mark.parametrize("backend", EXECUTING_BACKENDS)
    def test_executing_backend_matches_simulated_and_sequential(self, backend):
        seed = 20131029
        all_keys = [c.key for c in _fresh_system(seed).configurations()]
        baseline_system, baseline = _sequential_baseline(seed, all_keys)
        simulated_system = _fresh_system(seed)
        simulated = simulated_system.submit(self._full_matrix_spec("simulated"))
        executed_system = _fresh_system(seed)
        executed = executed_system.submit(self._full_matrix_spec(backend))
        expected = [cycle.run.to_document() for cycle in baseline]
        assert [
            run.to_document() for run in simulated.result().runs()
        ] == expected
        assert [
            run.to_document() for run in executed.result().runs()
        ] == expected
        expected_records = [
            record.to_dict() for record in baseline_system.catalog.all()
        ]
        assert [
            record.to_dict() for record in simulated_system.catalog.all()
        ] == expected_records
        assert [
            record.to_dict() for record in executed_system.catalog.all()
        ] == expected_records
        # The cache statistics are part of the invariant: the sharded merge
        # must not inflate them.
        assert (
            executed.result().cache_statistics
            == simulated.result().cache_statistics
        )
        # The timelines are backend-specific: simulated seconds on one side,
        # measured wall-clock seconds on the other.
        assert simulated.result().schedule.backend == "simulated"
        assert executed.result().schedule.backend == backend
        assert len(executed.result().schedule.assignments) == len(
            executed.result().dag
        )

    @pytest.mark.parametrize("backend", EXECUTING_BACKENDS)
    def test_executing_backend_runs_real_build_tasks(self, backend):
        """Build tasks are genuine BuildTask re-compilations, run exactly once.

        Every build task whose compile job ran during the cell pass carries
        a re-executable :class:`BuildTask`; each executing backend runs it
        for real — on a worker thread, in a pooled child process, or inside
        its cell's shard — digest-checked against the recorded result,
        while run documents stay bit-identical: builds are pure functions
        of the content digest.
        """
        seed = 20131029
        baseline_system, baseline = _sequential_baseline(seed, KEYS)
        system = _fresh_system(seed)
        campaign = system.submit(_campaign_spec(backend, KEYS)).result()
        build_tasks = {
            task_id: payload
            for task_id, payload in campaign.payloads.items()
            if campaign.dag.get(task_id).kind is TaskKind.BUILD
        }
        real = [
            payload for payload in build_tasks.values()
            if isinstance(payload, BuildTask)
        ]
        assert real, "build tasks should carry re-executable payloads"
        assert all(task.runs == 1 for task in real)
        # Executed builds carry the recorded result digest to check against.
        assert all(task.expected_digest is not None for task in real)
        assert [run.to_document() for run in campaign.runs()] == [
            cycle.run.to_document() for cycle in baseline
        ]

    def test_simulated_backend_leaves_build_tasks_unexecuted(self):
        system = _fresh_system(20131029)
        campaign = system.submit(
            CampaignSpec(
                configuration_keys=tuple(KEYS),
                workers=4,
                backend="simulated",
                persist_spec=False,
            )
        ).result()
        real = [
            payload for payload in campaign.payloads.values()
            if isinstance(payload, BuildTask)
        ]
        assert real
        assert all(task.runs == 0 for task in real)

    def test_build_task_digest_check_rejects_divergence(self, sp_system, tiny_hermes):
        """A diverging re-execution fails loudly instead of passing silently."""
        from repro._common import BuildError
        from repro.buildsys.builder import PackageBuilder, build_result_digest

        sp_system.register_experiment(tiny_hermes)
        package = tiny_hermes.inventory.all()[0]
        configuration = sp_system.configuration("SL5_64bit_gcc4.4")
        builder = PackageBuilder()
        good = BuildTask(
            package=package,
            configuration=configuration,
            builder=builder,
            expected_digest=build_result_digest(
                builder.build_package(package, configuration)
            ),
        )
        assert good.run().package == package
        assert good.runs == 1
        bad = BuildTask(
            package=package,
            configuration=configuration,
            builder=builder,
            expected_digest="not-the-digest",
        )
        with pytest.raises(BuildError):
            bad.run()

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    def test_spec_round_trip_replays_identical_campaign(self, backend):
        spec = CampaignSpec(
            configuration_keys=tuple(KEYS),
            workers=3,
            rounds=2,
            backend=backend,
            persist_spec=False,
        )
        first = _fresh_system(20131029).submit(spec).result()
        replayed = (
            _fresh_system(20131029)
            .submit(CampaignSpec.from_dict(spec.to_dict()))
            .result()
        )
        assert [run.to_document() for run in replayed.runs()] == [
            run.to_document() for run in first.runs()
        ]

    @pytest.mark.parametrize("backend", EXECUTING_BACKENDS)
    def test_executing_backend_storage_matches_simulated(self, backend):
        """The persisted storage is byte-identical across backends."""
        documents = []
        for chosen in ("simulated", backend):
            system = _fresh_system(20131029)
            system.submit(_campaign_spec(chosen, KEYS, workers=2))
            documents.append({
                namespace: {
                    key: system.storage.get(namespace, key)
                    for key in system.storage.keys(namespace)
                }
                for namespace in system.storage.namespaces()
            })
        assert documents[0] == documents[1]

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    def test_noop_plugin_registry_does_not_change_science(self, backend):
        """An attached observer registry leaves the science byte-identical.

        The lifecycle bus's observer contract (see
        ``repro/scheduler/lifecycle.py``) promises that read-only sinks
        never change run documents, catalogue records or cache
        statistics.  This pins it: a counting no-op observer subscribed
        to every event sees the full stream, yet the campaign output
        matches a bare system bit for bit on every backend.
        """
        from repro.scheduler.lifecycle import (
            EVENT_CAMPAIGN_FINISHED,
            EVENT_CELL_COMPLETED,
            LIFECYCLE_EVENTS,
            LifecycleObserver,
        )

        class CountingObserver(LifecycleObserver):
            name = "noop-counter"
            events = LIFECYCLE_EVENTS

            def __init__(self):
                self.seen = []

            def handle(self, event, context):
                self.seen.append(event.name)

        seed = 20131029
        bare_system = _fresh_system(seed)
        bare = bare_system.submit(
            _campaign_spec(backend, KEYS, workers=2)
        ).result()
        observed_system = _fresh_system(seed)
        observer = observed_system.lifecycle.add_observer(CountingObserver())
        observed = observed_system.submit(
            _campaign_spec(backend, KEYS, workers=2)
        ).result()
        # The observer really saw the campaign: one cell_completed per
        # cell (in deterministic cell order) plus the final finish event.
        assert observer.seen.count(EVENT_CELL_COMPLETED) == len(observed.cells)
        assert observer.seen[-1] == EVENT_CAMPAIGN_FINISHED
        # ...and the science is untouched.
        assert [run.to_document() for run in observed.runs()] == [
            run.to_document() for run in bare.runs()
        ]
        assert observed.cache_statistics == bare.cache_statistics
        assert [
            record.to_dict() for record in observed_system.catalog.all()
        ] == [record.to_dict() for record in bare_system.catalog.all()]
        assert {
            namespace: {
                key: observed_system.storage.get(namespace, key)
                for key in observed_system.storage.keys(namespace)
            }
            for namespace in observed_system.storage.namespaces()
        } == {
            namespace: {
                key: bare_system.storage.get(namespace, key)
                for key in bare_system.storage.keys(namespace)
            }
            for namespace in bare_system.storage.namespaces()
        }

    def test_attached_telemetry_leaves_science_identical(self):
        """A full telemetry bundle changes nothing but what it records.

        Two invariants at once, on every parity backend: (1) a campaign
        run with a live :class:`~repro.telemetry.Telemetry` bundle and a
        ``MetricsObserver`` on the bus produces run documents, catalogue
        records and cache statistics byte-identical to an uninstrumented
        system; (2) the *cell-category* span sequence — the spans of the
        deterministic cell pass (spec validation, DAG construction, cell
        validation, cache probes) — is itself identical across all
        backends, because the cell pass is the same code path everywhere.
        Span durations and metric values are wall-clock and excluded;
        span names, order and attributes are not.
        """
        from repro.telemetry import MetricsObserver, Telemetry

        seed = 20131029
        sequences = {}
        for backend in PARITY_BACKENDS:
            bare_system = _fresh_system(seed)
            bare = bare_system.submit(
                _campaign_spec(backend, KEYS, workers=2)
            ).result()
            telemetry = Telemetry.create()
            observed_system = _fresh_system(seed, telemetry=telemetry)
            observed_system.lifecycle.add_observer(
                MetricsObserver(telemetry.metrics)
            )
            observed = observed_system.submit(
                _campaign_spec(backend, KEYS, workers=2)
            ).result()
            assert [run.to_document() for run in observed.runs()] == [
                run.to_document() for run in bare.runs()
            ]
            assert observed.cache_statistics == bare.cache_statistics
            assert [
                record.to_dict() for record in observed_system.catalog.all()
            ] == [record.to_dict() for record in bare_system.catalog.all()]
            # The bundle really recorded the campaign.
            counted = telemetry.metrics.counter_value(
                "cells_total", outcome="passed"
            ) + telemetry.metrics.counter_value("cells_total", outcome="failed")
            assert counted == len(observed.cells)
            sequences[backend] = telemetry.tracer.sequence(category="cell")
        assert sequences[PARITY_BACKENDS[0]], (
            "the instrumented cell pass recorded no spans"
        )
        assert len(set(sequences.values())) == 1, (
            "the deterministic cell-pass span sequence diverged between "
            "backends: " + ", ".join(sorted(sequences))
        )

    def test_build_task_pickle_round_trip(self, sp_system, tiny_hermes):
        """BuildTask crosses the process boundary: pickle must round-trip.

        The process and sharded backends ship build tasks to child
        interpreters; this pins the picklability contract directly so a
        future unpicklable field fails here, not deep inside a pool
        traceback.
        """
        from repro.buildsys.builder import PackageBuilder, build_result_digest

        sp_system.register_experiment(tiny_hermes)
        package = tiny_hermes.inventory.all()[0]
        configuration = sp_system.configuration("SL5_64bit_gcc4.4")
        builder = PackageBuilder()
        task = BuildTask(
            package=package,
            configuration=configuration,
            builder=builder,
            expected_digest=build_result_digest(
                builder.build_package(package, configuration)
            ),
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.package == package
        assert clone.configuration.key == configuration.key
        assert clone.expected_digest == task.expected_digest
        # The clone executes independently: the digest check passes and the
        # original's run counter is untouched (the parent mirrors it).
        result = clone.run()
        assert build_result_digest(result) == task.expected_digest
        assert clone.runs == 1
        assert task.runs == 0

    def test_shard_merge_with_shared_warm_start(self):
        """Two shards warm-starting from one shared build cache stay exact.

        The first sharded campaign populates the system's build cache via
        the shard merge; the second campaign's cells all warm-start from
        that shared cache, so every build task carries an expected digest
        recorded by the *merged* shards — and the science plus the cache
        statistics still match the simulated backend bit for bit.
        """
        sharded_spec = CampaignSpec(
            configuration_keys=tuple(KEYS),
            workers=2,
            shards=2,
            persist_spec=False,
        )
        assert sharded_spec.backend == "sharded"
        simulated_spec = _campaign_spec("simulated", KEYS, workers=2)

        reference_system = _fresh_system(20131029)
        reference_first = reference_system.submit(simulated_spec).result()
        reference_second = reference_system.submit(simulated_spec).result()

        system = _fresh_system(20131029)
        first = system.submit(sharded_spec).result()
        second = system.submit(sharded_spec).result()

        assert first.schedule.shards == 2
        assert first.schedule.backend == "sharded"
        assert first.schedule.slots_per_worker == 1
        # The second campaign is served warm: its cells hit the cache the
        # first campaign's shards merged into.
        assert second.cache_statistics.hits > 0
        warm_tasks = [
            payload for payload in second.payloads.values()
            if isinstance(payload, BuildTask)
        ]
        assert warm_tasks
        assert all(task.expected_digest is not None for task in warm_tasks)
        assert all(task.runs == 1 for task in warm_tasks)
        # Science and cache accounting match the simulated pair exactly.
        assert [run.to_document() for run in first.runs()] == [
            run.to_document() for run in reference_first.runs()
        ]
        assert [run.to_document() for run in second.runs()] == [
            run.to_document() for run in reference_second.runs()
        ]
        assert first.cache_statistics == reference_first.cache_statistics
        assert second.cache_statistics == reference_second.cache_statistics


class TestDocumentRoundTrip:
    """The small fix: to_document()/from_document() round-trip structurally."""

    def test_job_round_trip(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        run = sp_system.validate("HERMES", "SL5_64bit_gcc4.4").run
        for job in run.jobs:
            document = job.to_document()
            restored = ValidationJob.from_document(document)
            assert restored.to_document() == document
            assert restored.status is job.status
            assert restored.kind is job.kind

    def test_job_round_trip_preserves_optional_fields(self):
        from repro.core.testspec import TestKind

        job = ValidationJob(
            job_id="sp-000001",
            test_name="chain-step",
            experiment="TESTEXP",
            configuration_key="SL5_64bit_gcc4.4",
            kind=TestKind.CHAIN_STEP,
            status=JobStatus.SKIPPED,
            started_at=1356998400,
            messages=["previous step failed"],
            chain="reco-chain",
            process="reconstruction",
        )
        restored = ValidationJob.from_document(job.to_document())
        assert restored.chain == "reco-chain"
        assert restored.output_key is None
        assert restored.to_document() == job.to_document()

    def test_run_round_trip(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        run = sp_system.validate("HERMES", "SL5_64bit_gcc4.4").run
        restored = ValidationRun.from_document(run.to_document())
        assert restored.to_document() == run.to_document()
        assert restored.n_jobs == run.n_jobs
        assert restored.overall_status == run.overall_status

    def test_stored_run_metadata_round_trips(self, sp_system, tiny_hermes):
        """Runs can be re-hydrated structurally from the common storage."""
        sp_system.register_experiment(tiny_hermes)
        run = sp_system.validate("HERMES", "SL6_64bit_gcc4.4").run
        document = sp_system.storage.get("results", f"runmeta_{run.run_id}")
        restored = ValidationRun.from_document(document)
        assert restored.statuses_by_test() == run.statuses_by_test()
        assert restored.to_document() == run.to_document()


class TestHistoryRecordingBitIdentity:
    """record_history must never change the scientific output.

    Ingesting cells into the history ledger adds documents to the
    ``history`` namespace only: the run documents, the catalogue records
    and every other namespace stay byte-identical to the seed path, and a
    warm-started installation re-ingesting inherited cells is a no-op.
    """

    def _non_history_documents(self, system):
        from repro.history.ledger import ValidationHistoryLedger

        return {
            namespace: {
                key: system.storage.get(namespace, key)
                for key in system.storage.keys(namespace)
            }
            for namespace in system.storage.namespaces()
            if namespace != ValidationHistoryLedger.NAMESPACE
        }

    def test_run_documents_identical_with_history_on(self):
        seed = 20131029
        baseline_system, baseline = _sequential_baseline(seed, KEYS)
        recorded_system = _fresh_system(seed)
        campaign = recorded_system.submit(
            CampaignSpec(
                experiments=("HERMES",),
                configuration_keys=tuple(KEYS),
                workers=4,
                record_history=True,
                persist_spec=False,
            )
        ).result()
        assert recorded_system.history is not None
        assert len(recorded_system.history) == len(campaign.cells)
        assert [run.to_document() for run in campaign.runs()] == [
            cycle.run.to_document() for cycle in baseline
        ]
        assert [
            record.to_dict() for record in recorded_system.catalog.all()
        ] == [record.to_dict() for record in baseline_system.catalog.all()]
        # Outside the history namespace the storage is byte-identical.
        baseline_documents = {
            namespace: {
                key: baseline_system.storage.get(namespace, key)
                for key in baseline_system.storage.keys(namespace)
            }
            for namespace in baseline_system.storage.namespaces()
        }
        assert self._non_history_documents(recorded_system) == baseline_documents

    @pytest.mark.parametrize("backend", PARITY_BACKENDS)
    def test_history_recording_is_backend_invariant_in_science(self, backend):
        """Per-backend events differ only in the recorded backend name."""
        system = _fresh_system(20131029)
        campaign = system.submit(
            CampaignSpec(
                configuration_keys=tuple(KEYS),
                workers=2,
                backend=backend,
                record_history=True,
                persist_spec=False,
            )
        ).result()
        events = system.history.events()
        assert [event.run_id for event in events] == [
            run.run_id for run in campaign.runs()
        ]
        assert {event.backend for event in events} == {backend}
        scientific = [
            {
                key: value
                for key, value in event.to_dict().items()
                if key != "backend"
            }
            for event in events
        ]
        reference_system = _fresh_system(20131029)
        reference_system.submit(
            CampaignSpec(
                configuration_keys=tuple(KEYS),
                workers=2,
                record_history=True,
                persist_spec=False,
            )
        )
        reference = [
            {
                key: value
                for key, value in event.to_dict().items()
                if key != "backend"
            }
            for event in reference_system.history.events()
        ]
        assert scientific == reference

    def test_warm_start_reingest_is_idempotent(self, tmp_path):
        """Mounting a recorded storage and replaying adds no duplicates."""
        from repro.scheduler.cache import BuildCache
        from repro.storage.common_storage import CommonStorage

        spec = CampaignSpec(
            experiments=("HERMES",),
            configuration_keys=tuple(KEYS),
            record_history=True,
            persist_spec=False,
        )
        cold = _fresh_system(20131029)
        cold.submit(spec)
        cold.persist_build_cache()
        cold.storage.persist(str(tmp_path))

        warm = SPSystem(
            runner_settings=RunnerSettings(
                simulated_seconds_per_test=30.0, seed=20131029
            ),
            storage=CommonStorage.load(str(tmp_path)),
        )
        warm.provision_standard_images()
        warm.register_experiment(build_hermes_experiment(scale=0.2))
        inherited = len(warm.history)
        assert inherited == len(cold.history)
        journal_before = warm.history.journal_records()
        warm.submit(spec)  # fresh run IDs: genuinely new events
        assert len(warm.history) == inherited + 2
        # Re-mounting rebuilds the same indexes without duplication.
        remounted = SPSystem(storage=warm.storage)
        assert len(remounted.history) == inherited + 2
        assert remounted.history.journal_records() == journal_before + 2
