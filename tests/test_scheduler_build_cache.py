"""Tests for the content-hash keyed build cache.

Covers hit/miss accounting, sensitivity of the cache key to compiler, OS and
external-software changes in the environment configuration (including changes
that do NOT alter ``configuration.key``), and eviction when a cached artifact
is removed or overwritten in the :class:`ArtifactStore`.
"""

import pytest

from repro._common import StorageError
from repro.buildsys.builder import PackageBuilder
from repro.core.spsystem import SPSystem
from repro.environment.external import ExternalSoftwareCatalog
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.scheduler.cache import (
    BuildCache,
    CachingPackageBuilder,
    build_cache_key,
)
from repro.storage.artifacts import ArtifactStore


@pytest.fixture()
def inventory():
    return build_inventory(
        "CACHEEXP",
        8,
        quirks=InventoryQuirks(
            n_not_ported_to_newest_abi=0,
            n_legacy_root_api=0,
            n_strictness_limited=0,
            n_32bit_only=0,
        ),
    )


@pytest.fixture()
def package(inventory):
    return inventory.all()[0]


class TestCacheKey:
    def test_key_is_stable(self, package, sl5_64_gcc44):
        assert build_cache_key(package, sl5_64_gcc44) == build_cache_key(
            package, sl5_64_gcc44
        )

    def test_key_sensitive_to_compiler(self, package, standard_configurations):
        sl5_gcc41 = next(
            c for c in standard_configurations if c.key == "SL5_64bit_gcc4.1"
        )
        sl5_gcc44 = next(
            c for c in standard_configurations if c.key == "SL5_64bit_gcc4.4"
        )
        assert build_cache_key(package, sl5_gcc41) != build_cache_key(
            package, sl5_gcc44
        )

    def test_key_sensitive_to_operating_system(
        self, package, sl5_64_gcc44, sl6_64_gcc44
    ):
        assert build_cache_key(package, sl5_64_gcc44) != build_cache_key(
            package, sl6_64_gcc44
        )

    def test_key_sensitive_to_externals_with_same_configuration_key(
        self, package, sl5_64_gcc44
    ):
        """An external upgrade leaves configuration.key unchanged; the cache
        key must still change — it hashes the build inputs, not the label."""
        upgraded = sl5_64_gcc44.with_external(
            ExternalSoftwareCatalog().get("ROOT", "5.32")
        )
        assert upgraded.key == sl5_64_gcc44.key
        assert build_cache_key(package, upgraded) != build_cache_key(
            package, sl5_64_gcc44
        )

    def test_key_sensitive_to_package_requirements(self, package, sl5_64_gcc44):
        from repro.environment.compatibility import SoftwareRequirements

        patched = package.with_requirements(SoftwareRequirements(max_strictness=3))
        assert build_cache_key(patched, sl5_64_gcc44) != build_cache_key(
            package, sl5_64_gcc44
        )


class TestHitMissAccounting:
    def test_miss_then_hit(self, package, sl5_64_gcc44):
        cache = BuildCache(ArtifactStore())
        assert cache.lookup(package, sl5_64_gcc44) is None
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        cache.store(package, sl5_64_gcc44, result)
        cached = cache.lookup(package, sl5_64_gcc44)
        assert cached is not None
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.stores == 1
        assert cache.statistics.hit_rate == 0.5

    def test_replay_is_equal_but_not_aliased(self, package, sl5_64_gcc44):
        cache = BuildCache(ArtifactStore())
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        cache.store(package, sl5_64_gcc44, result)
        replay = cache.lookup(package, sl5_64_gcc44)
        assert replay.status is result.status
        assert replay.diagnostics == result.diagnostics
        assert replay.build_seconds == result.build_seconds
        assert replay.tarball == result.tarball
        # Mutating the replay must not corrupt the cached entry.
        replay.diagnostics.clear()
        assert cache.lookup(package, sl5_64_gcc44).diagnostics == result.diagnostics

    def test_statistics_delta_and_snapshot(self, package, sl5_64_gcc44):
        cache = BuildCache(ArtifactStore())
        before = cache.statistics.snapshot()
        cache.lookup(package, sl5_64_gcc44)
        delta = cache.statistics - before
        assert delta.misses == 1 and delta.hits == 0
        assert cache.statistics.snapshot() is not cache.statistics

    def test_caching_builder_counts_inventory_builds(self, inventory, sl5_64_gcc44):
        cache = BuildCache(ArtifactStore())
        builder = CachingPackageBuilder(cache)
        first = builder.build_inventory(inventory, sl5_64_gcc44)
        assert cache.statistics.hits == 0
        assert cache.statistics.misses == len(first)
        second = builder.build_inventory(inventory, sl5_64_gcc44)
        assert cache.statistics.hits == len(second)
        assert cache.statistics.misses == len(first)

    def test_caching_builder_matches_plain_builder(self, inventory, sl5_64_gcc44):
        plain = PackageBuilder().build_inventory(inventory, sl5_64_gcc44)
        builder = CachingPackageBuilder(BuildCache(ArtifactStore()))
        builder.build_inventory(inventory, sl5_64_gcc44)  # warm the cache
        cached = builder.build_inventory(inventory, sl5_64_gcc44)  # replayed
        for name, expected in plain.results.items():
            replayed = cached.result_for(name)
            assert replayed.status is expected.status
            assert replayed.diagnostics == expected.diagnostics
            assert replayed.tarball == expected.tarball
            assert replayed.build_seconds == expected.build_seconds


class TestArtifactEviction:
    def test_removed_artifact_evicts_entry(self, package, sl5_64_gcc44):
        store = ArtifactStore()
        cache = BuildCache(store)
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        cache.store(package, sl5_64_gcc44, result)
        assert cache.contains(package, sl5_64_gcc44)
        # The artifact is overwritten/retired in the store.
        removed = store.remove(result.tarball.digest)
        assert removed == result.tarball
        assert not cache.contains(package, sl5_64_gcc44)
        assert cache.lookup(package, sl5_64_gcc44) is None
        assert cache.statistics.evictions == 1
        assert cache.statistics.misses == 1

    def test_remove_unknown_digest_raises(self):
        with pytest.raises(StorageError):
            ArtifactStore().remove("no-such-digest")

    def test_cached_artifacts_survive_pruning(self, package, sl5_64_gcc44):
        """Cache-held tarballs carry a label, so prune_unlabelled keeps them."""
        store = ArtifactStore()
        cache = BuildCache(store)
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        cache.store(package, sl5_64_gcc44, result)
        assert store.prune_unlabelled() == 0
        assert cache.lookup(package, sl5_64_gcc44) is not None
        assert store.labels_for(result.tarball.digest) == [BuildCache.ARTIFACT_LABEL]

    def test_failed_build_without_tarball_is_cacheable(self, sl5_64_gcc44):
        """A FAILED result has no tarball; it caches and replays fine."""
        from repro.environment.compatibility import SoftwareRequirements

        inventory = build_inventory("CACHEEXP", 8)
        package = inventory.all()[0].with_requirements(
            SoftwareRequirements(max_strictness=0)
        )
        cache = BuildCache(ArtifactStore())
        result = PackageBuilder().build_package(package, sl5_64_gcc44)
        assert not result.succeeded
        cache.store(package, sl5_64_gcc44, result)
        replay = cache.lookup(package, sl5_64_gcc44)
        assert replay is not None and not replay.succeeded
        assert replay.tarball is None


class TestSystemLevelCache:
    def test_campaign_hit_rate_across_rounds(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        campaign = sp_system.run_campaign(
            ["HERMES"], ["SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4"], rounds=2
        )
        statistics = campaign.cache_statistics
        # Round 1 misses everything, round 2 hits everything.
        assert statistics.hits == statistics.misses
        assert statistics.hit_rate == 0.5
        assert statistics.evictions == 0

    def test_cache_persists_across_campaigns(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        first = sp_system.run_campaign(["HERMES"], ["SL5_64bit_gcc4.4"])
        assert first.cache_statistics.hits == 0
        second = sp_system.run_campaign(["HERMES"], ["SL5_64bit_gcc4.4"])
        assert second.cache_statistics.misses == 0
        assert second.cache_statistics.hits == first.cache_statistics.misses

    def test_single_cell_validate_bypasses_cache(self, sp_system, tiny_hermes):
        """The untouched single-cell path never touches the campaign cache."""
        sp_system.register_experiment(tiny_hermes)
        sp_system.validate("HERMES", "SL5_64bit_gcc4.4")
        assert sp_system.build_cache.statistics.lookups == 0

    def test_cache_budget_enforced_on_live_cache_per_round(
        self, sp_system, tiny_hermes
    ):
        """The budget bounds the in-memory cache during the campaign.

        Previously ``cache_budget_bytes`` only capped the persisted
        snapshot; the live cache could grow unboundedly across rounds.
        """
        from repro.scheduler.spec import CampaignSpec

        sp_system.register_experiment(tiny_hermes)
        unbounded = SPSystem()
        unbounded.provision_standard_images()
        unbounded.register_experiment(tiny_hermes)
        unbounded.submit(CampaignSpec(
            configuration_keys=("SL5_64bit_gcc4.4",), rounds=2,
            persist_spec=False,
        ))
        budget = unbounded.build_cache.total_size_bytes() // 2
        assert budget > 0

        campaign = sp_system.submit(CampaignSpec(
            configuration_keys=("SL5_64bit_gcc4.4",), rounds=2,
            cache_budget_bytes=budget, persist_spec=False,
        )).result()
        cache = sp_system.effective_build_cache()
        assert cache.total_size_bytes() <= budget
        assert campaign.cache_statistics.evictions > 0
        # The budgeted campaign still produced identical run documents.
        assert [run.to_document() for run in campaign.runs()] == [
            run.to_document() for run in unbounded.last_campaign.runs()
        ]
