"""Headless smoke run of every example script.

The examples are living documentation of the public API; when the API moves
under them they must fail fast instead of rotting silently.  Each script is
executed in a subprocess with no arguments (the headless path) and must exit
cleanly.

The module is dual-marked ``examples`` and ``bench``: the documented tier-1
invocation (``-m "not bench"``) skips these alongside the benchmarks, and
``pytest -m examples`` runs exactly this smoke suite.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.examples, pytest.mark.bench]

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_headlessly(script, tmp_path):
    environment = dict(os.environ)
    environment["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + environment["PYTHONPATH"]
        if environment.get("PYTHONPATH")
        else ""
    )
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=tmp_path,
        env=environment,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"--- stdout (tail) ---\n{completed.stdout[-2000:]}\n"
        f"--- stderr (tail) ---\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
