"""Tests for intervention tickets, validated recipes and the freeze manager."""

import pytest

from repro._common import ValidationError
from repro.core.diagnosis import FailureDiagnosisEngine
from repro.core.freeze import FreezeManager, FreezeReason
from repro.core.intervention import (
    InterventionParty,
    InterventionTracker,
    TicketStatus,
)
from repro.core.recipe import DEPLOYMENT_TARGETS, RecipeBook
from repro.core.runner import ValidationRunner
from repro.storage.bookkeeping import EPOCH_2013
from repro.virtualization.hypervisor import Hypervisor


@pytest.fixture()
def failing_cycle(tiny_zeus, sl5_64_gcc44, sl6_64_gcc44):
    """A reference run on SL5 plus a failing run on SL6, with its diagnosis."""
    runner = ValidationRunner()
    reference = runner.run(tiny_zeus, sl5_64_gcc44)
    failing = runner.run(tiny_zeus, sl6_64_gcc44)
    diagnosis = FailureDiagnosisEngine().diagnose_run(
        failing, reference_configuration=sl5_64_gcc44, current_configuration=sl6_64_gcc44
    )
    return runner, reference, failing, diagnosis


class TestInterventionTracker:
    def test_tickets_opened_from_diagnosis(self, failing_cycle):
        _, _, failing, diagnosis = failing_cycle
        tracker = InterventionTracker()
        tickets = tracker.open_from_diagnosis(diagnosis, timestamp=EPOCH_2013)
        assert len(tickets) == len(diagnosis.diagnoses)
        assert len(tracker) == len(tickets)
        for ticket in tickets:
            assert ticket.is_open
            assert ticket.run_id == failing.run_id

    def test_duplicate_tickets_not_opened(self, failing_cycle):
        _, _, _, diagnosis = failing_cycle
        tracker = InterventionTracker()
        first = tracker.open_from_diagnosis(diagnosis, timestamp=EPOCH_2013)
        second = tracker.open_from_diagnosis(diagnosis, timestamp=EPOCH_2013 + 10)
        assert first
        assert second == []

    def test_resolution_lifecycle(self, failing_cycle):
        _, _, _, diagnosis = failing_cycle
        tracker = InterventionTracker()
        tickets = tracker.open_from_diagnosis(diagnosis, timestamp=EPOCH_2013)
        ticket = tickets[0]
        ticket.resolve("ported package to SL6", EPOCH_2013 + 86400, long_standing_bug=True)
        assert ticket.status is TicketStatus.RESOLVED
        assert not ticket.is_open
        assert tracker.long_standing_bugs_found() == 1
        with pytest.raises(ValidationError):
            ticket.resolve("again", EPOCH_2013)

    def test_wont_fix(self, failing_cycle):
        _, _, _, diagnosis = failing_cycle
        tracker = InterventionTracker()
        ticket = tracker.open_from_diagnosis(diagnosis, timestamp=EPOCH_2013)[0]
        ticket.close_wont_fix("platform abandoned", EPOCH_2013)
        assert ticket.status is TicketStatus.WONT_FIX
        with pytest.raises(ValidationError):
            ticket.close_wont_fix("again", EPOCH_2013)

    def test_open_tickets_by_party(self, failing_cycle):
        _, _, _, diagnosis = failing_cycle
        tracker = InterventionTracker()
        tracker.open_from_diagnosis(diagnosis, timestamp=EPOCH_2013)
        it_tickets = tracker.open_tickets(InterventionParty.HOST_IT)
        experiment_tickets = tracker.open_tickets(InterventionParty.EXPERIMENT)
        assert len(it_tickets) + len(experiment_tickets) == len(tracker.open_tickets())

    def test_unknown_ticket_raises(self):
        with pytest.raises(ValidationError):
            InterventionTracker().ticket("ticket-99999")


class TestRecipeBook:
    def test_publish_requires_matching_configuration(self, tiny_hermes, sl5_64_gcc44, sl6_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        book = RecipeBook(runner.storage)
        with pytest.raises(ValidationError):
            book.publish_from_run(run, sl6_64_gcc44)

    def test_publish_requires_full_pass(self, tiny_zeus, sl6_64_gcc44):
        runner = ValidationRunner()
        failing = runner.run(tiny_zeus, sl6_64_gcc44)
        book = RecipeBook(runner.storage)
        with pytest.raises(ValidationError):
            book.publish_from_run(failing, sl6_64_gcc44)

    def test_publish_and_reload(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        book = RecipeBook(runner.storage)
        recipe = book.publish_from_run(run, sl5_64_gcc44)
        assert recipe.pass_fraction == 1.0
        reloaded = book.get(recipe.recipe_id)
        assert reloaded == recipe
        assert book.latest_for("HERMES") == recipe
        assert book.recipes_for("HERMES") == [recipe]

    def test_latest_for_unknown_experiment(self):
        assert RecipeBook().latest_for("GHOST") is None

    def test_deployment_plan(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        book = RecipeBook(runner.storage)
        recipe = book.publish_from_run(run, sl5_64_gcc44)
        plan = book.deployment_plan(recipe.recipe_id, "grid")
        assert plan.target == "grid"
        assert any("SL5" in step for step in plan.steps)
        assert any("ROOT" in step for step in plan.steps)
        assert recipe.recipe_id in plan.rendered()

    def test_deployment_target_validated(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        book = RecipeBook(runner.storage)
        recipe = book.publish_from_run(run, sl5_64_gcc44)
        with pytest.raises(ValidationError):
            book.deployment_plan(recipe.recipe_id, "abacus")
        assert "quantum-computer" in DEPLOYMENT_TARGETS


class TestFreezeManager:
    def _manager_with_run(self, experiment, configuration):
        runner = ValidationRunner()
        run = runner.run(experiment, configuration)
        hypervisor = Hypervisor(storage=runner.storage)
        hypervisor.build_image(configuration)
        book = RecipeBook(runner.storage)
        manager = FreezeManager(hypervisor, book, runner.storage)
        return runner, hypervisor, manager, run

    def test_freeze_conserves_image_and_publishes_recipe(self, tiny_hermes, sl5_64_gcc44):
        _, hypervisor, manager, run = self._manager_with_run(tiny_hermes, sl5_64_gcc44)
        frozen = manager.freeze("HERMES", run, FreezeReason.NO_PERSON_POWER)
        assert manager.is_frozen("HERMES")
        assert manager.frozen_experiments() == ["HERMES"]
        assert hypervisor.conserved_images()
        assert frozen.recipe_id.startswith("recipe-HERMES-")
        assert "unlikely to persist" in frozen.caveat

    def test_freeze_requires_fully_passing_run(self, tiny_zeus, sl6_64_gcc44):
        _, _, manager, run = self._manager_with_run(tiny_zeus, sl6_64_gcc44)
        assert not run.all_passed
        with pytest.raises(ValidationError):
            manager.freeze("ZEUS", run, FreezeReason.STABLE)

    def test_freeze_requires_matching_experiment(self, tiny_hermes, sl5_64_gcc44):
        _, _, manager, run = self._manager_with_run(tiny_hermes, sl5_64_gcc44)
        with pytest.raises(ValidationError):
            manager.freeze("H1", run, FreezeReason.STABLE)

    def test_double_freeze_rejected(self, tiny_hermes, sl5_64_gcc44):
        _, _, manager, run = self._manager_with_run(tiny_hermes, sl5_64_gcc44)
        manager.freeze("HERMES", run, FreezeReason.SATISFACTORY)
        with pytest.raises(ValidationError):
            manager.freeze("HERMES", run, FreezeReason.SATISFACTORY)

    def test_frozen_system_lookup(self, tiny_hermes, sl5_64_gcc44):
        _, _, manager, run = self._manager_with_run(tiny_hermes, sl5_64_gcc44)
        manager.freeze("HERMES", run, FreezeReason.SATISFACTORY)
        assert manager.frozen_system("HERMES").last_validation_run == run.run_id
        with pytest.raises(ValidationError):
            manager.frozen_system("H1")
