"""Tests for validation jobs, runs and the validation runner."""

import pytest

from repro._common import ValidationError
from repro.core.jobs import JobStatus, ValidationJob, ValidationRun
from repro.core.runner import RunnerSettings, ValidationRunner, default_numeric_context
from repro.core.testspec import OutputKind, TestKind, TestOutput
from repro.storage.bookkeeping import EPOCH_2013


def make_job(name, status=JobStatus.PASSED, kind=TestKind.STANDALONE,
             experiment="H1", process="nc_dis"):
    return ValidationJob(
        job_id=f"job-{name}",
        test_name=name,
        experiment=experiment,
        configuration_key="SL5_64bit_gcc4.4",
        kind=kind,
        status=status,
        started_at=EPOCH_2013,
        duration_seconds=10.0,
        process=process,
    )


class TestValidationRun:
    def _run(self):
        return ValidationRun(
            run_id="sp-000001", experiment="H1",
            configuration_key="SL5_64bit_gcc4.4",
            description="test", started_at=EPOCH_2013,
        )

    def test_add_job_enforces_experiment(self):
        run = self._run()
        with pytest.raises(ValidationError):
            run.add_job(make_job("t", experiment="ZEUS"))

    def test_counts_and_status(self):
        run = self._run()
        run.add_job(make_job("a", JobStatus.PASSED))
        run.add_job(make_job("b", JobStatus.FAILED))
        run.add_job(make_job("c", JobStatus.SKIPPED))
        assert run.n_jobs == 3
        assert run.n_passed == 1
        assert run.n_failed == 1
        assert run.n_skipped == 1
        assert not run.all_passed
        assert run.overall_status == "failed"
        assert run.pass_fraction() == pytest.approx(1 / 3)

    def test_all_passed_requires_no_skips(self):
        run = self._run()
        run.add_job(make_job("a", JobStatus.PASSED))
        run.add_job(make_job("b", JobStatus.SKIPPED))
        assert not run.all_passed

    def test_empty_run_status(self):
        assert self._run().overall_status == "empty"
        assert self._run().pass_fraction() == 0.0

    def test_job_lookup(self):
        run = self._run()
        run.add_job(make_job("a"))
        assert run.job_for("a").test_name == "a"
        assert run.has_job("a")
        assert not run.has_job("ghost")
        with pytest.raises(ValidationError):
            run.job_for("ghost")

    def test_statuses_by_process(self):
        run = self._run()
        run.add_job(make_job("a", JobStatus.PASSED, process="nc_dis"))
        run.add_job(make_job("b", JobStatus.FAILED, process="nc_dis"))
        run.add_job(make_job("c", JobStatus.PASSED, process="cc_dis"))
        by_process = run.statuses_by_process()
        assert by_process["nc_dis"] == {"passed": 1, "failed": 1, "skipped": 0}
        assert by_process["cc_dis"]["passed"] == 1

    def test_document_serialisation(self):
        run = self._run()
        run.add_job(make_job("a"))
        document = run.to_document()
        assert document["run_id"] == "sp-000001"
        assert document["n_jobs"] == 1
        assert document["jobs"][0]["test_name"] == "a"


class TestValidationRunner:
    def test_full_run_structure(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        assert run.n_jobs == tiny_hermes.total_test_count()
        assert run.experiment == "HERMES"
        # Compilation jobs come first, one per package.
        compilation_jobs = run.jobs_of_kind(TestKind.COMPILATION)
        assert len(compilation_jobs) == len(tiny_hermes.inventory)
        assert run.all_passed

    def test_run_recorded_in_catalog_and_storage(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44)
        assert runner.catalog.total_runs() == 1
        record = runner.catalog.get(run.run_id)
        assert record.overall_status == "passed"
        # Every job output is retrievable from the common storage.
        for job in run.jobs:
            if job.output_key:
                output = runner.load_output(job.output_key)
                assert isinstance(output, TestOutput)

    def test_unique_ids_across_runs(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        first = runner.run(tiny_hermes, sl5_64_gcc44)
        second = runner.run(tiny_hermes, sl5_64_gcc44)
        first_ids = {job.job_id for job in first.jobs} | {first.run_id}
        second_ids = {job.job_id for job in second.jobs} | {second.run_id}
        assert not first_ids & second_ids

    def test_artifacts_stored_for_successful_builds(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        runner.run(tiny_hermes, sl5_64_gcc44)
        assert len(runner.artifact_store) > 0

    def test_unported_packages_fail_on_sl6(self, tiny_zeus, sl6_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_zeus, sl6_64_gcc44)
        failed_compilations = [
            job for job in run.jobs_of_kind(TestKind.COMPILATION)
            if job.status is JobStatus.FAILED
        ]
        assert failed_compilations, "the ZEUS inventory contains un-ported packages"
        # Tests requiring those packages are skipped, not failed.
        skipped = [job for job in run.jobs if job.status is JobStatus.SKIPPED]
        assert all("failed to build" in job.messages[0] or "failed" in job.messages[0]
                   for job in skipped if job.messages)

    def test_chain_steps_share_state_and_pass(self, tiny_h1, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_h1, sl5_64_gcc44)
        chain_jobs = run.jobs_of_kind(TestKind.CHAIN_STEP)
        assert chain_jobs
        assert all(job.status is JobStatus.PASSED for job in chain_jobs)

    def test_clock_advances_during_run(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        start = runner.clock.now
        runner.run(tiny_hermes, sl5_64_gcc44)
        assert runner.clock.now > start

    def test_description_defaults_and_tags(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner()
        run = runner.run(tiny_hermes, sl5_64_gcc44, description="pre-SL6 reference")
        assert run.description == "pre-SL6 reference"
        assert runner.tag_registry.runs_for("pre-SL6 reference") == [run.run_id]

    def test_runner_settings_disable_catalog(self, tiny_hermes, sl5_64_gcc44):
        runner = ValidationRunner(settings=RunnerSettings(record_in_catalog=False))
        runner.run(tiny_hermes, sl5_64_gcc44)
        assert runner.catalog.total_runs() == 0

    def test_default_numeric_context_depends_on_configuration(
        self, sl5_64_gcc44, sl6_64_gcc44
    ):
        first = default_numeric_context(sl5_64_gcc44)
        second = default_numeric_context(sl6_64_gcc44)
        assert first.label != second.label
        assert first.perturb_scalar(1.0, "x") != second.perturb_scalar(1.0, "x")
