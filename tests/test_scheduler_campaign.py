"""Tests for the campaign scheduler: DAG expansion and pool dispatch.

The scheduler expands a validation matrix into a job DAG (build tasks follow
the package dependency graph, standalone tests are batched, chain steps are
linked sequentially) and simulates its dispatch over a pool of sp-system
client workers supplied with slots by the resource layer.
"""

import pytest

from repro._common import SchedulingError
from repro.core.spsystem import SPSystem
from repro.scheduler.campaign import CampaignScheduler
from repro.scheduler.dag import CampaignDAG, CampaignTask, TaskKind
from repro.scheduler.pool import SimulatedWorkerPool, WorkerFailure


def _task(task_id, duration=10.0, deps=(), kind=TaskKind.BUILD, cell=0):
    return CampaignTask(
        task_id=task_id,
        kind=kind,
        cell_index=cell,
        experiment="TESTEXP",
        configuration_key="SL5_64bit_gcc4.4",
        duration_seconds=duration,
        dependencies=tuple(deps),
    )


class TestCampaignDAG:
    def test_insertion_order_is_topological(self):
        dag = CampaignDAG()
        dag.add(_task("a"))
        dag.add(_task("b", deps=["a"]))
        with pytest.raises(SchedulingError):
            dag.add(_task("c", deps=["missing"]))
        with pytest.raises(SchedulingError):
            dag.add(_task("a"))
        assert [task.task_id for task in dag.tasks()] == ["a", "b"]
        assert "a" in dag and "missing" not in dag

    def test_totals_and_critical_path(self):
        dag = CampaignDAG()
        dag.add(_task("a", duration=10.0))
        dag.add(_task("b", duration=20.0))
        dag.add(_task("c", duration=5.0, deps=["a", "b"]))
        assert dag.total_seconds() == 35.0
        # Longest chain: b (20) -> c (5).
        assert dag.critical_path_seconds() == 25.0
        assert dag.dependents()["a"] == ["c"]


class TestSimulatedWorkerPool:
    def test_independent_tasks_run_concurrently(self):
        dag = CampaignDAG()
        for index in range(4):
            dag.add(_task(f"t{index}", duration=100.0))
        # 2 workers x 2 slots: all four tasks run at once.
        schedule = SimulatedWorkerPool(n_workers=2).execute(dag)
        assert schedule.makespan_seconds == 100.0
        assert schedule.sequential_seconds == 400.0
        assert schedule.speedup == 4.0
        assert schedule.peak_concurrent_tasks == 4

    def test_dependencies_are_honoured(self):
        dag = CampaignDAG()
        dag.add(_task("build", duration=50.0))
        dag.add(_task("test", duration=30.0, deps=["build"], kind=TaskKind.TEST_BATCH))
        schedule = SimulatedWorkerPool(n_workers=4).execute(dag)
        by_id = {a.task_id: a for a in schedule.assignments}
        assert by_id["test"].start_seconds >= by_id["build"].end_seconds
        assert schedule.makespan_seconds == 80.0

    def test_empty_dag(self):
        schedule = SimulatedWorkerPool(n_workers=2).execute(CampaignDAG())
        assert schedule.makespan_seconds == 0.0
        assert schedule.assignments == []

    def test_deterministic_assignment(self):
        def run_once():
            dag = CampaignDAG()
            for index in range(7):
                dag.add(_task(f"t{index}", duration=10.0 + index))
            return SimulatedWorkerPool(n_workers=2).execute(dag).assignments

        assert run_once() == run_once()

    def test_invalid_configurations_rejected(self):
        with pytest.raises(SchedulingError):
            SimulatedWorkerPool(n_workers=0)
        with pytest.raises(SchedulingError):
            SimulatedWorkerPool(n_workers=2, failures=[WorkerFailure(5, 10.0)])
        with pytest.raises(SchedulingError):
            WorkerFailure(0, -1.0)


class TestCampaignScheduler:
    def test_campaign_over_full_matrix(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        campaign = sp_system.run_campaign(workers=4)
        assert campaign.n_cells == 5
        assert sp_system.total_runs() == 5
        assert sp_system.last_campaign is campaign
        # Every cell contributed build, batch and chain tasks.
        counts = campaign.dag.counts_by_kind()
        assert set(counts) == {"build", "test-batch", "chain-step"}
        # Cells are independent, so pooling beats the sequential makespan.
        assert campaign.schedule.makespan_seconds < campaign.schedule.sequential_seconds
        assert campaign.schedule.makespan_seconds >= campaign.dag.critical_path_seconds()
        assert "build cache" in campaign.render_text()

    def test_batching_of_standalone_tests(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        n_standalone = len(tiny_hermes.standalone_tests)
        campaign = sp_system.run_campaign(
            ["HERMES"], ["SL5_64bit_gcc4.4"], batch_size=2
        )
        batches = [
            task for task in campaign.dag.tasks() if task.kind is TaskKind.TEST_BATCH
        ]
        assert sum(batch.n_tests for batch in batches) == n_standalone
        assert all(batch.n_tests <= 2 for batch in batches)
        assert len(batches) == (n_standalone + 1) // 2

    def test_task_durations_match_executed_jobs(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        campaign = sp_system.run_campaign(["HERMES"], ["SL5_64bit_gcc4.4"])
        run = campaign.cells[0].run
        assert campaign.dag.total_seconds() == pytest.approx(
            run.total_duration_seconds()
        )

    def test_validate_everywhere_returns_cycle_results(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        results = sp_system.validate_everywhere("HERMES", workers=2)
        assert len(results) == 5
        assert [r.run.configuration_key for r in results] == sorted(
            c.key for c in sp_system.configurations()
        )

    def test_validate_all_experiments_groups_by_experiment(
        self, sp_system, tiny_hermes, tiny_zeus
    ):
        sp_system.register_experiment(tiny_hermes)
        sp_system.register_experiment(tiny_zeus)
        results = sp_system.validate_all_experiments(
            ["SL5_64bit_gcc4.4"], workers=2
        )
        assert sorted(results) == ["HERMES", "ZEUS"]
        assert all(len(cycles) == 1 for cycles in results.values())

    def test_empty_configuration_list(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        assert sp_system.validate_everywhere("HERMES", []) == []
        assert sp_system.total_runs() == 0

    def test_rejects_bad_parameters(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        with pytest.raises(SchedulingError):
            CampaignScheduler(sp_system, workers=0)
        with pytest.raises(SchedulingError):
            CampaignScheduler(sp_system, batch_size=0)
        with pytest.raises(SchedulingError):
            CampaignScheduler(sp_system).run(rounds=0)

    def test_builder_restored_after_campaign(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        original = sp_system.runner.builder
        sp_system.run_campaign(["HERMES"], ["SL5_64bit_gcc4.4"])
        assert sp_system.runner.builder is original

    def test_builder_restored_after_failing_campaign(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        original = sp_system.runner.builder
        with pytest.raises(Exception):
            sp_system.run_campaign(["HERMES"], ["no-such-configuration"])
        assert sp_system.runner.builder is original

    def test_multi_round_campaign(self, sp_system, tiny_hermes):
        sp_system.register_experiment(tiny_hermes)
        campaign = sp_system.run_campaign(
            ["HERMES"], ["SL5_64bit_gcc4.4"], rounds=3
        )
        assert campaign.n_cells == 3
        assert sp_system.total_runs() == 3
        # Rounds two and three replay cached builds.
        assert campaign.cache_statistics.hits > 0


class TestCampaignCli:
    def test_campaign_command_with_workers(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main([
            "campaign", "--scale", "0.1", "--workers", "4", "--rounds", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "campaign schedule and build-cache summary" in output
        assert "build cache hits" in output
        assert "total validation runs recorded" in output
