"""The campaign lifecycle event bus: registry, plugins, policies, ticketing.

The bus decouples everything that *reacts* to a campaign (history
ingestion, regression alerting, JSONL event logs, deadline aborts) from
the scheduler that runs it.  These tests pin the registry semantics
(ordering, scoping, sequence numbering), the observer-vs-policy contract,
the backend-independent event stream, the deadline-abort behaviour on all
four backends, and the full alerting story: an environment evolution flips
a cell, the next campaign's ``regression_detected`` event opens a
persisted intervention ticket naming the suspected evolution, and the CLI
lists and resolves it.
"""

import json
import os

import pytest

from repro._common import SchedulingError
from repro.cli import main as cli_main
from repro.core.runner import RunnerSettings
from repro.core.spsystem import SPSystem
from repro.environment.evolution import EVENT_EXTERNAL_RELEASE, EnvironmentEvent
from repro.environment.external import ExternalSoftwareCatalog
from repro.experiments import build_hermes_experiment
from repro.plugins import CAMPAIGN_PLUGINS, InterventionStore, campaign_plugin
from repro.reporting.summary import (
    campaign_schedule_rows,
    intervention_rows,
    lifecycle_event_rows,
)
from repro.scheduler.lifecycle import (
    EVENT_BUDGET_EXCEEDED,
    EVENT_CAMPAIGN_FINISHED,
    EVENT_CELL_COMPLETED,
    EVENT_DEADLINE_EXCEEDED,
    EVENT_EVOLUTION_RECORDED,
    EVENT_REGRESSION_DETECTED,
    LIFECYCLE_EVENTS,
    DeadlineAbortPolicy,
    EarlyStopPolicy,
    EarlyStopRequested,
    FileEventSink,
    LifecycleEvent,
    LifecycleObserver,
    PluginRegistry,
    WebhookEventSink,
)
from repro.scheduler.spec import CampaignSpec

KEYS = ("SL5_64bit_gcc4.4", "SL6_64bit_gcc4.4")
BACKENDS = ("simulated", "threads", "processes", "sharded")

#: The two cells of the alerting end-to-end story: ROOT 6.02 lands on the
#: established SL5 platform (flipping the gcc 4.4 cell — HERMES uses the
#: CINT interfaces ROOT 6 removed) while the gcc 4.1 sibling stays green.
ALERT_KEYS = ("SL5_64bit_gcc4.4", "SL5_64bit_gcc4.1")


def _fresh_system(seed=20131029, scale=0.2):
    system = SPSystem(
        runner_settings=RunnerSettings(simulated_seconds_per_test=30.0, seed=seed)
    )
    system.provision_standard_images()
    system.register_experiment(build_hermes_experiment(scale=scale))
    return system


class Recorder(LifecycleObserver):
    """Test observer appending ``(label, event_name, sequence)`` tuples."""

    def __init__(self, subscribed=LIFECYCLE_EVENTS, label="recorder", log=None):
        self.name = label
        self.events = frozenset(subscribed)
        self.log = log if log is not None else []

    def handle(self, event, context):
        self.log.append((self.name, event.name, event.sequence))


class StopEverything(EarlyStopPolicy):
    name = "stop-everything"

    def should_stop(self, event, context):
        return f"stopping on {event.name}"


class TestPluginRegistry:
    def test_emit_numbers_and_records_events(self):
        registry = PluginRegistry()
        first = registry.emit(EVENT_CELL_COMPLETED, campaign_id="campaign-0001")
        second = registry.emit(
            EVENT_CAMPAIGN_FINISHED, payload={"cells": 2}
        )
        assert (first.sequence, second.sequence) == (1, 2)
        assert registry.events == [first, second]
        assert second.payload == {"cells": 2}
        assert second.to_dict() == {
            "sequence": 2,
            "event": "campaign_finished",
            "campaign_id": None,
            "payload": {"cells": 2},
        }

    def test_unknown_event_name_raises(self):
        registry = PluginRegistry()
        with pytest.raises(SchedulingError, match="unknown lifecycle event"):
            registry.emit("campaign_started")
        assert registry.events == []

    def test_observers_notified_in_registration_order(self):
        registry = PluginRegistry()
        log = []
        registry.add_observer(Recorder(label="first", log=log))
        registry.add_observer(Recorder(label="second", log=log))
        registry.emit(EVENT_CELL_COMPLETED)
        assert log == [("first", "cell_completed", 1), ("second", "cell_completed", 1)]

    def test_subscription_filter(self):
        registry = PluginRegistry()
        observer = registry.add_observer(
            Recorder(subscribed={EVENT_CAMPAIGN_FINISHED}, label="finisher")
        )
        registry.emit(EVENT_CELL_COMPLETED)
        registry.emit(EVENT_CAMPAIGN_FINISHED)
        assert [name for _label, name, _seq in observer.log] == [
            "campaign_finished"
        ]

    def test_scoped_plugins_are_removed_even_on_failure(self):
        registry = PluginRegistry()
        permanent = registry.add_observer(Recorder(label="permanent"))
        scoped_observer = Recorder(label="scoped")
        scoped_policy = StopEverything()
        with pytest.raises(RuntimeError):
            with registry.scoped(
                observers=[scoped_observer], policies=[scoped_policy]
            ):
                assert registry.observers() == (permanent, scoped_observer)
                assert registry.policies() == (scoped_policy,)
                raise RuntimeError("the campaign failed")
        assert registry.observers() == (permanent,)
        assert registry.policies() == ()

    def test_policy_stops_after_observers_saw_the_event(self):
        registry = PluginRegistry()
        observer = registry.add_observer(Recorder())
        registry.add_policy(StopEverything())
        with pytest.raises(EarlyStopRequested) as excinfo:
            registry.emit(EVENT_DEADLINE_EXCEEDED)
        # The observers were notified before the stop fired ...
        assert [name for _label, name, _seq in observer.log] == [
            "deadline_exceeded"
        ]
        # ... the event is recorded, and the request carries the context.
        assert registry.events[-1].name == "deadline_exceeded"
        assert excinfo.value.reason == "stopping on deadline_exceeded"
        assert excinfo.value.policy.name == "stop-everything"
        # EarlyStopRequested honours the established failure contract.
        assert isinstance(excinfo.value, SchedulingError)

    def test_recent_limits_the_event_tail(self):
        registry = PluginRegistry()
        for _ in range(5):
            registry.emit(EVENT_CELL_COMPLETED)
        assert [event.sequence for event in registry.recent(2)] == [4, 5]
        assert registry.recent() == registry.events


class TestDeadlineAbortPolicy:
    def _deadline_event(self):
        return LifecycleEvent(
            name=EVENT_DEADLINE_EXCEEDED,
            sequence=1,
            payload={
                "backend": "threads",
                "deadline_seconds": 1.5,
                "elapsed_seconds": 2.5,
            },
        )

    def test_ignores_every_other_event(self):
        policy = DeadlineAbortPolicy()
        for name in sorted(LIFECYCLE_EVENTS - {EVENT_DEADLINE_EXCEEDED}):
            event = LifecycleEvent(name=name, sequence=1)
            assert policy.should_stop(event, None) is None

    def test_names_the_deadline_and_backend_in_the_reason(self):
        reason = DeadlineAbortPolicy().should_stop(self._deadline_event(), None)
        assert "1.5" in reason
        assert "2.5" in reason
        assert "threads" in reason


class TestEventSinks:
    def test_file_sink_appends_sorted_jsonl(self, tmp_path):
        path = os.path.join(str(tmp_path), "logs", "events.jsonl")
        registry = PluginRegistry()
        registry.add_observer(FileEventSink(path))
        registry.emit(EVENT_CELL_COMPLETED, campaign_id="campaign-0001",
                      payload={"cell_index": 0, "passed": True})
        registry.emit(EVENT_CAMPAIGN_FINISHED, campaign_id="campaign-0001")
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert [line["event"] for line in lines] == [
            "cell_completed", "campaign_finished",
        ]
        assert lines[0]["payload"] == {"cell_index": 0, "passed": True}
        assert [line["sequence"] for line in lines] == [1, 2]
        # The serialisation is canonical (sorted keys): the log diffs well.
        with open(path) as handle:
            first_raw = handle.readline().strip()
        assert first_raw == json.dumps(lines[0], sort_keys=True)

    def test_webhook_sink_posts_the_event_document(self):
        delivered = []
        sink = WebhookEventSink(
            "https://ops.example/hook",
            transport=lambda url, body: delivered.append((url, body)),
        )
        registry = PluginRegistry()
        registry.add_observer(sink)
        registry.emit(EVENT_CAMPAIGN_FINISHED, payload={"cells": 3})
        [(url, body)] = delivered
        assert url == "https://ops.example/hook"
        assert json.loads(body.decode("utf-8"))["payload"] == {"cells": 3}

    def test_webhook_failure_becomes_a_scheduling_error(self):
        def broken_transport(url, body):
            raise ConnectionError("refused")

        sink = WebhookEventSink("https://down.example", transport=broken_transport)
        registry = PluginRegistry()
        registry.add_observer(sink)
        with pytest.raises(SchedulingError, match="webhook delivery"):
            registry.emit(EVENT_CAMPAIGN_FINISHED)


class TestCampaignSpecLifecycleFields:
    def test_round_trip_preserves_the_lifecycle_fields(self):
        spec = CampaignSpec(
            configuration_keys=KEYS,
            deadline_seconds=120.0,
            on_deadline="abort",
            plugins=["regression-alerts"],
            event_log="/tmp/events.jsonl",
            persist_spec=False,
        )
        replayed = CampaignSpec.from_dict(spec.to_dict())
        assert replayed == spec
        assert replayed.plugins == ("regression-alerts",)
        assert replayed.on_deadline == "abort"
        assert replayed.event_log == "/tmp/events.jsonl"

    def test_unknown_on_deadline_mode_rejected(self):
        spec = CampaignSpec(on_deadline="panic", persist_spec=False)
        with pytest.raises(SchedulingError, match="unknown on_deadline mode"):
            spec.validate()

    def test_abort_mode_needs_a_deadline(self):
        spec = CampaignSpec(on_deadline="abort", persist_spec=False)
        with pytest.raises(SchedulingError, match="needs a deadline"):
            spec.validate()

    def test_unknown_plugin_name_rejected(self):
        spec = CampaignSpec(plugins=("no-such-plugin",), persist_spec=False)
        with pytest.raises(SchedulingError, match="unknown campaign plugin"):
            spec.validate()

    def test_bare_string_plugins_rejected(self):
        spec = CampaignSpec(plugins="regression-alerts", persist_spec=False)
        with pytest.raises(SchedulingError, match="plugins"):
            spec.validate()

    def test_campaign_plugin_factory_rejects_unknown_names(self):
        system = _fresh_system()
        assert "regression-alerts" in CAMPAIGN_PLUGINS
        with pytest.raises(SchedulingError, match="unknown campaign plugin"):
            campaign_plugin("no-such-plugin", system)


class TestEventSequenceParity:
    """All four backends emit the identical event stream.

    ``cell_completed`` is emitted from the deterministic cell pass, not
    from the wall-clock dispatch, so its order is backend-independent by
    construction; ``campaign_finished`` always comes last.  The only
    allowed difference is the backend name inside the finish payload.
    """

    def _event_stream(self, backend):
        system = _fresh_system()
        system.submit(
            CampaignSpec(
                configuration_keys=KEYS,
                workers=2,
                backend=backend,
                persist_spec=False,
            )
        )
        return [
            (
                event.name,
                event.campaign_id,
                {
                    key: value
                    for key, value in event.payload.items()
                    if key != "backend"
                },
            )
            for event in system.lifecycle.events
        ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_emits_the_simulated_event_stream(self, backend):
        reference = self._event_stream("simulated")
        stream = self._event_stream(backend)
        assert stream == reference
        names = [name for name, _campaign, _payload in stream]
        assert names.count(EVENT_CELL_COMPLETED) == len(KEYS)
        assert names[-1] == EVENT_CAMPAIGN_FINISHED
        # Each cell event names its run and verdict.
        for name, campaign_id, payload in stream:
            assert campaign_id == "campaign-0001"
            if name == EVENT_CELL_COMPLETED:
                assert set(payload) == {
                    "cell_index", "experiment", "configuration_key",
                    "run_id", "passed",
                }


class TestDeadlineAbortEndToEnd:
    """``on_deadline='abort'`` cancels queued work on every backend.

    The deterministic cell pass runs before dispatch, so an abort can
    never lose science: the catalogue records of the aborted campaign stay
    bit-identical to a full simulated run.  The simulated backend crosses
    its deadline on the simulated timeline; the executing backends use a
    nanoscale wall-clock deadline so the check fires deterministically.
    """

    def _abort_spec(self, backend, deadline):
        return CampaignSpec(
            configuration_keys=KEYS,
            workers=1,
            backend=backend,
            deadline_seconds=deadline,
            on_deadline="abort",
            persist_spec=False,
        )

    @pytest.mark.parametrize(
        "backend,deadline",
        [
            ("simulated", 1.0),
            ("threads", 1e-9),
            ("processes", 1e-9),
            ("sharded", 1e-9),
        ],
    )
    def test_abort_cancels_queued_cells_and_keeps_completed_science(
        self, backend, deadline
    ):
        reference_system = _fresh_system()
        reference_system.submit(
            CampaignSpec(configuration_keys=KEYS, workers=1, persist_spec=False)
        )
        system = _fresh_system()
        with pytest.raises(
            SchedulingError,
            match=f"campaign aborted on the {backend} backend",
        ) as excinfo:
            system.submit(self._abort_spec(backend, deadline))
        assert "cancelled" in str(excinfo.value)
        names = [event.name for event in system.lifecycle.events]
        assert names.count(EVENT_DEADLINE_EXCEEDED) == 1
        assert EVENT_CAMPAIGN_FINISHED not in names
        # The already-recorded run documents are untouched by the abort.
        assert [record.to_dict() for record in system.catalog.all()] == [
            record.to_dict() for record in reference_system.catalog.all()
        ]

    def test_report_mode_keeps_the_historical_behaviour(self):
        """Without the abort policy a crossed deadline only reports."""
        system = _fresh_system()
        campaign = system.submit(
            CampaignSpec(
                configuration_keys=KEYS,
                workers=1,
                deadline_seconds=1.0,
                persist_spec=False,
            )
        ).result()
        names = [event.name for event in system.lifecycle.events]
        assert EVENT_DEADLINE_EXCEEDED in names
        assert names[-1] == EVENT_CAMPAIGN_FINISHED
        assert campaign.schedule.late_cells()


class TestBudgetExceededEvent:
    def test_cache_eviction_is_announced_on_the_bus(self):
        system = _fresh_system()
        system.submit(
            CampaignSpec(
                configuration_keys=KEYS,
                workers=2,
                cache_budget_bytes=1,
                persist_spec=False,
            )
        )
        budget_events = [
            event
            for event in system.lifecycle.events
            if event.name == EVENT_BUDGET_EXCEEDED
        ]
        assert budget_events
        assert budget_events[0].payload["budget_bytes"] == 1
        assert budget_events[0].payload["evicted_entries"] > 0


class TestEvolutionRecordedEvent:
    def test_replace_configuration_announces_the_swap(self):
        system = _fresh_system()
        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        evolved = system.configuration("SL5_64bit_gcc4.4").with_external(root6)
        evolution = EnvironmentEvent(
            year=2014,
            kind=EVENT_EXTERNAL_RELEASE,
            subject="ROOT-6.02",
            detail="ROOT 6.02 installed on the SL5 platform",
        )
        system.replace_configuration(evolved, event=evolution)
        [event] = [
            event
            for event in system.lifecycle.events
            if event.name == EVENT_EVOLUTION_RECORDED
        ]
        assert event.payload["configuration_key"] == "SL5_64bit_gcc4.4"
        assert event.payload["subject"] == "ROOT-6.02"

    def test_event_is_stamped_onto_a_mounted_ledger(self):
        system = _fresh_system()
        system.submit(
            CampaignSpec(
                configuration_keys=("SL5_64bit_gcc4.4",),
                record_history=True,
                persist_spec=False,
            )
        )
        assert system.history is not None
        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        evolved = system.configuration("SL5_64bit_gcc4.4").with_external(root6)
        evolution = EnvironmentEvent(
            year=2014,
            kind=EVENT_EXTERNAL_RELEASE,
            subject="ROOT-6.02",
            detail="ROOT 6.02 installed on the SL5 platform",
        )
        system.clock.advance_days(1)
        system.replace_configuration(evolved, event=evolution)
        [record] = system.history.evolution_records()
        assert record.subject == "ROOT-6.02"
        assert record.logical_timestamp == system.clock.now


class TestRegressionAlertingEndToEnd:
    """The acceptance story: evolution → regression → persisted ticket → CLI.

    A recorded campaign passes, ROOT 6.02 lands on the SL5 platform via
    :meth:`SPSystem.replace_configuration` (announced on the bus and
    stamped onto the ledger), and the next campaign — submitted with
    ``plugins=("regression-alerts",)`` — fires ``regression_detected``,
    opens an intervention ticket naming the suspected evolution, and
    persists it; the new CLI lists and resolves the ticket, and
    ``history regressions`` gates a cron job through its exit code.
    """

    def _run_story(self, tmp_path):
        system = SPSystem(
            runner_settings=RunnerSettings(simulated_seconds_per_test=30.0)
        )
        system.provision_standard_images()
        system.register_experiment(build_hermes_experiment(scale=0.3))
        spec = CampaignSpec(
            experiments=("HERMES",),
            configuration_keys=ALERT_KEYS,
            record_history=True,
            persist_spec=False,
        )
        cold = system.submit(spec)
        assert all(cell.result.successful for cell in cold.result().cells)

        root6 = ExternalSoftwareCatalog().get("ROOT", "6.02")
        evolved = system.configuration("SL5_64bit_gcc4.4").with_external(root6)
        evolution = EnvironmentEvent(
            year=2014,
            kind=EVENT_EXTERNAL_RELEASE,
            subject="ROOT-6.02",
            detail="removes the CINT interpreter interfaces",
        )
        system.clock.advance_days(1)
        system.replace_configuration(evolved, event=evolution)
        system.clock.advance_days(6)

        alerting_spec = CampaignSpec.from_dict(
            dict(spec.to_dict(), plugins=["regression-alerts"])
        )
        after = system.submit(alerting_spec)
        assert not after.result().all_passed
        storage_dir = str(tmp_path / "storage")
        system.storage.persist(storage_dir)
        return system, storage_dir

    def test_regression_opens_a_persisted_ticket_naming_the_evolution(
        self, tmp_path
    ):
        system, _storage_dir = self._run_story(tmp_path)
        detected = [
            event
            for event in system.lifecycle.events
            if event.name == EVENT_REGRESSION_DETECTED
        ]
        [event] = detected
        assert event.payload["experiment"] == "HERMES"
        assert event.payload["configuration_key"] == "SL5_64bit_gcc4.4"
        assert "ROOT-6.02" in event.payload["suspected_change"]
        assert event.payload["fingerprint_changed"] is True

        store = InterventionStore(system.storage)
        [ticket] = store.open_tickets()
        assert ticket.experiment == "HERMES"
        assert ticket.configuration_key == "SL5_64bit_gcc4.4"
        assert "ROOT-6.02" in ticket.suspected_change
        # A fingerprint flip is direct evidence the environment moved:
        # the ticket routes to the host IT department.
        from repro.core.intervention import InterventionParty
        from repro.environment.compatibility import IssueCategory

        assert ticket.category is IssueCategory.EXTERNAL_DEPENDENCY
        assert ticket.party is InterventionParty.HOST_IT

    def test_persisting_regression_does_not_open_a_duplicate_ticket(
        self, tmp_path
    ):
        system, _storage_dir = self._run_story(tmp_path)
        alerting_spec = CampaignSpec(
            experiments=("HERMES",),
            configuration_keys=ALERT_KEYS,
            record_history=True,
            plugins=("regression-alerts",),
            persist_spec=False,
        )
        system.clock.advance_days(1)
        system.submit(alerting_spec)
        store = InterventionStore(system.storage)
        assert len(store.open_tickets()) == 1
        # The second campaign still announced the (ongoing) regression.
        detected = [
            event
            for event in system.lifecycle.events
            if event.name == EVENT_REGRESSION_DETECTED
        ]
        assert len(detected) == 2

    def test_cli_lists_and_resolves_the_ticket(self, tmp_path, capsys):
        system, storage_dir = self._run_story(tmp_path)
        store = InterventionStore(system.storage)
        [ticket] = store.open_tickets()

        assert cli_main(["interventions", "list", "--storage-dir", storage_dir]) == 0
        output = capsys.readouterr().out
        assert "1 open ticket(s) of 1 recorded" in output
        assert ticket.ticket_id in output
        assert "ROOT-6.02" in output

        assert cli_main([
            "interventions", "resolve", "--storage-dir", storage_dir,
            "--ticket", ticket.ticket_id,
            "--resolution", "ported HERMES to the ROOT 6 interfaces",
        ]) == 0
        assert f"resolved {ticket.ticket_id}" in capsys.readouterr().out

        assert cli_main(["interventions", "list", "--storage-dir", storage_dir]) == 0
        assert "0 open ticket(s) of 1 recorded" in capsys.readouterr().out
        # --all still shows the resolved ticket.
        assert cli_main([
            "interventions", "list", "--storage-dir", storage_dir, "--all",
        ]) == 0
        assert ticket.ticket_id in capsys.readouterr().out
        # The resolution survived on disk.
        from repro.core.intervention import TicketStatus
        from repro.storage.common_storage import CommonStorage

        reloaded = SPSystem().restore_interventions(
            CommonStorage.load(
                storage_dir, namespaces=[InterventionStore.NAMESPACE]
            )
        )
        assert reloaded.ticket(ticket.ticket_id).status is TicketStatus.RESOLVED

    def test_history_regressions_exit_code_gates_cron_jobs(
        self, tmp_path, capsys
    ):
        _system, storage_dir = self._run_story(tmp_path)
        assert cli_main([
            "history", "regressions", "--storage-dir", storage_dir,
        ]) == 1
        verbose = capsys.readouterr().out
        assert "1 regression(s)" in verbose
        assert "ROOT-6.02" in verbose
        assert cli_main([
            "history", "regressions", "--storage-dir", storage_dir, "--quiet",
        ]) == 1
        quiet = capsys.readouterr().out
        assert quiet.count("\n") == 1
        assert "1 regression(s)" in quiet

    def test_history_regressions_exit_zero_when_healthy(self, tmp_path, capsys):
        system = _fresh_system()
        system.submit(
            CampaignSpec(
                configuration_keys=("SL5_64bit_gcc4.4",),
                record_history=True,
                persist_spec=False,
            )
        )
        storage_dir = str(tmp_path / "healthy")
        system.storage.persist(storage_dir)
        assert cli_main([
            "history", "regressions", "--storage-dir", storage_dir, "--quiet",
        ]) == 0
        assert "0 regression(s)" in capsys.readouterr().out


class TestInterventionStore:
    def test_restore_interventions_mirrors_restore_history(self):
        from repro._common import StorageError

        empty = SPSystem()
        assert empty.restore_interventions(missing_ok=True) is None
        with pytest.raises(StorageError, match="no persisted interventions"):
            empty.restore_interventions()

    def test_ticket_counter_resumes_past_persisted_tickets(self):
        from repro.environment.compatibility import IssueCategory
        from repro.core.intervention import InterventionParty
        from repro.storage.common_storage import CommonStorage

        storage = CommonStorage()
        store = InterventionStore(storage)
        first = store.tracker.open_ticket(
            run_id="sp-000001",
            experiment="HERMES",
            test_name="campaign-regression",
            category=IssueCategory.EXPERIMENT_SOFTWARE,
            party=InterventionParty.EXPERIMENT,
            opened_at=100,
            description="first",
            configuration_key="SL5_64bit_gcc4.4",
        )
        store._persist(first)
        # A second store over the same storage replays the document and
        # never re-issues the ID.
        replayed = InterventionStore(storage)
        assert [ticket.ticket_id for ticket in replayed.tickets()] == [
            first.ticket_id
        ]
        second = replayed.tracker.open_ticket(
            run_id="sp-000002",
            experiment="HERMES",
            test_name="campaign-regression",
            category=IssueCategory.EXPERIMENT_SOFTWARE,
            party=InterventionParty.EXPERIMENT,
            opened_at=200,
            description="second",
        )
        assert second.ticket_id != first.ticket_id
        assert replayed.next_timestamp() == 201


class TestDeadlineOverrideReporting:
    """Satellite: ``late_cells(deadline_seconds=...)`` override in reports."""

    def _campaign(self):
        system = _fresh_system()
        return system, system.submit(
            CampaignSpec(configuration_keys=KEYS, workers=2, persist_spec=False)
        ).result()

    def test_schedule_rows_honour_the_override(self):
        _system, campaign = self._campaign()
        assert campaign.schedule.deadline_seconds is None
        # Without an override there is no deadline verdict at all ...
        quantities = [
            row["quantity"] for row in campaign_schedule_rows(campaign.schedule)
        ]
        assert "deadline verdict" not in quantities
        # ... a generous what-if deadline is met ...
        generous = {
            row["quantity"]: row["value"]
            for row in campaign_schedule_rows(
                campaign.schedule,
                deadline_seconds=campaign.schedule.makespan_seconds + 1,
            )
        }
        assert generous["deadline verdict"] == "met"
        # ... and a tight one reports the late cells.
        tight = {
            row["quantity"]: row["value"]
            for row in campaign_schedule_rows(
                campaign.schedule, deadline_seconds=1.0
            )
        }
        assert tight["deadline seconds"] == "1"
        assert tight["deadline verdict"].startswith("missed")

    def test_campaign_page_honours_the_override_and_renders_lifecycle(self):
        system, campaign = self._campaign()
        from repro.reporting.webpages import StatusPageGenerator

        pages = StatusPageGenerator(system.storage, system.catalog)
        page = pages.campaign_page(
            campaign,
            deadline_seconds=1.0,
            events=lifecycle_event_rows(system.lifecycle.recent(limit=5)),
        )
        assert "deadline 1 s" in page
        assert "missed" in page
        assert "Fired lifecycle events" in page
        assert "campaign_finished" in page

    def test_intervention_and_event_rows_shapes(self):
        system, _campaign = self._campaign()
        rows = lifecycle_event_rows(system.lifecycle.events)
        assert rows
        assert set(rows[0]) == {"seq", "event", "campaign", "payload"}
        assert rows[-1]["event"] == EVENT_CAMPAIGN_FINISHED
        assert intervention_rows([]) == []


class TestServicePluginPassThrough:
    def test_due_validations_carry_the_service_plugins(self):
        from repro.core.service import RegularValidationService

        system = _fresh_system()
        service = RegularValidationService(
            system, record_history=True, plugins=("regression-alerts",)
        )
        service.schedule("HERMES", "SL5_64bit_gcc4.4", "30 2 * * *")
        report = service.advance_days(1)
        assert report.n_cycles == 1
        names = [event.name for event in system.lifecycle.events]
        assert EVENT_CELL_COMPLETED in names
        assert EVENT_CAMPAIGN_FINISHED in names
        # No regression on a first, passing validation: no ticket opened.
        assert not InterventionStore.exists_in(system.storage)


class TestReopenWindow:
    """Alert dedupe across time: resolved tickets re-open on recurrence.

    ``InterventionStore.open_from_finding`` with a ``reopen_window``
    re-opens a cell's recently *resolved* ticket instead of opening a
    duplicate — the recurrence is evidence the fix did not hold, and the
    re-opened ticket keeps its identity (with an advancing
    ``reopen_count``) in the reports.  Resolutions older than the window,
    wont-fix closures, and the ``reopen_window=None`` legacy behaviour all
    open fresh tickets; open tickets still dedupe as before.
    """

    WINDOW = 7 * 24 * 3600

    def _finding(self, experiment="HERMES", key="SL5_64bit_gcc4.4"):
        from repro.history.regressions import CLASS_REGRESSED, RegressionFinding

        return RegressionFinding(
            experiment=experiment,
            configuration_key=key,
            classification=CLASS_REGRESSED,
            n_events=2,
            n_flips=1,
            current_status="broken",
        )

    def _store_with_resolved_ticket(self, resolved_at=200):
        from repro.storage.common_storage import CommonStorage

        storage = CommonStorage()
        store = InterventionStore(storage)
        ticket = store.open_from_finding(self._finding(), timestamp=100)
        store.resolve(ticket.ticket_id, "ported to ROOT 6", timestamp=resolved_at)
        return storage, store, ticket

    def test_reopen_flips_a_resolved_ticket_only(self):
        from repro._common import ValidationError
        from repro.core.intervention import TicketStatus

        _storage, store, ticket = self._store_with_resolved_ticket()
        ticket.reopen(300, description="it broke again")
        assert ticket.status is TicketStatus.OPEN
        assert ticket.reopen_count == 1
        assert ticket.resolution == ""
        assert ticket.resolved_at is None
        assert ticket.opened_at == 300
        assert ticket.description == "it broke again"
        # An open ticket has nothing to re-open...
        with pytest.raises(ValidationError):
            ticket.reopen(400)
        # ...and a wont-fix closure is a decision, not a fix.
        store.close_wont_fix(ticket.ticket_id, "platform abandoned", timestamp=500)
        with pytest.raises(ValidationError):
            ticket.reopen(600)

    def test_recurrence_inside_the_window_reopens_the_ticket(self):
        storage, store, ticket = self._store_with_resolved_ticket(resolved_at=200)
        recurred = store.open_from_finding(
            self._finding(),
            timestamp=200 + self.WINDOW,
            reopen_window=self.WINDOW,
        )
        assert recurred is not None
        assert recurred.ticket_id == ticket.ticket_id
        assert recurred.reopen_count == 1
        assert recurred.is_open
        # The re-opened document was persisted: a replayed store agrees.
        replayed = InterventionStore(storage)
        assert replayed.ticket(ticket.ticket_id).reopen_count == 1
        assert len(replayed.tickets()) == 1

    def test_recurrence_outside_the_window_opens_a_fresh_ticket(self):
        _storage, store, ticket = self._store_with_resolved_ticket(resolved_at=200)
        fresh = store.open_from_finding(
            self._finding(),
            timestamp=200 + self.WINDOW + 1,
            reopen_window=self.WINDOW,
        )
        assert fresh is not None
        assert fresh.ticket_id != ticket.ticket_id
        assert fresh.reopen_count == 0
        assert len(store.tickets()) == 2

    def test_legacy_no_window_always_opens_a_fresh_ticket(self):
        _storage, store, ticket = self._store_with_resolved_ticket(resolved_at=200)
        fresh = store.open_from_finding(self._finding(), timestamp=201)
        assert fresh is not None and fresh.ticket_id != ticket.ticket_id

    def test_wont_fix_closure_never_reopens(self):
        from repro.storage.common_storage import CommonStorage

        store = InterventionStore(CommonStorage())
        ticket = store.open_from_finding(self._finding(), timestamp=100)
        store.close_wont_fix(ticket.ticket_id, "platform abandoned", timestamp=200)
        fresh = store.open_from_finding(
            self._finding(), timestamp=201, reopen_window=self.WINDOW
        )
        assert fresh is not None
        assert fresh.ticket_id != ticket.ticket_id

    def test_open_ticket_still_dedupes_with_a_window(self):
        from repro.storage.common_storage import CommonStorage

        store = InterventionStore(CommonStorage())
        store.open_from_finding(self._finding(), timestamp=100)
        assert store.open_from_finding(
            self._finding(), timestamp=101, reopen_window=self.WINDOW
        ) is None
        # A different cell is unaffected by the dedupe or the window.
        other = store.open_from_finding(
            self._finding(key="SL6_64bit_gcc4.4"),
            timestamp=102,
            reopen_window=self.WINDOW,
        )
        assert other is not None

    def test_newest_resolved_ticket_wins_the_reopen(self):
        from repro.storage.common_storage import CommonStorage

        store = InterventionStore(CommonStorage())
        first = store.open_from_finding(self._finding(), timestamp=100)
        store.resolve(first.ticket_id, "first fix", timestamp=150)
        second = store.open_from_finding(self._finding(), timestamp=200)
        store.resolve(second.ticket_id, "second fix", timestamp=250)
        recurred = store.open_from_finding(
            self._finding(), timestamp=300, reopen_window=self.WINDOW
        )
        assert recurred.ticket_id == second.ticket_id

    def test_cli_all_shows_the_reopen_count(self, tmp_path, capsys):
        storage, store, ticket = self._store_with_resolved_ticket(resolved_at=200)
        store.open_from_finding(
            self._finding(), timestamp=300, reopen_window=self.WINDOW
        )
        directory = str(tmp_path / "reopened")
        storage.persist(directory)
        assert cli_main([
            "interventions", "list", "--storage-dir", directory, "--all",
        ]) == 0
        output = capsys.readouterr().out
        assert "reopened" in output
        assert ticket.ticket_id in output
