"""The thin shell-variable interface between sp-system and experiment tests.

"...the common storage allows communication between the sp-system and the
experiment tests using only a few shell variables.  These variables describe
for example the location of the input file of the tests, the test outputs and
the external software on the client.  Using thin layers of scripts, a
separation of the user part from the details of the sp-system is possible."

The :class:`ShellVariableInterface` builds exactly that small, documented set
of variables for a given job, so that experiment-side test code never needs
to know anything else about the framework — which is what makes tests
portable between the sp-system and other platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro._common import ValidationError, ensure_identifier


#: The variables the sp-system exports to every experiment test.
SP_VARIABLES = (
    "SP_RUN_ID",
    "SP_TEST_NAME",
    "SP_EXPERIMENT",
    "SP_CONFIGURATION",
    "SP_INPUT_DIR",
    "SP_OUTPUT_DIR",
    "SP_EXTERNAL_DIR",
    "SP_TARBALL_DIR",
    "SP_REFERENCE_DIR",
)


@dataclass(frozen=True)
class ShellEnvironment:
    """An immutable set of exported shell variables for one test job."""

    variables: Dict[str, str]

    def get(self, name: str) -> str:
        """Return the value of *name*; unknown names raise."""
        try:
            return self.variables[name]
        except KeyError:
            raise ValidationError(f"shell variable {name!r} is not exported") from None

    def as_export_lines(self) -> List[str]:
        """Render as ``export NAME=value`` lines for a thin wrapper script."""
        return [
            f"export {name}={self.variables[name]}"
            for name in sorted(self.variables)
        ]

    def __contains__(self, name: str) -> bool:
        return name in self.variables


class ShellVariableInterface:
    """Builds the shell environment handed to experiment test scripts."""

    def __init__(self, storage_root: str = "/sp-storage") -> None:
        if not storage_root or not storage_root.startswith("/"):
            raise ValidationError("storage root must be an absolute path")
        self.storage_root = storage_root.rstrip("/")

    def environment_for(
        self,
        run_id: str,
        test_name: str,
        experiment: str,
        configuration_key: str,
        reference_run_id: Optional[str] = None,
    ) -> ShellEnvironment:
        """Build the variable set for one test job."""
        ensure_identifier(run_id, "run id")
        ensure_identifier(test_name, "test name")
        ensure_identifier(experiment, "experiment name")
        ensure_identifier(configuration_key, "configuration key")
        variables = {
            "SP_RUN_ID": run_id,
            "SP_TEST_NAME": test_name,
            "SP_EXPERIMENT": experiment,
            "SP_CONFIGURATION": configuration_key,
            "SP_INPUT_DIR": f"{self.storage_root}/tests/{experiment}/{test_name}/input",
            "SP_OUTPUT_DIR": f"{self.storage_root}/results/{run_id}/{test_name}",
            "SP_EXTERNAL_DIR": f"{self.storage_root}/externals/{configuration_key}",
            "SP_TARBALL_DIR": f"{self.storage_root}/tarballs/{configuration_key}",
            "SP_REFERENCE_DIR": (
                f"{self.storage_root}/results/{reference_run_id}/{test_name}"
                if reference_run_id
                else f"{self.storage_root}/references/{experiment}/{test_name}"
            ),
        }
        return ShellEnvironment(variables=variables)

    @staticmethod
    def required_variables() -> List[str]:
        """The documented variable names (the full "interface contract")."""
        return list(SP_VARIABLES)

    @staticmethod
    def is_complete(environment: ShellEnvironment) -> bool:
        """Check that an environment exports every documented variable."""
        return all(name in environment for name in SP_VARIABLES)


__all__ = ["ShellEnvironment", "ShellVariableInterface", "SP_VARIABLES"]
