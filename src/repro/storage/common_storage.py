"""The common sp-system storage.

"The only requirement of a new machine is to have access to the common
sp-system storage where the tests from the experiments as well as the test
results are stored..."  The :class:`CommonStorage` models that shared area as
a set of namespaces (tests, results, tarballs, recipes, reports) holding
JSON-serialisable documents.  It works purely in memory by default and can
optionally persist itself to a directory, which the examples use to leave
inspectable output behind.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro._common import StorageError, ensure_identifier


#: Namespaces every sp-system installation provides.
DEFAULT_NAMESPACES = ("tests", "results", "tarballs", "recipes", "reports", "images")

#: Namespaces persisted with *mirror* semantics: their on-disk directory is
#: made to match the in-memory namespace exactly, deleting files of documents
#: that no longer exist.  Journal-backed namespaces need this — a compaction
#: deletes records, and a stale on-disk tail would resurrect them on the next
#: load.  Every other namespace keeps the historical accumulate-only
#: behaviour (run documents of earlier campaigns survive a smaller re-run).
#: Journal owners register themselves via :func:`register_mirrored_namespace`
#: (e.g. the build cache registers its ``buildcache`` namespace), so the
#: constant never drifts from the owner's namespace name.
MIRRORED_NAMESPACES = set()

#: Journal-backed namespaces: name -> record key prefix.  Their journal
#: records are batched into *segment files* on disk (see
#: :meth:`CommonStorage.persist`), so persisting a journal of N records
#: writes O(N / JOURNAL_SEGMENT_RECORDS) files instead of one file per
#: record.  Registration implies mirror semantics.
JOURNAL_NAMESPACE_PREFIXES: Dict[str, str] = {}

#: Journal records batched into one on-disk segment file.
JOURNAL_SEGMENT_RECORDS = 64

#: Top-level sentinel key marking an on-disk journal segment document; the
#: value maps record keys to their documents.  :meth:`CommonStorage.load`
#: recognises segments by this shape and explodes them back into individual
#: records, so the in-memory representation never changes.
_SEGMENT_SENTINEL = "sp-journal-segment"


def register_mirrored_namespace(name: str) -> str:
    """Declare *name* journal-backed: :meth:`CommonStorage.persist` mirrors it.

    Returns *name*, so an owner can register its namespace constant inline.
    """
    MIRRORED_NAMESPACES.add(ensure_identifier(name, "namespace name"))
    return name


def register_journal_namespace(name: str, record_prefix: str = "journal_") -> str:
    """Declare *name* journal-backed with records under *record_prefix*.

    Beyond the mirror semantics of :func:`register_mirrored_namespace`, the
    namespace's journal records are persisted as batched segment files:
    ``<record_prefix>segment_<first-sequence>.json`` documents each holding
    up to :data:`JOURNAL_SEGMENT_RECORDS` records.  Returns *name*.
    """
    register_mirrored_namespace(name)
    JOURNAL_NAMESPACE_PREFIXES[name] = record_prefix
    return name


def _is_journal_record_key(key: str, record_prefix: str) -> bool:
    """True for ``<prefix><digits>`` keys — the journal's record documents."""
    return key.startswith(record_prefix) and key[len(record_prefix):].isdigit()


class StorageNamespace:
    """One namespace of the common storage (a directory-like key space)."""

    def __init__(self, name: str) -> None:
        self.name = ensure_identifier(name, "namespace name")
        self._documents: Dict[str, object] = {}

    def put(self, key: str, document: object, overwrite: bool = True) -> None:
        """Store *document* under *key*.

        Documents must be JSON serialisable so that run outputs remain
        portable between clients and across time — a document that cannot be
        re-read in ten years defeats the purpose of the preservation system.
        """
        ensure_identifier(key, "storage key")
        try:
            json.dumps(document)
        except (TypeError, ValueError) as error:
            raise StorageError(
                f"document for {self.name}/{key} is not JSON serialisable: {error}"
            ) from None
        if not overwrite and key in self._documents:
            raise StorageError(f"{self.name}/{key} already exists")
        self._documents[key] = document

    def get(self, key: str) -> object:
        """Return the document stored under *key*."""
        try:
            return self._documents[key]
        except KeyError:
            raise StorageError(f"no document {self.name}/{key}") from None

    def exists(self, key: str) -> bool:
        """Return True if *key* is present."""
        return key in self._documents

    def delete(self, key: str) -> None:
        """Remove the document stored under *key*."""
        if key not in self._documents:
            raise StorageError(f"no document {self.name}/{key}")
        del self._documents[key]

    def keys(self, prefix: str = "") -> List[str]:
        """Return all keys, optionally restricted to a prefix, sorted."""
        return sorted(key for key in self._documents if key.startswith(prefix))

    def __len__(self) -> int:
        return len(self._documents)

    def items(self) -> List[Tuple[str, object]]:
        """All (key, document) pairs, sorted by key."""
        return [(key, self._documents[key]) for key in self.keys()]


class CommonStorage:
    """The shared storage every sp-system client mounts."""

    def __init__(self, namespaces: Iterable[str] = DEFAULT_NAMESPACES) -> None:
        self._namespaces: Dict[str, StorageNamespace] = {}
        for name in namespaces:
            self.create_namespace(name)

    def create_namespace(self, name: str) -> StorageNamespace:
        """Create a namespace; returns the existing one if already present."""
        if name not in self._namespaces:
            self._namespaces[name] = StorageNamespace(name)
        return self._namespaces[name]

    def namespace(self, name: str) -> StorageNamespace:
        """Return an existing namespace."""
        try:
            return self._namespaces[name]
        except KeyError:
            known = ", ".join(sorted(self._namespaces))
            raise StorageError(f"unknown namespace {name!r} (known: {known})") from None

    def namespaces(self) -> List[str]:
        """Sorted namespace names."""
        return sorted(self._namespaces)

    # Convenience pass-throughs used heavily by the core framework.
    def put(self, namespace: str, key: str, document: object, overwrite: bool = True) -> None:
        """Store a document in ``namespace`` under ``key``."""
        self.namespace(namespace).put(key, document, overwrite=overwrite)

    def get(self, namespace: str, key: str) -> object:
        """Fetch a document from ``namespace``."""
        return self.namespace(namespace).get(key)

    def exists(self, namespace: str, key: str) -> bool:
        """Return True if ``namespace/key`` exists."""
        return namespace in self._namespaces and self.namespace(namespace).exists(key)

    def keys(self, namespace: str, prefix: str = "") -> List[str]:
        """Return the keys of ``namespace`` with the given prefix."""
        return self.namespace(namespace).keys(prefix)

    def total_documents(self) -> int:
        """Total number of stored documents across all namespaces."""
        return sum(len(namespace) for namespace in self._namespaces.values())

    def persist(
        self,
        directory: str,
        mirror_namespaces: Optional[Iterable[str]] = None,
    ) -> List[str]:
        """Write every document as a JSON file below *directory*.

        HTML page documents (the ``{"html": ...}`` shape the status web
        pages use) are written as browsable ``.html`` files instead, so the
        relative links between persisted pages (``runpage_<id>.html``,
        ``../results/<key>.json``) resolve in a browser.

        Namespaces named in *mirror_namespaces* (by default every namespace
        registered through :func:`register_mirrored_namespace` — e.g. the
        journal-backed ``buildcache``) are persisted with mirror semantics:
        leftover ``.json``/``.html`` files of documents that no longer
        exist (e.g. journal records dropped by a compaction) are removed,
        so a later :meth:`load` cannot resurrect them.  All other
        namespaces accumulate: files persisted by earlier runs survive,
        which is how repeated campaigns against one output directory keep
        their combined run history browsable.

        Journal records of namespaces registered through
        :func:`register_journal_namespace` (``buildcache``, ``history``) are
        batched into segment files of :data:`JOURNAL_SEGMENT_RECORDS`
        records each, so persisting a large journal writes O(segments)
        files, not one per record; :meth:`load` explodes the segments back
        into individual record documents.

        Returns the list of written file paths.  Used by the examples to
        leave a browsable copy of the storage behind; the library itself
        never requires disk access.
        """
        mirrored = set(
            MIRRORED_NAMESPACES if mirror_namespaces is None else mirror_namespaces
        )
        written: List[str] = []
        for namespace_name in self.namespaces():
            namespace = self.namespace(namespace_name)
            target_dir = os.path.join(directory, namespace_name)
            os.makedirs(target_dir, exist_ok=True)
            record_prefix = JOURNAL_NAMESPACE_PREFIXES.get(namespace_name)
            journal_records: Dict[str, object] = {}
            expected = set()
            for key, document in namespace.items():
                if record_prefix is not None and _is_journal_record_key(
                    key, record_prefix
                ):
                    journal_records[key] = document
                    continue
                if _is_html_document(document):
                    path = os.path.join(target_dir, f"{key}.html")
                    with open(path, "w", encoding="utf-8") as handle:
                        handle.write(document["html"])  # type: ignore[index,arg-type]
                else:
                    path = os.path.join(target_dir, f"{key}.json")
                    with open(path, "w", encoding="utf-8") as handle:
                        json.dump(document, handle, indent=2, sort_keys=True)
                expected.add(os.path.basename(path))
                written.append(path)
            # Numeric sequence order, not lexicographic: legacy unpadded
            # record keys must be batched (and replayed) in append order.
            record_keys = sorted(
                journal_records,
                key=lambda key: int(key[len(record_prefix):]),  # type: ignore[arg-type]
            )
            for start in range(0, len(record_keys), JOURNAL_SEGMENT_RECORDS):
                chunk = record_keys[start:start + JOURNAL_SEGMENT_RECORDS]
                # Named after the first record's sequence suffix, so the
                # lexicographic file order is the journal's append order.
                suffix = chunk[0][len(record_prefix):]  # type: ignore[arg-type]
                path = os.path.join(
                    target_dir, f"{record_prefix}segment_{suffix}.json"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(
                        {_SEGMENT_SENTINEL: {key: journal_records[key] for key in chunk}},
                        handle,
                        indent=2,
                        sort_keys=True,
                    )
                expected.add(os.path.basename(path))
                written.append(path)
            if namespace_name not in mirrored:
                continue
            for filename in sorted(os.listdir(target_dir)):
                if filename in expected:
                    continue
                if filename.endswith(".json") or filename.endswith(".html"):
                    os.remove(os.path.join(target_dir, filename))
        return written

    @classmethod
    def load(
        cls, directory: str, namespaces: Optional[Iterable[str]] = None
    ) -> "CommonStorage":
        """Re-create a storage previously written by :meth:`persist`.

        With *namespaces*, only the named namespace directories are read —
        e.g. warm-starting a build cache needs just ``buildcache``, not the
        accumulated run documents and report pages of every past campaign.
        """
        if not os.path.isdir(directory):
            raise StorageError(f"no such storage directory: {directory}")
        wanted = set(namespaces) if namespaces is not None else None
        storage = cls(namespaces=())
        for namespace_name in sorted(os.listdir(directory)):
            namespace_dir = os.path.join(directory, namespace_name)
            if not os.path.isdir(namespace_dir):
                continue
            if wanted is not None and namespace_name not in wanted:
                continue
            namespace = storage.create_namespace(namespace_name)
            for filename in sorted(os.listdir(namespace_dir)):
                path = os.path.join(namespace_dir, filename)
                if filename.endswith(".json"):
                    key = filename[:-len(".json")]
                    with open(path, encoding="utf-8") as handle:
                        document = json.load(handle)
                    if _is_segment_document(document):
                        # A journal segment file: explode it back into the
                        # individual record documents it batches.
                        for record_key, record in sorted(
                            document[_SEGMENT_SENTINEL].items()
                        ):
                            namespace.put(record_key, record)
                    else:
                        namespace.put(key, document)
                elif filename.endswith(".html"):
                    key = filename[:-len(".html")]
                    with open(path, encoding="utf-8") as handle:
                        namespace.put(key, {"html": handle.read()})
        return storage


def _is_html_document(document: object) -> bool:
    """True for the ``{"html": <str>}`` documents holding rendered pages."""
    return (
        isinstance(document, dict)
        and set(document) == {"html"}
        and isinstance(document["html"], str)
    )


def _is_segment_document(document: object) -> bool:
    """True for on-disk journal segment files written by :meth:`persist`."""
    return (
        isinstance(document, dict)
        and set(document) == {_SEGMENT_SENTINEL}
        and isinstance(document[_SEGMENT_SENTINEL], dict)
    )


class AppendOnlyJournal:
    """An append-only record log inside one storage namespace.

    Incremental persistence (e.g. the build cache's ``buildcache`` journal)
    writes one document per state change instead of rewriting a wholesale
    snapshot.  Records live under zero-padded keys
    ``<prefix><sequence:08d>``, so the namespace's lexicographic key order
    *is* the append order and a replay needs nothing beyond
    :meth:`StorageNamespace.keys`.  The journal never rewrites an existing
    record — appending is the only mutation, apart from :meth:`clear`,
    which compaction uses to rewrite the log from its live state.
    """

    #: Width of the zero-padded sequence number in the record keys.
    SEQUENCE_DIGITS = 8

    def __init__(self, namespace: StorageNamespace, prefix: str = "journal_") -> None:
        self.namespace = namespace
        self.prefix = prefix
        self._next_sequence = self._scan_next_sequence()

    def _scan_next_sequence(self) -> int:
        highest = 0
        for key in self.namespace.keys(prefix=self.prefix):
            suffix = key[len(self.prefix):]
            if suffix.isdigit():
                highest = max(highest, int(suffix))
        return highest + 1

    def keys(self) -> List[str]:
        """The record keys, in append order.

        Keys are ordered by their *parsed* sequence number, not
        lexicographically: the journal's own keys are zero-padded (where the
        two orders coincide), but a legacy journal written before the
        padding existed — pre-segment layouts are documented as still
        readable — carries unpadded keys, and ``journal_10`` must replay
        after ``journal_2``, not before it.
        """
        return sorted(
            (
                key
                for key in self.namespace.keys(prefix=self.prefix)
                if key[len(self.prefix):].isdigit()
            ),
            key=lambda key: int(key[len(self.prefix):]),
        )

    def __len__(self) -> int:
        return len(self.keys())

    def key_for(self, sequence: int) -> str:
        """The storage key of record number *sequence*."""
        return f"{self.prefix}{sequence:0{self.SEQUENCE_DIGITS}d}"

    def append(self, document: object) -> int:
        """Append *document* as the next record; returns its sequence number."""
        sequence = self._next_sequence
        self.namespace.put(self.key_for(sequence), document)
        self._next_sequence = sequence + 1
        return sequence

    def records(self) -> List[Tuple[int, object]]:
        """All ``(sequence, document)`` pairs, in append order."""
        return [
            (int(key[len(self.prefix):]), self.namespace.get(key))
            for key in self.keys()
        ]

    def clear(self) -> None:
        """Delete every record and restart the sequence (compaction rewrite)."""
        for key in self.keys():
            self.namespace.delete(key)
        self._next_sequence = 1


__all__ = [
    "AppendOnlyJournal",
    "CommonStorage",
    "StorageNamespace",
    "DEFAULT_NAMESPACES",
    "JOURNAL_NAMESPACE_PREFIXES",
    "JOURNAL_SEGMENT_RECORDS",
    "MIRRORED_NAMESPACES",
    "register_journal_namespace",
    "register_mirrored_namespace",
]
