"""Run catalogue: the queryable record of every validation run.

The sp-system keeps "all scripts and input files used in the test as well as
all output files ... This allows the validation of all versions against each
other and ensures reproducibility of previous results."  The
:class:`RunCatalog` is the index over that material: every run is recorded
with its unique ID, description tag, timestamp, environment configuration and
per-test outcomes, and can be looked up later for run-against-run comparison
or for the summary web pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro._common import StorageError
from repro.storage.bookkeeping import format_timestamp
from repro.storage.common_storage import CommonStorage


@dataclass
class RunRecord:
    """Summary record of one validation run stored in the catalogue."""

    run_id: str
    experiment: str
    configuration_key: str
    description: str
    timestamp: int
    software_versions: Dict[str, str] = field(default_factory=dict)
    test_statuses: Dict[str, str] = field(default_factory=dict)
    overall_status: str = "unknown"

    @property
    def n_tests(self) -> int:
        """Number of tests recorded for the run."""
        return len(self.test_statuses)

    @property
    def n_passed(self) -> int:
        """Number of tests with a passing status."""
        return sum(1 for status in self.test_statuses.values() if status == "passed")

    @property
    def n_failed(self) -> int:
        """Number of tests with a failing status."""
        return sum(1 for status in self.test_statuses.values() if status == "failed")

    def to_dict(self) -> Dict[str, object]:
        """Serialise for the common storage."""
        return {
            "run_id": self.run_id,
            "experiment": self.experiment,
            "configuration_key": self.configuration_key,
            "description": self.description,
            "timestamp": self.timestamp,
            "timestamp_readable": format_timestamp(self.timestamp),
            "software_versions": dict(self.software_versions),
            "test_statuses": dict(self.test_statuses),
            "overall_status": self.overall_status,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunRecord":
        """Reconstruct a record serialised by :meth:`to_dict`."""
        return cls(
            run_id=str(payload["run_id"]),
            experiment=str(payload["experiment"]),
            configuration_key=str(payload["configuration_key"]),
            description=str(payload["description"]),
            timestamp=int(payload["timestamp"]),
            software_versions=dict(payload.get("software_versions", {})),
            test_statuses=dict(payload.get("test_statuses", {})),
            overall_status=str(payload.get("overall_status", "unknown")),
        )


class RunCatalog:
    """Index of validation runs backed by the common storage."""

    NAMESPACE = "results"

    def __init__(self, storage: Optional[CommonStorage] = None) -> None:
        self.storage = storage or CommonStorage()
        self.storage.create_namespace(self.NAMESPACE)
        self._records: Dict[str, RunRecord] = {}
        # Re-hydrate any records already present in the storage (e.g. loaded
        # from disk), so the catalogue survives a framework restart.
        for key in self.storage.keys(self.NAMESPACE, prefix="run_"):
            payload = self.storage.get(self.NAMESPACE, key)
            record = RunRecord.from_dict(payload)  # type: ignore[arg-type]
            self._records[record.run_id] = record

    def record(self, record: RunRecord) -> None:
        """Add a run record to the catalogue and the backing storage."""
        if record.run_id in self._records:
            raise StorageError(f"run {record.run_id!r} is already recorded")
        self._records[record.run_id] = record
        self.storage.put(self.NAMESPACE, f"run_{record.run_id}", record.to_dict())

    def update(self, record: RunRecord) -> None:
        """Replace an existing record (e.g. after adding late test results)."""
        if record.run_id not in self._records:
            raise StorageError(f"run {record.run_id!r} is not recorded")
        self._records[record.run_id] = record
        self.storage.put(self.NAMESPACE, f"run_{record.run_id}", record.to_dict())

    def get(self, run_id: str) -> RunRecord:
        """Return the record of *run_id*."""
        try:
            return self._records[run_id]
        except KeyError:
            raise StorageError(f"unknown run {run_id!r}") from None

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> List[RunRecord]:
        """All records ordered by timestamp then run ID."""
        return sorted(self._records.values(), key=lambda record: (record.timestamp, record.run_id))

    def for_experiment(self, experiment: str) -> List[RunRecord]:
        """All records of one experiment, oldest first."""
        return [record for record in self.all() if record.experiment == experiment]

    def for_configuration(self, configuration_key: str) -> List[RunRecord]:
        """All records on one environment configuration, oldest first."""
        return [
            record for record in self.all()
            if record.configuration_key == configuration_key
        ]

    def for_description(self, description: str) -> List[RunRecord]:
        """All records sharing a description tag, oldest first."""
        return [record for record in self.all() if record.description == description]

    def last_successful(
        self,
        experiment: str,
        test_name: Optional[str] = None,
        configuration_key: Optional[str] = None,
    ) -> Optional[RunRecord]:
        """The most recent run of *experiment* that passed.

        With *test_name* the run only needs that particular test to have
        passed; with *configuration_key* the search is restricted to runs on
        that configuration.  This is the lookup behind "any differences
        compared to the last successful test are examined".
        """
        candidates = self.for_experiment(experiment)
        if configuration_key is not None:
            candidates = [
                record for record in candidates
                if record.configuration_key == configuration_key
            ]
        for record in reversed(candidates):
            if test_name is None:
                if record.overall_status == "passed":
                    return record
            elif record.test_statuses.get(test_name) == "passed":
                return record
        return None

    def experiments(self) -> List[str]:
        """All experiments with at least one recorded run."""
        return sorted({record.experiment for record in self._records.values()})

    def configurations(self) -> List[str]:
        """All configuration keys with at least one recorded run."""
        return sorted({record.configuration_key for record in self._records.values()})

    def total_runs(self) -> int:
        """Total number of recorded runs (the paper reports more than 300)."""
        return len(self._records)


__all__ = ["RunRecord", "RunCatalog"]
