"""Storage substrate: the common sp-system storage and its bookkeeping."""

from repro.storage.artifacts import ArtifactStore, StoredArtifact
from repro.storage.bookkeeping import (
    EPOCH_2013,
    JobIdAllocator,
    RunTag,
    SimulatedClock,
    TagRegistry,
    format_timestamp,
)
from repro.storage.catalog import RunCatalog, RunRecord
from repro.storage.common_storage import (
    CommonStorage,
    DEFAULT_NAMESPACES,
    StorageNamespace,
)
from repro.storage.shellvars import (
    SP_VARIABLES,
    ShellEnvironment,
    ShellVariableInterface,
)

__all__ = [
    "ArtifactStore",
    "StoredArtifact",
    "EPOCH_2013",
    "JobIdAllocator",
    "RunTag",
    "SimulatedClock",
    "TagRegistry",
    "format_timestamp",
    "RunCatalog",
    "RunRecord",
    "CommonStorage",
    "DEFAULT_NAMESPACES",
    "StorageNamespace",
    "SP_VARIABLES",
    "ShellEnvironment",
    "ShellVariableInterface",
]
