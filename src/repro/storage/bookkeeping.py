"""Bookkeeping: unique job IDs, description tags and simulated time.

"Each test-job started in the sp-system is typically assigned a unique ID ...
validation jobs may be tagged with a description, indicating which software
versions were used, and the Unix time stamp of the execution to aid the
bookkeeping."  This module provides exactly those three ingredients: a
monotonic unique-ID allocator, a tag registry and a deterministic simulated
clock (so test runs are reproducible without touching the wall clock).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro._common import ReproError, ensure_identifier


#: 1 January 2013 00:00 UTC — the era of the paper, used as the clock origin.
EPOCH_2013 = 1356998400


class SimulatedClock:
    """A deterministic Unix-time clock advanced explicitly by the framework."""

    def __init__(self, start_timestamp: int = EPOCH_2013) -> None:
        if start_timestamp < 0:
            raise ReproError("clock cannot start before the Unix epoch")
        self._now = int(start_timestamp)

    @property
    def now(self) -> int:
        """Current simulated Unix timestamp."""
        return self._now

    def advance(self, seconds: int) -> int:
        """Advance the clock by *seconds* and return the new timestamp."""
        if seconds < 0:
            raise ReproError("the clock cannot run backwards")
        self._now += int(seconds)
        return self._now

    def advance_days(self, days: float) -> int:
        """Advance the clock by a number of days."""
        return self.advance(int(days * 86400))

    def isoformat(self) -> str:
        """Current time as a compact UTC string (YYYY-MM-DD HH:MM:SS)."""
        return format_timestamp(self._now)


def format_timestamp(timestamp: int) -> str:
    """Render a Unix timestamp as ``YYYY-MM-DD HH:MM:SS`` (UTC), no wall clock."""
    days_since_epoch, seconds_in_day = divmod(int(timestamp), 86400)
    hours, remainder = divmod(seconds_in_day, 3600)
    minutes, seconds = divmod(remainder, 60)
    year, month, day = _civil_from_days(days_since_epoch)
    return f"{year:04d}-{month:02d}-{day:02d} {hours:02d}:{minutes:02d}:{seconds:02d}"


def _civil_from_days(days: int) -> tuple:
    """Convert days since 1970-01-01 to (year, month, day); Howard Hinnant's algorithm."""
    days += 719468
    era = (days if days >= 0 else days - 146096) // 146097
    day_of_era = days - era * 146097
    year_of_era = (
        day_of_era - day_of_era // 1460 + day_of_era // 36524 - day_of_era // 146096
    ) // 365
    year = year_of_era + era * 400
    day_of_year = day_of_era - (365 * year_of_era + year_of_era // 4 - year_of_era // 100)
    month_prime = (5 * day_of_year + 2) // 153
    day = day_of_year - (153 * month_prime + 2) // 5 + 1
    month = month_prime + 3 if month_prime < 10 else month_prime - 9
    year = year + (1 if month <= 2 else 0)
    return year, month, day


class JobIdAllocator:
    """Allocates the unique IDs assigned to every test job."""

    def __init__(self, prefix: str = "sp", start: int = 1) -> None:
        self.prefix = ensure_identifier(prefix, "job id prefix")
        if start < 0:
            raise ReproError("job id counter cannot start below zero")
        self._next = start

    def allocate(self) -> str:
        """Return the next unique job ID, e.g. ``"sp-000042"``."""
        job_id = f"{self.prefix}-{self._next:06d}"
        self._next += 1
        return job_id

    def ensure_past(self, sequence: int) -> None:
        """Advance the counter so no ID at or below *sequence* is re-issued.

        Used when inherited state (e.g. a mounted validation history
        ledger) proves that IDs up to *sequence* were already handed out by
        a previous installation; a no-op when the counter is further along.
        """
        if sequence + 1 > self._next:
            self._next = sequence + 1

    @property
    def allocated_count(self) -> int:
        """How many IDs have been handed out so far."""
        return self._next - 1


@dataclass
class RunTag:
    """A description tag attached to a validation run."""

    description: str
    software_versions: Dict[str, str] = field(default_factory=dict)
    timestamp: int = EPOCH_2013

    def render(self) -> str:
        """Human readable rendering used in the web pages."""
        versions = ", ".join(
            f"{name}={version}" for name, version in sorted(self.software_versions.items())
        )
        stamp = format_timestamp(self.timestamp)
        if versions:
            return f"{self.description} [{versions}] @ {stamp}"
        return f"{self.description} @ {stamp}"


class TagRegistry:
    """Registry of description tags, grouping runs for the web reports."""

    def __init__(self) -> None:
        self._tags: Dict[str, List[str]] = {}

    def record(self, description: str, run_id: str) -> None:
        """Associate *run_id* with the description tag."""
        self._tags.setdefault(description, []).append(run_id)

    def descriptions(self) -> List[str]:
        """All known descriptions, sorted."""
        return sorted(self._tags)

    def runs_for(self, description: str) -> List[str]:
        """Run IDs recorded under *description*, oldest first."""
        return list(self._tags.get(description, []))

    def __len__(self) -> int:
        return len(self._tags)


__all__ = [
    "SimulatedClock",
    "JobIdAllocator",
    "RunTag",
    "TagRegistry",
    "format_timestamp",
    "EPOCH_2013",
]
