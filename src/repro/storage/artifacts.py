"""Content-addressed artifact store for build products.

Tar-balls produced by the automated builds are stored once per unique content
digest; the same package built twice on the same environment de-duplicates,
while a rebuild on a new environment creates a new artifact.  The store keeps
reference labels so the bookkeeping can answer "which runs used this binary".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro._common import StorageError
from repro.buildsys.tarball import Tarball


@dataclass
class StoredArtifact:
    """A tarball plus the labels (run IDs) referencing it."""

    tarball: Tarball
    labels: Set[str] = field(default_factory=set)

    @property
    def digest(self) -> str:
        """Content digest of the stored tarball."""
        return self.tarball.digest


class ArtifactStore:
    """Content-addressed store of build artifacts."""

    def __init__(self) -> None:
        self._artifacts: Dict[str, StoredArtifact] = {}

    def store(self, tarball: Tarball, label: Optional[str] = None) -> str:
        """Store *tarball* (idempotent) and return its digest."""
        existing = self._artifacts.get(tarball.digest)
        if existing is None:
            existing = StoredArtifact(tarball=tarball)
            self._artifacts[tarball.digest] = existing
        if label is not None:
            existing.labels.add(label)
        return tarball.digest

    def fetch(self, digest: str) -> Tarball:
        """Return the tarball with the given digest."""
        try:
            return self._artifacts[digest].tarball
        except KeyError:
            raise StorageError(f"no artifact with digest {digest!r}") from None

    def exists(self, digest: str) -> bool:
        """Return True if an artifact with *digest* is stored."""
        return digest in self._artifacts

    def remove(self, digest: str) -> Tarball:
        """Remove (overwrite/retire) the artifact with *digest* and return it.

        Consumers holding content-hash references — notably the scheduler's
        build cache — treat a removed digest as gone and must re-materialise
        the artifact instead of serving a dangling reference.
        """
        try:
            return self._artifacts.pop(digest).tarball
        except KeyError:
            raise StorageError(f"no artifact with digest {digest!r}") from None

    def labels_for(self, digest: str) -> List[str]:
        """Return the labels referencing the artifact, sorted."""
        try:
            return sorted(self._artifacts[digest].labels)
        except KeyError:
            raise StorageError(f"no artifact with digest {digest!r}") from None

    def artifacts_for_package(self, package_name: str) -> List[Tarball]:
        """All stored artifacts of the given package, sorted by configuration."""
        return sorted(
            (
                artifact.tarball
                for artifact in self._artifacts.values()
                if artifact.tarball.package_name == package_name
            ),
            key=lambda tarball: (tarball.configuration_key, tarball.package_version),
        )

    def artifacts_for_configuration(self, configuration_key: str) -> List[Tarball]:
        """All stored artifacts built on the given configuration."""
        return sorted(
            (
                artifact.tarball
                for artifact in self._artifacts.values()
                if artifact.tarball.configuration_key == configuration_key
            ),
            key=lambda tarball: tarball.package_name,
        )

    def __len__(self) -> int:
        return len(self._artifacts)

    def total_size_bytes(self) -> int:
        """Summed size of all stored artifacts."""
        return sum(artifact.tarball.size_bytes for artifact in self._artifacts.values())

    def prune_unlabelled(self) -> int:
        """Remove artifacts no run references; returns how many were removed."""
        to_remove = [
            digest for digest, artifact in self._artifacts.items() if not artifact.labels
        ]
        for digest in to_remove:
            del self._artifacts[digest]
        return len(to_remove)


__all__ = ["ArtifactStore", "StoredArtifact"]
