"""The four-phase preservation work flow of the sp-system.

Section 3.1 of the paper describes the life cycle of an experiment inside the
validation framework:

(i)   a preparatory phase: consolidate the software, migrate to the most
      recent OS, remove unnecessary external dependencies, define the tests;
(ii)  regular automated builds and validations, with new OS and software
      versions integrated at intervals;
(iii) intervention when a validation fails, by the host IT department or the
      experiment, depending on the diagnosis;
(iv)  a final phase in which the last working virtual image is conserved.

:class:`PreservationWorkflow` tracks which phase an experiment is in and
enforces the legal transitions between phases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._common import ValidationError
from repro.core.levels import PreservationLevel, required_capabilities
from repro.core.testspec import ExperimentDefinition
from repro.environment.compatibility import CompatibilityChecker
from repro.environment.configuration import EnvironmentConfiguration


class WorkflowPhase(enum.Enum):
    """The phases of the preservation work flow."""

    PREPARATION = "preparation"
    REGULAR_VALIDATION = "regular-validation"
    INTERVENTION = "intervention"
    FROZEN = "frozen"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Legal phase transitions.
_ALLOWED_TRANSITIONS: Dict[WorkflowPhase, Tuple[WorkflowPhase, ...]] = {
    WorkflowPhase.PREPARATION: (WorkflowPhase.REGULAR_VALIDATION,),
    WorkflowPhase.REGULAR_VALIDATION: (
        WorkflowPhase.INTERVENTION,
        WorkflowPhase.FROZEN,
    ),
    WorkflowPhase.INTERVENTION: (
        WorkflowPhase.REGULAR_VALIDATION,
        WorkflowPhase.FROZEN,
    ),
    WorkflowPhase.FROZEN: (),
}


@dataclass
class PreparationReport:
    """Findings of the preparatory phase for one experiment."""

    experiment: str
    dependency_problems: List[str] = field(default_factory=list)
    unnecessary_externals: List[str] = field(default_factory=list)
    missing_capabilities: List[str] = field(default_factory=list)
    baseline_incompatibilities: List[str] = field(default_factory=list)
    test_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ready(self) -> bool:
        """True when the experiment may enter regular validation."""
        return not self.dependency_problems and not self.missing_capabilities

    def issues(self) -> List[str]:
        """All findings as human-readable strings."""
        findings = list(self.dependency_problems)
        findings.extend(
            f"unnecessary external dependency: {product}"
            for product in self.unnecessary_externals
        )
        findings.extend(
            f"missing capability for the chosen preservation level: {capability}"
            for capability in self.missing_capabilities
        )
        findings.extend(self.baseline_incompatibilities)
        return findings


@dataclass
class PhaseTransition:
    """One recorded phase change of an experiment."""

    experiment: str
    from_phase: WorkflowPhase
    to_phase: WorkflowPhase
    timestamp: int
    reason: str


class PreservationWorkflow:
    """Tracks and validates the work-flow phase of each experiment."""

    def __init__(self, checker: Optional[CompatibilityChecker] = None) -> None:
        self.checker = checker or CompatibilityChecker()
        self._phases: Dict[str, WorkflowPhase] = {}
        self._history: List[PhaseTransition] = []

    # -- phase bookkeeping ---------------------------------------------------
    def register(self, experiment_name: str) -> None:
        """Register an experiment; it starts in the preparation phase."""
        if experiment_name in self._phases:
            raise ValidationError(f"experiment {experiment_name!r} already registered")
        self._phases[experiment_name] = WorkflowPhase.PREPARATION

    def phase_of(self, experiment_name: str) -> WorkflowPhase:
        """Current phase of the experiment."""
        try:
            return self._phases[experiment_name]
        except KeyError:
            raise ValidationError(
                f"experiment {experiment_name!r} is not registered"
            ) from None

    def transition(
        self,
        experiment_name: str,
        to_phase: WorkflowPhase,
        timestamp: int,
        reason: str,
    ) -> PhaseTransition:
        """Move an experiment to a new phase, enforcing the legal transitions."""
        current = self.phase_of(experiment_name)
        if to_phase not in _ALLOWED_TRANSITIONS[current]:
            raise ValidationError(
                f"illegal work-flow transition for {experiment_name}: "
                f"{current.value} -> {to_phase.value}"
            )
        transition = PhaseTransition(
            experiment=experiment_name,
            from_phase=current,
            to_phase=to_phase,
            timestamp=timestamp,
            reason=reason,
        )
        self._phases[experiment_name] = to_phase
        self._history.append(transition)
        return transition

    def history(self, experiment_name: Optional[str] = None) -> List[PhaseTransition]:
        """Recorded transitions, optionally restricted to one experiment."""
        if experiment_name is None:
            return list(self._history)
        return [entry for entry in self._history if entry.experiment == experiment_name]

    def experiments(self) -> List[str]:
        """All registered experiments."""
        return sorted(self._phases)

    # -- phase (i): preparation ----------------------------------------------
    def prepare(
        self,
        experiment: ExperimentDefinition,
        baseline_configuration: EnvironmentConfiguration,
    ) -> PreparationReport:
        """Carry out the checks of the preparatory phase.

        The report lists dependency problems in the package inventory,
        external products installed in the baseline but used by no package,
        capabilities required by the chosen preservation level but covered by
        no test, and package requirements already incompatible with the
        baseline environment.
        """
        report = PreparationReport(experiment=experiment.name)
        report.dependency_problems = experiment.inventory.validate_dependencies()

        used_products = set()
        for package in experiment.inventory.all():
            used_products.update(package.requirements.required_products())
        for test in experiment.all_tests():
            used_products.update(test.requirements.required_products())
        report.unnecessary_externals = sorted(
            product
            for product in baseline_configuration.external_map()
            if product not in used_products
        )

        covered_capabilities = {test.capability for test in experiment.all_tests()}
        report.missing_capabilities = [
            capability
            for capability in required_capabilities(experiment.preservation_level)
            if capability not in covered_capabilities
        ]

        for package in experiment.inventory.all():
            for issue in self.checker.errors(package.requirements, baseline_configuration):
                report.baseline_incompatibilities.append(f"{package.name}: {issue}")

        report.test_counts = {
            "compilation": experiment.compilation_test_count(),
            "standalone": len(experiment.standalone_tests),
            "chain_steps": experiment.chain_test_count(),
            "total": experiment.total_test_count(),
        }
        return report

    def complete_preparation(
        self,
        experiment: ExperimentDefinition,
        baseline_configuration: EnvironmentConfiguration,
        timestamp: int,
    ) -> PreparationReport:
        """Run the preparation checks and, if clean, enter regular validation."""
        report = self.prepare(experiment, baseline_configuration)
        if not report.ready:
            raise ValidationError(
                f"experiment {experiment.name} is not ready to leave preparation: "
                + "; ".join(report.issues())
            )
        self.transition(
            experiment.name,
            WorkflowPhase.REGULAR_VALIDATION,
            timestamp,
            reason="preparation complete: "
            f"{report.test_counts['total']} tests defined",
        )
        return report


__all__ = [
    "WorkflowPhase",
    "PreparationReport",
    "PhaseTransition",
    "PreservationWorkflow",
]
