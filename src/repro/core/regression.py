"""Regression detection: comparing a run against the last successful one.

Work flow step (iii): "If the validation is successful, no further action must
be taken.  If a test fails, any differences compared to the last successful
test are examined and problems identified."  The :class:`RegressionDetector`
implements the "examined" part: given the current run and the catalogue, it
finds the last successful reference, re-loads the stored outputs of both runs
and produces a per-test :class:`RegressionReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import StorageError
from repro.core.comparison import ComparisonOutcome, ComparisonPolicy, OutputComparator
from repro.core.jobs import JobStatus, ValidationRun
from repro.core.testspec import TestOutput
from repro.storage.catalog import RunCatalog, RunRecord
from repro.storage.common_storage import CommonStorage


@dataclass
class TestRegression:
    """Findings for one test when comparing two runs."""

    # Not a pytest test class, despite the Test* name.
    __test__ = False

    test_name: str
    current_status: str
    reference_status: Optional[str]
    newly_failing: bool
    newly_passing: bool
    output_comparison: Optional[ComparisonOutcome] = None
    messages: List[str] = field(default_factory=list)

    @property
    def is_regression(self) -> bool:
        """True when the test regressed (newly failing or incompatible output)."""
        if self.newly_failing:
            return True
        if self.output_comparison is not None and not self.output_comparison.compatible:
            return True
        return False


@dataclass
class RegressionReport:
    """Full comparison of one run against a reference run."""

    current_run_id: str
    reference_run_id: Optional[str]
    experiment: str
    configuration_key: str
    reference_configuration_key: Optional[str]
    regressions: List[TestRegression] = field(default_factory=list)
    improvements: List[TestRegression] = field(default_factory=list)
    unchanged: int = 0

    @property
    def has_regressions(self) -> bool:
        """True when at least one test regressed."""
        return bool(self.regressions)

    @property
    def n_regressions(self) -> int:
        return len(self.regressions)

    def regression_names(self) -> List[str]:
        """Names of the regressed tests, sorted."""
        return sorted(finding.test_name for finding in self.regressions)

    def summary(self) -> str:
        """One-line summary for logs and web pages."""
        reference = self.reference_run_id or "none"
        return (
            f"run {self.current_run_id} vs {reference}: "
            f"{self.n_regressions} regression(s), {len(self.improvements)} improvement(s), "
            f"{self.unchanged} unchanged"
        )


class RegressionDetector:
    """Compares validation runs against their last successful predecessor."""

    def __init__(
        self,
        storage: CommonStorage,
        catalog: RunCatalog,
        comparator: Optional[OutputComparator] = None,
    ) -> None:
        self.storage = storage
        self.catalog = catalog
        self.comparator = comparator or OutputComparator()

    def find_reference(
        self, run: ValidationRun, same_configuration_only: bool = False
    ) -> Optional[RunRecord]:
        """Find the last successful run to compare against.

        By default the detector prefers the last successful run on the *same*
        configuration and falls back to the last successful run on any
        configuration (which is exactly what is needed when validating a new
        OS against the established one).
        """
        same_config = self.catalog.last_successful(
            run.experiment, configuration_key=run.configuration_key
        )
        if same_config is not None and same_config.run_id != run.run_id:
            return same_config
        if same_configuration_only:
            return None
        for record in reversed(self.catalog.for_experiment(run.experiment)):
            if record.run_id == run.run_id:
                continue
            if record.overall_status == "passed":
                return record
        return None

    def compare_to_reference(
        self,
        run: ValidationRun,
        reference: Optional[RunRecord] = None,
        same_configuration_only: bool = False,
    ) -> RegressionReport:
        """Produce the regression report of *run* against *reference*.

        When *reference* is omitted it is looked up via :meth:`find_reference`.
        """
        if reference is None:
            reference = self.find_reference(run, same_configuration_only)
        report = RegressionReport(
            current_run_id=run.run_id,
            reference_run_id=reference.run_id if reference else None,
            experiment=run.experiment,
            configuration_key=run.configuration_key,
            reference_configuration_key=(
                reference.configuration_key if reference else None
            ),
        )
        reference_statuses: Dict[str, str] = (
            dict(reference.test_statuses) if reference else {}
        )
        for job in run.jobs:
            reference_status = reference_statuses.get(job.test_name)
            newly_failing = (
                job.status is JobStatus.FAILED and reference_status == "passed"
            )
            newly_passing = (
                job.status is JobStatus.PASSED and reference_status == "failed"
            )
            finding = TestRegression(
                test_name=job.test_name,
                current_status=job.status.value,
                reference_status=reference_status,
                newly_failing=newly_failing,
                newly_passing=newly_passing,
                messages=list(job.messages),
            )
            # Even a passing test may have drifted numerically; compare stored
            # outputs whenever both runs have one.
            if reference is not None and job.status is JobStatus.PASSED:
                comparison = self._compare_outputs(reference.run_id, run.run_id, job.test_name)
                finding.output_comparison = comparison
            if finding.is_regression:
                report.regressions.append(finding)
            elif newly_passing:
                report.improvements.append(finding)
            else:
                report.unchanged += 1
        return report

    def _compare_outputs(
        self, reference_run_id: str, current_run_id: str, test_name: str
    ) -> Optional[ComparisonOutcome]:
        reference_key = f"{reference_run_id}_{test_name}"
        current_key = f"{current_run_id}_{test_name}"
        try:
            reference_document = self.storage.get("results", reference_key)
            current_document = self.storage.get("results", current_key)
        except StorageError:
            return None
        reference_output = TestOutput.from_document(reference_document)  # type: ignore[arg-type]
        current_output = TestOutput.from_document(current_document)  # type: ignore[arg-type]
        return self.comparator.compare(test_name, reference_output, current_output)


__all__ = ["TestRegression", "RegressionReport", "RegressionDetector"]
