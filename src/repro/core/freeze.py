"""The final phase: conserving the last working virtual image.

Work flow step (iv): "The final phase occurs either when no person-power is
available from the experiment or IT side or the current system is deemed
satisfactory for the long-term need or stable enough.  At this point the last
working virtual image is conserved and constitutes the last version of the
experimental software and environment."  The :class:`FreezeManager` performs
that conservation and records the caveat the paper attaches to it: a frozen
system "is unlikely to persist in a useful manner much beyond this point".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.core.jobs import ValidationRun
from repro.core.recipe import RecipeBook, ValidatedRecipe
from repro.storage.common_storage import CommonStorage
from repro.virtualization.hypervisor import Hypervisor
from repro.virtualization.image import VirtualMachineImage


class FreezeReason(enum.Enum):
    """Why the preservation programme enters its final phase."""

    NO_PERSON_POWER = "no person-power available from the experiment or IT side"
    SATISFACTORY = "the current system is deemed satisfactory for the long-term need"
    STABLE = "the current system is deemed stable enough"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class FrozenSystem:
    """Record of a conserved (frozen) experiment software environment."""

    experiment: str
    image_name: str
    recipe_id: str
    frozen_at: int
    reason: FreezeReason
    last_validation_run: str
    caveat: str = (
        "this now frozen system is unlikely to persist in a useful manner "
        "much beyond this point"
    )

    def to_document(self) -> Dict[str, object]:
        """Serialise for the common storage."""
        return {
            "experiment": self.experiment,
            "image_name": self.image_name,
            "recipe_id": self.recipe_id,
            "frozen_at": self.frozen_at,
            "reason": self.reason.value,
            "last_validation_run": self.last_validation_run,
            "caveat": self.caveat,
        }


class FreezeManager:
    """Conserves the last working image of an experiment."""

    NAMESPACE = "reports"

    def __init__(
        self,
        hypervisor: Hypervisor,
        recipe_book: RecipeBook,
        storage: Optional[CommonStorage] = None,
    ) -> None:
        self.hypervisor = hypervisor
        self.recipe_book = recipe_book
        self.storage = storage or recipe_book.storage
        self.storage.create_namespace(self.NAMESPACE)
        self._frozen: Dict[str, FrozenSystem] = {}

    def freeze(
        self,
        experiment: str,
        last_successful_run: ValidationRun,
        reason: FreezeReason,
    ) -> FrozenSystem:
        """Conserve the image that hosted the last successful validation run.

        The run must have passed completely: freezing a broken system would
        conserve exactly the kind of silent incompatibility the validation
        framework exists to prevent.
        """
        if experiment in self._frozen:
            raise ValidationError(f"experiment {experiment!r} is already frozen")
        if last_successful_run.experiment != experiment:
            raise ValidationError(
                f"run {last_successful_run.run_id} belongs to "
                f"{last_successful_run.experiment}, not {experiment}"
            )
        if not last_successful_run.all_passed:
            raise ValidationError(
                f"run {last_successful_run.run_id} did not pass completely; "
                "only a fully working system may be conserved"
            )
        image = self._image_for_configuration(last_successful_run.configuration_key)
        if image is None:
            raise ValidationError(
                "no hypervisor image matches configuration "
                f"{last_successful_run.configuration_key!r}"
            )
        recipe = self._latest_recipe(experiment, last_successful_run)
        self.hypervisor.conserve_image(
            image.name,
            reason=f"{experiment}: {reason.value}",
        )
        frozen = FrozenSystem(
            experiment=experiment,
            image_name=image.name,
            recipe_id=recipe.recipe_id,
            frozen_at=last_successful_run.started_at,
            reason=reason,
            last_validation_run=last_successful_run.run_id,
        )
        self._frozen[experiment] = frozen
        self.storage.put(self.NAMESPACE, f"frozen_{experiment}", frozen.to_document())
        return frozen

    def is_frozen(self, experiment: str) -> bool:
        """True once the experiment's programme has entered the final phase."""
        return experiment in self._frozen

    def frozen_system(self, experiment: str) -> FrozenSystem:
        """Return the conserved system of *experiment*."""
        try:
            return self._frozen[experiment]
        except KeyError:
            raise ValidationError(f"experiment {experiment!r} is not frozen") from None

    def frozen_experiments(self) -> List[str]:
        """All experiments whose systems have been conserved."""
        return sorted(self._frozen)

    def _image_for_configuration(self, configuration_key: str) -> Optional[VirtualMachineImage]:
        for image in self.hypervisor.images():
            if image.configuration.key == configuration_key:
                return image
        return None

    def _latest_recipe(
        self, experiment: str, run: ValidationRun
    ) -> ValidatedRecipe:
        recipe = self.recipe_book.latest_for(experiment)
        if recipe is None or recipe.validated_by_run != run.run_id:
            # Publish the recipe proven by this run so the frozen system is
            # always accompanied by a redeployable prescription.
            configuration = self._image_for_configuration(run.configuration_key)
            if configuration is None:
                raise ValidationError(
                    f"cannot publish recipe: no image for {run.configuration_key!r}"
                )
            recipe = self.recipe_book.publish_from_run(run, configuration.configuration)
        return recipe


__all__ = ["FreezeReason", "FrozenSystem", "FreezeManager"]
