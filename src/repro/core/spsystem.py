"""The sp-system facade: the validation framework as a single object.

:class:`SPSystem` wires the substrates together the way the DESY installation
does: a hypervisor hosting the standard virtual machine images, the common
storage every client mounts, the run catalogue and bookkeeping, the builder
and validation runner, regression detection, failure diagnosis, intervention
tickets, recipes and the freeze manager.  It is the main entry point of the
library; the examples and the figure benchmarks drive everything through it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro._common import ReproError, SchedulingError, StorageError, ValidationError
from repro.buildsys.builder import PackageBuilder
from repro.core.diagnosis import DiagnosisReport, FailureDiagnosisEngine
from repro.core.freeze import FreezeManager, FreezeReason, FrozenSystem
from repro.core.intervention import InterventionTicket
from repro.core.jobs import ValidationRun
from repro.core.recipe import RecipeBook, ValidatedRecipe
from repro.core.regression import RegressionDetector, RegressionReport
from repro.core.runner import (
    NumericContextFactory,
    RunnerSettings,
    ValidationRunner,
    default_numeric_context,
)
from repro.core.testspec import ExperimentDefinition
from repro.core.workflow import PreservationWorkflow, WorkflowPhase
from repro.environment.configuration import (
    EnvironmentConfiguration,
    sp_system_configurations,
)
from repro.environment.evolution import EnvironmentEvent
from repro.history.ledger import ValidationHistoryLedger
from repro.plugins import campaign_plugin
from repro.plugins.history_recorder import HistoryRecorderPlugin
from repro.plugins.interventions import InterventionStore, new_intervention_tracker
from repro.scheduler.cache import BuildCache, CachingPackageBuilder
from repro.scheduler.campaign import (
    DEFAULT_BATCH_SIZE,
    CampaignCell,
    CampaignResult,
    CampaignScheduler,
)
from repro.scheduler.lifecycle import (
    EVENT_CAMPAIGN_FINISHED,
    EVENT_EVOLUTION_RECORDED,
    DeadlineAbortPolicy,
    EarlyStopPolicy,
    FileEventSink,
    LifecycleObserver,
    PluginRegistry,
)
from repro.scheduler.pool import SCHEDULING_POLICIES, SchedulingPolicy, WorkerFailure
from repro.scheduler.spec import CampaignSpec
from repro.storage.artifacts import ArtifactStore
from repro.storage.bookkeeping import JobIdAllocator, SimulatedClock, TagRegistry
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.storage.catalog import RunCatalog
from repro.storage.common_storage import CommonStorage
from repro.virtualization.hypervisor import Hypervisor
from repro.virtualization.provisioning import ProvisioningService
from repro.virtualization.resources import VALIDATION_VM_PROFILE, ResourceProfile


@dataclass
class ValidationCycleResult:
    """Everything one validation cycle of an experiment produced."""

    run: ValidationRun
    regression_report: RegressionReport
    diagnosis: Optional[DiagnosisReport] = None
    tickets: List[InterventionTicket] = field(default_factory=list)

    @property
    def successful(self) -> bool:
        """True when the run passed completely."""
        return self.run.all_passed

    def summary(self) -> str:
        """One-line summary for logs."""
        verdict = "PASSED" if self.successful else "FAILED"
        return (
            f"{self.run.experiment} on {self.run.configuration_key}: {verdict} "
            f"({self.run.n_passed}/{self.run.n_jobs} tests, "
            f"{len(self.tickets)} ticket(s) opened)"
        )


@dataclass
class CampaignHandle:
    """The submission record of one campaign: status, progress and result.

    :meth:`SPSystem.submit` executes synchronously (the library is fully
    deterministic), so a returned handle is normally ``completed``; the
    progress counters tick cell by cell during execution and can be observed
    through the submission's ``on_cell_complete`` callback.  The handle's
    spec is what was persisted into the ``campaigns`` storage namespace —
    loading it back and resubmitting replays the identical campaign.
    """

    campaign_id: str
    spec: CampaignSpec
    status: str = "pending"
    cells_total: int = 0
    cells_completed: int = 0
    error: Optional[str] = None
    _campaign: Optional[CampaignResult] = field(default=None, repr=False)

    @property
    def progress(self) -> float:
        """Fraction of matrix cells executed so far (1.0 for an empty spec)."""
        if self.cells_total <= 0:
            return 1.0
        return self.cells_completed / self.cells_total

    def result(self) -> CampaignResult:
        """The campaign result; raises unless the campaign completed."""
        if self.status != "completed" or self._campaign is None:
            detail = f": {self.error}" if self.error else ""
            raise SchedulingError(
                f"campaign {self.campaign_id} has not completed "
                f"(status {self.status}){detail}"
            )
        return self._campaign

    def describe(self) -> Dict[str, object]:
        """The JSON document persisted for this submission."""
        return {
            "campaign_id": self.campaign_id,
            "status": self.status,
            "cells_total": self.cells_total,
            "cells_completed": self.cells_completed,
            "error": self.error,
            "spec": self.spec.to_dict(),
        }


def _resume_id_allocator(storage: CommonStorage) -> JobIdAllocator:
    """A job-ID allocator that continues past every ID already in *storage*.

    A fresh installation mounted on a loaded common storage must not re-issue
    IDs of the runs and jobs it inherited — the catalogue would reject the
    colliding run records.  The run documents carry every allocated ID, so
    the allocator resumes one past the highest of them.
    """
    allocator = JobIdAllocator()
    prefix = f"{allocator.prefix}-"
    highest = 0
    if RunCatalog.NAMESPACE in storage.namespaces():
        namespace = storage.namespace(RunCatalog.NAMESPACE)
        for key in namespace.keys(prefix="runmeta_"):
            document = namespace.get(key)
            identifiers = [document.get("run_id", "")]  # type: ignore[union-attr]
            identifiers.extend(
                job.get("job_id", "")
                for job in document.get("jobs", [])  # type: ignore[union-attr]
            )
            for identifier in identifiers:
                if str(identifier).startswith(prefix):
                    suffix = str(identifier)[len(prefix):]
                    if suffix.isdigit():
                        highest = max(highest, int(suffix))
    return JobIdAllocator(start=highest + 1)


class SPSystem:
    """The software preservation validation system."""

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        numeric_context_factory: NumericContextFactory = default_numeric_context,
        runner_settings: Optional[RunnerSettings] = None,
        storage: Optional[CommonStorage] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        # Telemetry defaults to the no-op bundle: uninstrumented runs pay
        # one method dispatch per probe point, and science output is
        # byte-identical either way (pinned by TestBackendParity).
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # A pre-populated storage (e.g. CommonStorage.load of a previous
        # installation's persisted state) is mounted as-is: the catalogue
        # re-hydrates its run records from it and run_campaign warm-starts
        # the build cache from its `buildcache` namespace.
        self.storage = storage if storage is not None else CommonStorage()
        self.catalog = RunCatalog(self.storage)
        self.artifact_store = ArtifactStore()
        self.id_allocator = _resume_id_allocator(self.storage)
        self.tag_registry = TagRegistry()
        self.hypervisor = Hypervisor(clock=self.clock, storage=self.storage)
        self.provisioning = ProvisioningService(self.hypervisor, self.storage)
        self.builder = PackageBuilder()
        self.runner = ValidationRunner(
            storage=self.storage,
            catalog=self.catalog,
            artifact_store=self.artifact_store,
            clock=self.clock,
            id_allocator=self.id_allocator,
            tag_registry=self.tag_registry,
            builder=self.builder,
            numeric_context_factory=numeric_context_factory,
            settings=runner_settings,
        )
        self.regression_detector = RegressionDetector(self.storage, self.catalog)
        self.diagnosis_engine = FailureDiagnosisEngine()
        self.interventions = new_intervention_tracker()
        self.recipe_book = RecipeBook(self.storage)
        self.freeze_manager = FreezeManager(self.hypervisor, self.recipe_book, self.storage)
        self.workflow = PreservationWorkflow()
        self.build_cache = BuildCache(self.artifact_store)
        self.last_campaign: Optional[CampaignResult] = None
        self._campaign_counter = 0
        self._experiments: Dict[str, ExperimentDefinition] = {}
        self._configurations: Dict[str, EnvironmentConfiguration] = {}
        # A storage that already carries a history ledger (e.g. the loaded
        # state of a previous installation) mounts it immediately: the
        # journal is replayed and the secondary indexes rebuilt, so
        # longitudinal queries and the record_history=None auto mode see
        # the inherited history from the first submission on.
        self.history: Optional[ValidationHistoryLedger] = (
            ValidationHistoryLedger(self.storage)
            if ValidationHistoryLedger.exists_in(self.storage)
            else None
        )
        if self.history is not None:
            self._resume_ids_past_history()
        # The lifecycle bus.  The system-level history recorder registers
        # first; per-submission plugins (spec.plugins, event sinks, abort
        # policies) are scoped onto the registry around each submit() and
        # therefore always observe a campaign *after* its cells have landed
        # on the ledger.
        self.lifecycle = PluginRegistry()
        self.lifecycle.add_observer(HistoryRecorderPlugin(self))

    # -- setup ----------------------------------------------------------------
    def provision_standard_images(self) -> List[str]:
        """Build the five standard sp-system virtual machine images."""
        report = self.provisioning.provision_standard_images()
        for configuration in sp_system_configurations():
            self._configurations[configuration.key] = configuration
        return report.images_built

    def add_configuration(self, configuration: EnvironmentConfiguration) -> str:
        """Add an additional environment configuration (and build its image)."""
        if configuration.key not in self._configurations:
            self._configurations[configuration.key] = configuration
            if self.hypervisor.image_for_configuration(configuration) is None:
                self.hypervisor.build_image(configuration)
        return configuration.key

    def replace_configuration(
        self,
        configuration: EnvironmentConfiguration,
        event: Optional[EnvironmentEvent] = None,
    ) -> str:
        """Swap a known configuration in place (an environment evolution).

        This models "new OS and software versions will then be integrated
        into the system": the configuration keeps its key (same OS, word
        size, compiler label) while its content — typically an upgraded
        external such as ROOT 6 — changes, so subsequent validations of the
        same matrix cell run against the evolved environment.  The build
        cache keys on the configuration's content fingerprint, so entries
        of the previous state simply stop matching; the history ledger
        records the new fingerprint per cell, which is how longitudinal
        queries see the flip.  Unknown keys are added like
        :meth:`add_configuration`.

        The swap is announced on the lifecycle bus as
        ``evolution_recorded``.  With *event* (the
        :class:`~repro.environment.evolution.EnvironmentEvent` that drove
        the swap), the history recorder also stamps the event onto a
        mounted ledger's time axis — replacing the manual
        ``system.history.record_evolution(event, ...)`` call.
        """
        self._configurations[configuration.key] = configuration
        if self.hypervisor.image_for_configuration(configuration) is None:
            self.hypervisor.build_image(configuration)
        payload: Dict[str, object] = {"configuration_key": configuration.key}
        if event is not None:
            payload.update(
                year=event.year, kind=event.kind, subject=event.subject
            )
        self.lifecycle.emit(
            EVENT_EVOLUTION_RECORDED,
            payload=payload,
            subjects={"event": event, "configuration": configuration},
        )
        return configuration.key

    def configurations(self) -> List[EnvironmentConfiguration]:
        """All configurations known to the system, sorted by key."""
        return [self._configurations[key] for key in sorted(self._configurations)]

    def configuration(self, key: str) -> EnvironmentConfiguration:
        """Return the configuration with the given key."""
        try:
            return self._configurations[key]
        except KeyError:
            known = ", ".join(sorted(self._configurations))
            raise ValidationError(
                f"unknown configuration {key!r} (known: {known})"
            ) from None

    def register_experiment(
        self,
        experiment: ExperimentDefinition,
        baseline_configuration: Optional[EnvironmentConfiguration] = None,
    ) -> None:
        """Register an experiment and complete its preparation phase."""
        if experiment.name in self._experiments:
            raise ValidationError(f"experiment {experiment.name!r} already registered")
        self._experiments[experiment.name] = experiment
        self.workflow.register(experiment.name)
        if baseline_configuration is not None:
            self.workflow.complete_preparation(
                experiment, baseline_configuration, self.clock.now
            )

    def experiment(self, name: str) -> ExperimentDefinition:
        """Return the registered experiment called *name*."""
        try:
            return self._experiments[name]
        except KeyError:
            raise ValidationError(f"experiment {name!r} is not registered") from None

    def experiments(self) -> List[ExperimentDefinition]:
        """All registered experiments sorted by name."""
        return [self._experiments[name] for name in sorted(self._experiments)]

    # -- validation cycles ------------------------------------------------------
    def validate(
        self,
        experiment_name: str,
        configuration_key: str,
        description: Optional[str] = None,
        reference_configuration_key: Optional[str] = None,
    ) -> ValidationCycleResult:
        """Run one full validation cycle (work-flow steps ii and iii).

        The experiment suite is built and run on the named configuration, the
        result is compared against the last successful run, failures are
        diagnosed and intervention tickets opened.
        """
        experiment = self.experiment(experiment_name)
        configuration = self.configuration(configuration_key)
        phase = self.workflow.phase_of(experiment_name)
        if phase is WorkflowPhase.FROZEN:
            raise ValidationError(
                f"experiment {experiment_name} is frozen; no further validation runs"
            )
        if phase is WorkflowPhase.PREPARATION:
            self.workflow.complete_preparation(experiment, configuration, self.clock.now)
        run = self.runner.run(experiment, configuration, description)
        regression_report = self.regression_detector.compare_to_reference(run)
        diagnosis: Optional[DiagnosisReport] = None
        tickets: List[InterventionTicket] = []
        if not run.all_passed:
            reference_configuration = None
            if reference_configuration_key is not None:
                reference_configuration = self.configuration(reference_configuration_key)
            elif regression_report.reference_configuration_key in self._configurations:
                reference_configuration = self._configurations[
                    regression_report.reference_configuration_key
                ]
            diagnosis = self.diagnosis_engine.diagnose_run(
                run,
                reference_configuration=reference_configuration,
                current_configuration=configuration,
                regression_report=regression_report,
            )
            tickets = self.interventions.open_from_diagnosis(diagnosis, self.clock.now)
            if self.workflow.phase_of(experiment_name) is WorkflowPhase.REGULAR_VALIDATION:
                self.workflow.transition(
                    experiment_name,
                    WorkflowPhase.INTERVENTION,
                    self.clock.now,
                    reason=f"run {run.run_id} failed {run.n_failed} test(s)",
                )
        else:
            if self.workflow.phase_of(experiment_name) is WorkflowPhase.INTERVENTION:
                self.workflow.transition(
                    experiment_name,
                    WorkflowPhase.REGULAR_VALIDATION,
                    self.clock.now,
                    reason=f"run {run.run_id} passed; problems resolved",
                )
        return ValidationCycleResult(
            run=run,
            regression_report=regression_report,
            diagnosis=diagnosis,
            tickets=tickets,
        )

    # -- campaign submission (the unified execution API) -----------------------
    def submit(
        self,
        spec: CampaignSpec,
        on_cell_complete: Optional[Callable[[CampaignCell], None]] = None,
        policy: Optional[SchedulingPolicy] = None,
    ) -> CampaignHandle:
        """Run the validation campaign described by *spec*.

        *policy* optionally supplies a :class:`SchedulingPolicy` *instance*
        to schedule with instead of resolving ``spec.policy`` from the
        registry — instances (e.g. custom or stateful policies) cannot
        travel inside a serialised spec, so a replayed spec falls back to
        its registry name.

        This is the single execution entrypoint: the spec names the matrix
        (cross product or explicit request list), the pool geometry, the
        scheduling policy and the execution backend; the campaign DAG is
        dispatched accordingly and the system-wide build cache de-duplicates
        identical package builds.  The produced runs and catalogue records
        are bit-identical to calling :meth:`validate` cell by cell, for any
        worker count, any policy and any backend — and, thanks to replayed
        cache entries, for any warm-start state.

        With ``spec.warm_start`` (the default), a build-cache journal
        persisted in the common storage's ``buildcache`` namespace is
        replayed before the first campaign of this installation, so a fresh
        ``SPSystem`` mounted on a loaded storage starts with the previous
        installation's cache; ``spec.use_cache=False`` disables the cache
        layer entirely (the cold-path debugging mode).  With
        ``spec.persist_spec`` (the default), the
        submission is recorded in the ``campaigns`` namespace, so the spec
        travels with the persisted storage and replays the identical
        campaign on a fresh installation.
        """
        with self.telemetry.tracer.span("spec_validation", category="cell"):
            spec.validate()
        if spec.use_cache and spec.warm_start and len(self.build_cache) == 0:
            # Installs the restored cache as self.build_cache (no-op probe
            # when the storage carries no journal).  Must precede scheduler
            # construction: the scheduler binds the cache by reference.
            with self.telemetry.tracer.span("cache_warm_start", category="journal"):
                self.restore_build_cache(missing_ok=True)
        profile = VALIDATION_VM_PROFILE
        if spec.slots_per_worker is not None:
            profile = ResourceProfile(
                cpu_cores=spec.slots_per_worker,
                memory_gb=VALIDATION_VM_PROFILE.memory_gb,
                disk_gb=VALIDATION_VM_PROFILE.disk_gb,
            )
        scheduler = CampaignScheduler(
            self,
            workers=spec.workers,
            batch_size=spec.batch_size,
            worker_profile=profile,
            failures=spec.failures,
            cache=self.build_cache,
            policy=policy if policy is not None else spec.policy,
            deadline_seconds=spec.deadline_seconds,
            backend=spec.backend,
            cache_budget_bytes=spec.cache_budget_bytes,
            use_cache=spec.use_cache,
            shards=spec.shards,
            lifecycle=self.lifecycle,
        )
        requests = (
            list(spec.requests)
            if spec.requests is not None
            else scheduler.expand_matrix(spec.experiments, spec.configuration_keys)
        )
        handle = CampaignHandle(
            campaign_id=self._allocate_campaign_id(),
            spec=spec,
            cells_total=len(requests) * spec.rounds,
        )
        scheduler.campaign_id = handle.campaign_id
        if spec.persist_spec:
            self._persist_campaign_record(handle)
        handle.status = "running"

        def record_cell(cell: CampaignCell) -> None:
            handle.cells_completed += 1
            if on_cell_complete is not None:
                on_cell_complete(cell)

        # Per-submission plugins ride the registry only for this campaign;
        # scoped() removes them again even when the campaign fails.
        with self.lifecycle.scoped(
            observers=self._spec_observers(spec),
            policies=self._spec_policies(spec),
        ):
            try:
                campaign = scheduler.run_requests(
                    requests,
                    description=spec.description,
                    rounds=spec.rounds,
                    on_cell_complete=record_cell,
                )
            except ReproError as error:
                handle.status = "failed"
                handle.error = str(error)
                if spec.persist_spec:
                    self._persist_campaign_record(handle)
                raise
            campaign.spec = spec
            handle._campaign = campaign
            handle.status = "completed"
            self.last_campaign = campaign
            if spec.persist_spec:
                self._persist_campaign_record(handle)
            # History ingestion (the system-level recorder) and any spec
            # plugins run off this event, in registration order.
            self.lifecycle.emit(
                EVENT_CAMPAIGN_FINISHED,
                campaign_id=handle.campaign_id,
                payload={
                    "cells": len(campaign.cells),
                    "backend": campaign.backend,
                    "all_passed": campaign.all_passed,
                },
                subjects={"handle": handle, "campaign": campaign},
            )
        return handle

    def _spec_observers(self, spec: CampaignSpec) -> List[LifecycleObserver]:
        """The observers one spec requests for the duration of its campaign."""
        observers: List[LifecycleObserver] = [
            campaign_plugin(name, self) for name in spec.plugins
        ]
        if spec.event_log is not None:
            observers.append(FileEventSink(spec.event_log))
        return observers

    def _spec_policies(self, spec: CampaignSpec) -> List[EarlyStopPolicy]:
        """The early-stop policies one spec requests for its campaign."""
        if spec.on_deadline == "abort":
            return [DeadlineAbortPolicy()]
        return []

    #: Common-storage namespace recording submitted campaign specs.
    CAMPAIGNS_NAMESPACE = "campaigns"

    def _allocate_campaign_id(self) -> str:
        """A campaign ID unique within this installation and its storage."""
        inherited_history = (
            set(self.history.campaign_ids()) if self.history is not None else set()
        )
        while True:
            self._campaign_counter += 1
            campaign_id = f"campaign-{self._campaign_counter:04d}"
            # Skip over IDs inherited from a mounted storage's past
            # submissions — recorded spec documents and history-ledger
            # campaigns alike — so a resumed installation never overwrites
            # or merges into them.
            if campaign_id in inherited_history:
                continue
            if self.CAMPAIGNS_NAMESPACE not in self.storage.namespaces():
                return campaign_id
            if not self.storage.exists(
                self.CAMPAIGNS_NAMESPACE, f"spec_{campaign_id}"
            ):
                return campaign_id

    def _persist_campaign_record(self, handle: CampaignHandle) -> None:
        self.storage.create_namespace(self.CAMPAIGNS_NAMESPACE)
        self.storage.put(
            self.CAMPAIGNS_NAMESPACE,
            f"spec_{handle.campaign_id}",
            handle.describe(),
        )

    # -- validation history ----------------------------------------------------
    def enable_history(self) -> ValidationHistoryLedger:
        """The installation's history ledger, creating it on first use."""
        if self.history is None:
            self.history = ValidationHistoryLedger(self.storage)
        return self.history

    def restore_history(
        self,
        storage: Optional[CommonStorage] = None,
        missing_ok: bool = False,
    ) -> Optional[ValidationHistoryLedger]:
        """Mount a persisted history ledger, copying a foreign journal in.

        Mirrors :meth:`restore_build_cache`: reading from a *foreign*
        storage copies its ``history`` namespace into this installation's
        own storage first (the source is never modified), then rebuilds the
        ledger indexes from the journal.  Without a ledger, raises
        :class:`~repro._common.StorageError` — or returns None when
        *missing_ok* is set.
        """
        source = storage if storage is not None else self.storage
        if not ValidationHistoryLedger.exists_in(source):
            if missing_ok:
                return None
            raise StorageError(
                "no persisted validation history: the storage has no "
                f"{ValidationHistoryLedger.NAMESPACE!r} namespace"
            )
        if source is not self.storage:
            self._mount_namespace_from(source, ValidationHistoryLedger.NAMESPACE)
        self.history = ValidationHistoryLedger(self.storage)
        self._resume_ids_past_history()
        return self.history

    def _resume_ids_past_history(self) -> None:
        """Never re-issue a run ID the mounted ledger already recorded.

        A ledger mounted without the full run history (e.g. the CLI loads
        only the ``history`` namespace) proves which run IDs a previous
        installation handed out; re-issuing one would make a genuinely new
        run look like a duplicate to the ledger's idempotence check.
        """
        if self.history is None:
            return
        prefix = f"{self.id_allocator.prefix}-"
        highest = 0
        for event in self.history.events():
            if event.run_id.startswith(prefix):
                suffix = event.run_id[len(prefix):]
                if suffix.isdigit():
                    highest = max(highest, int(suffix))
        self.id_allocator.ensure_past(highest)

    # -- intervention tickets --------------------------------------------------
    def restore_interventions(
        self,
        storage: Optional[CommonStorage] = None,
        missing_ok: bool = False,
    ) -> Optional[InterventionStore]:
        """Mount persisted intervention tickets, copying a foreign namespace in.

        Mirrors :meth:`restore_history`: reading from a *foreign* storage
        copies its ``interventions`` namespace into this installation's own
        storage first (the source is never modified), then rebuilds the
        ticket store from the persisted documents.  Without tickets, raises
        :class:`~repro._common.StorageError` — or returns None when
        *missing_ok* is set.
        """
        source = storage if storage is not None else self.storage
        if not InterventionStore.exists_in(source):
            if missing_ok:
                return None
            raise StorageError(
                "no persisted interventions: the storage has no "
                f"{InterventionStore.NAMESPACE!r} namespace"
            )
        if source is not self.storage:
            self._mount_namespace_from(source, InterventionStore.NAMESPACE)
        return InterventionStore(self.storage)

    # -- deprecated kwarg entrypoints (thin shims over submit) -----------------
    def run_campaign(
        self,
        experiment_names: Optional[Iterable[str]] = None,
        configuration_keys: Optional[Iterable[str]] = None,
        description: Optional[str] = None,
        workers: int = 1,
        rounds: int = 1,
        batch_size: int = DEFAULT_BATCH_SIZE,
        failures: Iterable[WorkerFailure] = (),
        policy: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        warm_start: bool = True,
        backend: str = "simulated",
    ) -> CampaignResult:
        """Deprecated: build a :class:`CampaignSpec` and call :meth:`submit`."""
        warnings.warn(
            "SPSystem.run_campaign is deprecated; build a CampaignSpec and "
            "call SPSystem.submit(spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        # A policy *instance* cannot travel in the serialisable spec; it is
        # handed to submit() as an override, and the spec records its
        # registry name (or the default for unregistered custom policies).
        policy_instance = policy if isinstance(policy, SchedulingPolicy) else None
        if policy_instance is not None:
            policy_name = (
                policy_instance.name
                if policy_instance.name in SCHEDULING_POLICIES
                else "fifo"
            )
        else:
            policy_name = policy or "fifo"
        spec = CampaignSpec(
            experiments=(
                None if experiment_names is None else tuple(experiment_names)
            ),
            configuration_keys=(
                None if configuration_keys is None else tuple(configuration_keys)
            ),
            description=description,
            workers=workers,
            rounds=rounds,
            batch_size=batch_size,
            failures=tuple(failures),
            policy=policy_name,
            deadline_seconds=deadline_seconds,
            backend=backend,
            warm_start=warm_start,
            # The legacy entrypoints never wrote to the storage; keeping the
            # shims record-free preserves byte-identical persisted state.
            persist_spec=False,
        )
        return self.submit(spec, policy=policy_instance).result()

    def validate_everywhere(
        self,
        experiment_name: str,
        configuration_keys: Optional[Iterable[str]] = None,
        description: Optional[str] = None,
        workers: int = 1,
    ) -> List[ValidationCycleResult]:
        """Deprecated: build a :class:`CampaignSpec` and call :meth:`submit`."""
        warnings.warn(
            "SPSystem.validate_everywhere is deprecated; build a CampaignSpec "
            "and call SPSystem.submit(spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = CampaignSpec(
            experiments=(experiment_name,),
            configuration_keys=(
                None if configuration_keys is None else tuple(configuration_keys)
            ),
            description=description,
            workers=workers,
            persist_spec=False,
        )
        return self.submit(spec).result().cycles_for(experiment_name)

    def validate_all_experiments(
        self,
        configuration_keys: Optional[Iterable[str]] = None,
        workers: int = 1,
        rounds: int = 1,
    ) -> Dict[str, List[ValidationCycleResult]]:
        """Deprecated: build a :class:`CampaignSpec` and call :meth:`submit`."""
        warnings.warn(
            "SPSystem.validate_all_experiments is deprecated; build a "
            "CampaignSpec and call SPSystem.submit(spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = CampaignSpec(
            configuration_keys=(
                None if configuration_keys is None else tuple(configuration_keys)
            ),
            workers=workers,
            rounds=rounds,
            persist_spec=False,
        )
        campaign = self.submit(spec).result()
        results: Dict[str, List[ValidationCycleResult]] = {
            experiment.name: [] for experiment in self.experiments()
        }
        for name, cycles in campaign.by_experiment().items():
            results[name] = cycles
        return results

    # -- recipes and freezing ------------------------------------------------------
    def publish_recipe(self, result: ValidationCycleResult) -> ValidatedRecipe:
        """Publish the validated recipe proven by a successful cycle."""
        configuration = self.configuration(result.run.configuration_key)
        return self.recipe_book.publish_from_run(result.run, configuration)

    def freeze_experiment(
        self, experiment_name: str, result: ValidationCycleResult, reason: FreezeReason
    ) -> FrozenSystem:
        """Enter the final phase: conserve the last working image."""
        frozen = self.freeze_manager.freeze(experiment_name, result.run, reason)
        self.workflow.transition(
            experiment_name,
            WorkflowPhase.FROZEN,
            self.clock.now,
            reason=reason.value,
        )
        return frozen

    # -- build-cache persistence ---------------------------------------------------
    def persist_build_cache(self, max_bytes: Optional[int] = None) -> int:
        """Append the build cache's changes to its journal in the common storage.

        The journal lives in the ``buildcache`` namespace, so a subsequent
        ``storage.persist(directory)`` carries it to disk alongside the run
        documents, and a fresh installation mounting the loaded storage (or
        calling :meth:`restore_build_cache`) warm-starts by replaying it.
        Persistence is incremental: only entries new since the last persist
        are appended (plus one tombstone per eviction), so repeated
        campaigns write O(new entries) documents.  With *max_bytes*,
        least-recently-hit entries are evicted first so the live cache (and
        therefore the journal's live state) stays within the size budget.
        Returns the number of newly journalled entries.
        """
        cache = self.effective_build_cache()
        with self.telemetry.tracer.span("journal_persist", category="journal"):
            appended = cache.persist_to(self.storage, max_bytes=max_bytes)
        self.telemetry.metrics.increment(
            "journal_entries_persisted_total", amount=appended
        )
        self.telemetry.metrics.set_gauge(
            "journal_bytes", BuildCache.journal_status(self.storage).get("bytes", 0)
        )
        return appended

    def compact_build_cache(self, max_bytes: Optional[int] = None) -> int:
        """Rewrite the build-cache journal from the live cache state.

        Drops accumulated tombstones, superseded records and orphaned
        artifact payloads; with *max_bytes* the live cache is brought under
        the budget first.  Returns the number of entry records written.
        """
        cache = self.effective_build_cache()
        with self.telemetry.tracer.span("journal_compact", category="journal"):
            written = cache.compact(self.storage, max_bytes=max_bytes)
        self.telemetry.metrics.increment("journal_compactions_total")
        self.telemetry.metrics.set_gauge(
            "journal_bytes", BuildCache.journal_status(self.storage).get("bytes", 0)
        )
        return written

    def restore_build_cache(
        self,
        storage: Optional[CommonStorage] = None,
        missing_ok: bool = False,
    ) -> Optional[BuildCache]:
        """Restore the build cache by replaying a persisted ``buildcache`` journal.

        Reads from *storage* (default: this installation's own common
        storage), re-materialises the journal's tarballs into this
        installation's :class:`ArtifactStore` and installs the restored
        cache as :attr:`build_cache`.  When restoring from a *foreign*
        storage, the journal is also mounted (copied) into this
        installation's own storage, so a subsequent
        :meth:`persist_build_cache` appends to the inherited journal
        instead of rewriting it from scratch — the source itself is never
        modified.  Entries whose artifact digest cannot be materialised are
        evicted on restore, and a corrupted trailing journal record is
        dropped (everything before it is recovered).  Without a journal,
        raises :class:`~repro._common.StorageError` — or returns None when
        *missing_ok* is set (the warm-start probe).
        """
        source = storage if storage is not None else self.storage
        if BuildCache.NAMESPACE not in source.namespaces():
            if missing_ok:
                return None
            raise StorageError(
                "no persisted build cache: the storage has no "
                f"{BuildCache.NAMESPACE!r} namespace"
            )
        self.build_cache = BuildCache.restore_from(source, self.artifact_store)
        if source is not self.storage:
            self._mount_namespace_from(source, BuildCache.NAMESPACE)
        return self.build_cache

    def _mount_namespace_from(self, source: CommonStorage, name: str) -> None:
        """Mirror-copy one namespace of *source* into this storage.

        Existing documents of the local namespace are dropped first, so the
        mounted copy exactly matches the source (a merge of two unrelated
        journals would corrupt both).  The source is never modified.
        """
        namespace = self.storage.create_namespace(name)
        for key in namespace.keys():
            namespace.delete(key)
        for key, document in source.namespace(name).items():
            namespace.put(key, document)

    # -- bookkeeping -----------------------------------------------------------------
    def effective_build_cache(self) -> BuildCache:
        """The build cache campaigns actually account against.

        Normally :attr:`build_cache`; if a caching builder was installed
        directly on the runner, its cache is the one that sees the traffic.
        """
        builder = self.runner.builder
        if isinstance(builder, CachingPackageBuilder):
            return builder.cache
        return self.build_cache

    def total_runs(self) -> int:
        """Total number of validation runs recorded so far."""
        return self.catalog.total_runs()

    def describe(self) -> Dict[str, object]:
        """Structured description of the installation (used by figure 1)."""
        return {
            "configurations": [
                configuration.describe() for configuration in self.configurations()
            ],
            "images": [image.describe() for image in self.hypervisor.images()],
            "experiments": {
                experiment.name: {
                    "full_name": experiment.full_name,
                    "preservation_level": int(experiment.preservation_level),
                    "packages": len(experiment.inventory),
                    "tests": experiment.total_test_count(),
                    "phase": self.workflow.phase_of(experiment.name).value,
                }
                for experiment in self.experiments()
            },
            "total_runs": self.total_runs(),
            "storage_documents": self.storage.total_documents(),
            "artifacts": len(self.artifact_store),
            "build_cache": self.effective_build_cache().statistics.as_dict(),
        }


__all__ = ["CampaignHandle", "SPSystem", "ValidationCycleResult"]
