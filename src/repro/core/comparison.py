"""Comparison of validation outputs between runs.

"This allows the validation of all versions against each other and ensures
reproducibility of previous results."  The :class:`OutputComparator` decides
whether the output a test produced in the current run is compatible with the
output of a reference run: yes/no results must match exactly, numbers must
agree within tolerance, text must be identical, histograms must pass a
statistical compatibility test and file summaries must agree field by field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.core.testspec import OutputKind, TestOutput
from repro.hepdata.histogram import ComparisonResult, chi2_comparison, ks_comparison


@dataclass
class ComparisonOutcome:
    """Result of comparing a candidate output against a reference output."""

    test_name: str
    compatible: bool
    messages: List[str] = field(default_factory=list)
    histogram_results: Dict[str, ComparisonResult] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line summary used in reports and intervention tickets."""
        verdict = "compatible" if self.compatible else "INCOMPATIBLE"
        detail = f" ({'; '.join(self.messages)})" if self.messages else ""
        return f"{self.test_name}: {verdict}{detail}"


@dataclass(frozen=True)
class ComparisonPolicy:
    """Tolerances applied when comparing outputs."""

    relative_tolerance: float = 1e-6
    absolute_tolerance: float = 1e-9
    histogram_p_value: float = 0.01
    histogram_method: str = "chi2"
    file_summary_relative_tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if self.relative_tolerance < 0 or self.absolute_tolerance < 0:
            raise ValidationError("tolerances must be non-negative")
        if not 0.0 <= self.histogram_p_value <= 1.0:
            raise ValidationError("p-value threshold must lie in [0, 1]")
        if self.histogram_method not in ("chi2", "ks"):
            raise ValidationError("histogram method must be 'chi2' or 'ks'")


class OutputComparator:
    """Compares :class:`TestOutput` objects field by field."""

    def __init__(self, policy: Optional[ComparisonPolicy] = None) -> None:
        self.policy = policy or ComparisonPolicy()

    def compare(
        self, test_name: str, reference: TestOutput, candidate: TestOutput
    ) -> ComparisonOutcome:
        """Compare *candidate* against *reference* for the named test."""
        if reference.kind is not candidate.kind:
            return ComparisonOutcome(
                test_name=test_name,
                compatible=False,
                messages=[
                    f"output kind changed: {reference.kind.value} -> {candidate.kind.value}"
                ],
            )
        handler = {
            OutputKind.YES_NO: self._compare_yes_no,
            OutputKind.NUMBERS: self._compare_numbers,
            OutputKind.TEXT: self._compare_text,
            OutputKind.HISTOGRAMS: self._compare_histograms,
            OutputKind.FILE_SUMMARY: self._compare_file_summary,
        }[reference.kind]
        return handler(test_name, reference, candidate)

    # -- per-kind comparisons ---------------------------------------------
    def _compare_yes_no(
        self, test_name: str, reference: TestOutput, candidate: TestOutput
    ) -> ComparisonOutcome:
        compatible = reference.yes_no == candidate.yes_no
        messages = []
        if not compatible:
            messages.append(
                f"yes/no result changed: {reference.yes_no} -> {candidate.yes_no}"
            )
        return ComparisonOutcome(test_name, compatible, messages)

    def _compare_numbers(
        self, test_name: str, reference: TestOutput, candidate: TestOutput
    ) -> ComparisonOutcome:
        messages: List[str] = []
        for key in sorted(set(reference.numbers) | set(candidate.numbers)):
            if key not in reference.numbers:
                messages.append(f"new quantity {key!r} appeared")
                continue
            if key not in candidate.numbers:
                messages.append(f"quantity {key!r} disappeared")
                continue
            ref_value = reference.numbers[key]
            cand_value = candidate.numbers[key]
            if not self._close(ref_value, cand_value, self.policy.relative_tolerance):
                messages.append(
                    f"{key}: {ref_value:.6g} -> {cand_value:.6g} "
                    f"(relative change {self._relative_change(ref_value, cand_value):.3g})"
                )
        return ComparisonOutcome(test_name, not messages, messages)

    def _compare_text(
        self, test_name: str, reference: TestOutput, candidate: TestOutput
    ) -> ComparisonOutcome:
        if reference.text == candidate.text:
            return ComparisonOutcome(test_name, True)
        reference_lines = reference.text.splitlines()
        candidate_lines = candidate.text.splitlines()
        messages = [
            f"text output differs ({len(reference_lines)} vs {len(candidate_lines)} lines)"
        ]
        for index, (ref_line, cand_line) in enumerate(
            zip(reference_lines, candidate_lines)
        ):
            if ref_line != cand_line:
                messages.append(f"first difference at line {index + 1}")
                break
        return ComparisonOutcome(test_name, False, messages)

    def _compare_histograms(
        self, test_name: str, reference: TestOutput, candidate: TestOutput
    ) -> ComparisonOutcome:
        if reference.histograms is None or candidate.histograms is None:
            return ComparisonOutcome(
                test_name, False, ["histogram payload missing in one of the outputs"]
            )
        results = reference.histograms.compare(
            candidate.histograms,
            method=self.policy.histogram_method,
            threshold_p_value=self.policy.histogram_p_value,
        )
        messages: List[str] = []
        missing = set(reference.histograms.names()) - set(candidate.histograms.names())
        extra = set(candidate.histograms.names()) - set(reference.histograms.names())
        for name in sorted(missing):
            messages.append(f"histogram {name!r} disappeared")
        for name in sorted(extra):
            messages.append(f"new histogram {name!r} appeared")
        for name, result in sorted(results.items()):
            if not result.compatible:
                messages.append(f"histogram {name!r}: {result}")
        return ComparisonOutcome(test_name, not messages, messages, results)

    def _compare_file_summary(
        self, test_name: str, reference: TestOutput, candidate: TestOutput
    ) -> ComparisonOutcome:
        messages: List[str] = []
        for key in sorted(set(reference.file_summary) | set(candidate.file_summary)):
            ref_value = reference.file_summary.get(key)
            cand_value = candidate.file_summary.get(key)
            if ref_value is None or cand_value is None:
                messages.append(f"file summary field {key!r} present in only one output")
                continue
            if not self._close(
                ref_value, cand_value, self.policy.file_summary_relative_tolerance
            ):
                messages.append(f"{key}: {ref_value:.6g} -> {cand_value:.6g}")
        return ComparisonOutcome(test_name, not messages, messages)

    # -- helpers ------------------------------------------------------------
    def _close(self, reference: float, candidate: float, relative: float) -> bool:
        difference = abs(reference - candidate)
        if difference <= self.policy.absolute_tolerance:
            return True
        scale = max(abs(reference), abs(candidate))
        return difference <= relative * scale

    @staticmethod
    def _relative_change(reference: float, candidate: float) -> float:
        scale = max(abs(reference), abs(candidate), 1e-300)
        return abs(reference - candidate) / scale


__all__ = ["ComparisonOutcome", "ComparisonPolicy", "OutputComparator"]
