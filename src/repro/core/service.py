"""Regular operation of the sp-system: scheduled validations over time.

Work-flow step (ii) says the build and validation happen "automatically
according to the current prescription of the working environment" and that
"at regular intervals, new OS and software versions will then be integrated
into the system".  The :class:`RegularValidationService` automates exactly
that on top of the :class:`~repro.core.spsystem.SPSystem` facade: it installs
cron schedules per experiment and configuration, advances the simulated clock
day by day, runs the due validations, and can integrate a new environment
configuration into the rotation mid-campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._common import SchedulingError, ValidationError
from repro.core.spsystem import SPSystem, ValidationCycleResult
from repro.core.workflow import WorkflowPhase
from repro.scheduler.spec import CampaignSpec, ValidationRequest
from repro.virtualization.cron import CronExpression


@dataclass
class ScheduledValidation:
    """One recurring validation entry in the service's schedule."""

    experiment_name: str
    configuration_key: str
    cron_expression: CronExpression
    description: str
    enabled: bool = True
    run_count: int = 0
    last_result_successful: Optional[bool] = None

    @property
    def key(self) -> str:
        """Unique key of the schedule entry."""
        return f"{self.experiment_name}@{self.configuration_key}"


@dataclass
class ServiceReport:
    """What one advance of the service clock did."""

    days_advanced: float
    cycles_run: List[ValidationCycleResult] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def n_cycles(self) -> int:
        return len(self.cycles_run)

    @property
    def n_failed_cycles(self) -> int:
        return sum(1 for cycle in self.cycles_run if not cycle.successful)


class RegularValidationService:
    """Drives the regular, cron-scheduled validation of all experiments.

    *record_history* controls whether the due validations are ingested into
    the validation history ledger: ``True`` always records (creating the
    ledger on first use), ``False`` never does, and ``None`` — the default
    — records exactly when the system's storage already carries a ledger
    (the auto rule of :class:`~repro.scheduler.spec.CampaignSpec`), so a
    service driving an installation mounted on recorded storage keeps the
    longitudinal history growing without any configuration.

    *plugins* names lifecycle plugins (the
    :data:`~repro.plugins.CAMPAIGN_PLUGINS` registry) attached to every due
    validation's single-cell campaign: a nightly service constructed with
    ``plugins=("regression-alerts",)`` opens intervention tickets the
    morning a regression appears, with no separate detection pass.  Each
    due validation also emits the ordinary ``cell_completed`` /
    ``campaign_finished`` events on the system's lifecycle bus.
    """

    def __init__(
        self,
        system: SPSystem,
        record_history: Optional[bool] = None,
        plugins: Tuple[str, ...] = (),
    ) -> None:
        self.system = system
        self.record_history = record_history
        self.plugins = tuple(plugins)
        self._schedule: Dict[str, ScheduledValidation] = {}

    # -- schedule management ---------------------------------------------------
    def schedule(
        self,
        experiment_name: str,
        configuration_key: str,
        cron_expression: str,
        description: Optional[str] = None,
    ) -> ScheduledValidation:
        """Add a recurring validation of one experiment on one configuration."""
        # Fail fast on unknown names so a typo does not silently never run.
        self.system.experiment(experiment_name)
        self.system.configuration(configuration_key)
        entry = ScheduledValidation(
            experiment_name=experiment_name,
            configuration_key=configuration_key,
            cron_expression=CronExpression.parse(cron_expression),
            description=description
            or f"{experiment_name} regular validation on {configuration_key}",
        )
        if entry.key in self._schedule:
            raise SchedulingError(f"validation {entry.key!r} is already scheduled")
        self._schedule[entry.key] = entry
        return entry

    def schedule_experiment_everywhere(
        self, experiment_name: str, cron_expression: str = "30 2 * * *"
    ) -> List[ScheduledValidation]:
        """Schedule one experiment on every known configuration (nightly by default)."""
        return [
            self.schedule(experiment_name, configuration.key, cron_expression)
            for configuration in self.system.configurations()
            if f"{experiment_name}@{configuration.key}" not in self._schedule
        ]

    def unschedule(self, experiment_name: str, configuration_key: str) -> None:
        """Remove a schedule entry."""
        key = f"{experiment_name}@{configuration_key}"
        if key not in self._schedule:
            raise SchedulingError(f"no scheduled validation {key!r}")
        del self._schedule[key]

    def entries(self) -> List[ScheduledValidation]:
        """All schedule entries, sorted by key."""
        return [self._schedule[key] for key in sorted(self._schedule)]

    def entry(self, experiment_name: str, configuration_key: str) -> ScheduledValidation:
        """Return one schedule entry."""
        key = f"{experiment_name}@{configuration_key}"
        try:
            return self._schedule[key]
        except KeyError:
            raise SchedulingError(f"no scheduled validation {key!r}") from None

    # -- integrating new platforms ----------------------------------------------
    def integrate_new_configuration(
        self,
        configuration,
        cron_expression: str = "0 4 * * 0",
    ) -> List[ScheduledValidation]:
        """Add a new environment configuration to the system and the rotation.

        This is the "new OS and software versions will then be integrated into
        the system" step: the configuration is provisioned as an image and a
        (weekly, by default) validation of every registered experiment on it is
        scheduled.
        """
        key = self.system.add_configuration(configuration)
        added = []
        for experiment in self.system.experiments():
            entry_key = f"{experiment.name}@{key}"
            if entry_key in self._schedule:
                continue
            added.append(self.schedule(experiment.name, key, cron_expression))
        return added

    # -- driving the clock ----------------------------------------------------------
    def advance_days(self, days: float) -> ServiceReport:
        """Advance the simulated clock and run every validation that comes due.

        Firing times are determined from the cron schedule alone (a schedule
        cursor), not from how long the previous validations took: the real
        sp-system runs each configuration on its own client machine, so one
        long nightly run does not delay the others.  Validations due at the
        same minute run in schedule-key order.
        """
        if days < 0:
            raise SchedulingError("cannot advance the service backwards")
        report = ServiceReport(days_advanced=days)
        cursor = self.system.clock.now
        end = cursor + int(days * 86400)
        while True:
            due = self._next_due(cursor, end)
            if due is None:
                break
            fire_time, due_entries = due
            if self.system.clock.now < fire_time:
                self.system.clock.advance(fire_time - self.system.clock.now)
            for entry in due_entries:
                if self.system.workflow.phase_of(entry.experiment_name) is WorkflowPhase.FROZEN:
                    entry.enabled = False
                    report.failures.append(
                        f"{entry.key}: experiment is frozen, schedule entry disabled"
                    )
                    continue
                # Each due validation goes through the unified execution
                # API: a single-cell campaign spec submitted to the system.
                # The spec is not persisted (the cron schedule, not the
                # storage, is the service's book of record) and the run
                # documents stay bit-identical to a plain validate() call.
                spec = CampaignSpec(
                    requests=(
                        ValidationRequest(
                            experiment=entry.experiment_name,
                            configuration_key=entry.configuration_key,
                            description=entry.description,
                        ),
                    ),
                    persist_spec=False,
                    record_history=self.record_history,
                    plugins=self.plugins,
                )
                try:
                    cycle = self.system.submit(spec).result().cells[0].result
                except ValidationError as error:
                    report.failures.append(f"{entry.key}: {error}")
                    continue
                entry.run_count += 1
                entry.last_result_successful = cycle.successful
                report.cycles_run.append(cycle)
            cursor = fire_time
        if self.system.clock.now < end:
            self.system.clock.advance(end - self.system.clock.now)
        return report

    def _next_due(
        self, cursor: int, end_timestamp: int
    ) -> Optional[Tuple[int, List[ScheduledValidation]]]:
        """The earliest firing minute after *cursor* and every entry due then."""
        best_time: Optional[int] = None
        fire_times: Dict[str, int] = {}
        for entry in self.entries():
            if not entry.enabled:
                continue
            try:
                fire_time = entry.cron_expression.next_fire(cursor)
            except SchedulingError:
                continue
            if fire_time > end_timestamp:
                continue
            fire_times[entry.key] = fire_time
            if best_time is None or fire_time < best_time:
                best_time = fire_time
        if best_time is None:
            return None
        due_entries = [
            entry for entry in self.entries() if fire_times.get(entry.key) == best_time
        ]
        return best_time, due_entries

    # -- reporting --------------------------------------------------------------------
    def status_rows(self) -> List[Dict[str, object]]:
        """One row per schedule entry, for the operations report."""
        return [
            {
                "experiment": entry.experiment_name,
                "configuration": entry.configuration_key,
                "schedule": entry.cron_expression.text,
                "enabled": entry.enabled,
                "runs": entry.run_count,
                "last_result": (
                    "-" if entry.last_result_successful is None
                    else ("passed" if entry.last_result_successful else "failed")
                ),
            }
            for entry in self.entries()
        ]


__all__ = ["ScheduledValidation", "ServiceReport", "RegularValidationService"]
