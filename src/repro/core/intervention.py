"""Intervention tickets: routing problems to IT or the experiment.

Work flow step (iii) ends with: "Intervention is then required either by the
host of the validation suite or the experiment themselves, depending on the
nature of the reported problem."  The :class:`InterventionTracker` turns a
diagnosis report into tickets addressed to the right party, tracks their
lifecycle and feeds the "identified and helped to solve several long-standing
bugs" statistic of the reporting layer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.core.diagnosis import Diagnosis, DiagnosisReport
from repro.environment.compatibility import IssueCategory


class TicketStatus(enum.Enum):
    """Lifecycle of an intervention ticket."""

    OPEN = "open"
    IN_PROGRESS = "in-progress"
    RESOLVED = "resolved"
    WONT_FIX = "wont-fix"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class InterventionParty(enum.Enum):
    """Who has to act on a ticket."""

    HOST_IT = "host IT department"
    EXPERIMENT = "experiment"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class InterventionTicket:
    """One problem reported by the validation system."""

    ticket_id: str
    run_id: str
    experiment: str
    test_name: str
    category: IssueCategory
    party: InterventionParty
    opened_at: int
    description: str
    status: TicketStatus = TicketStatus.OPEN
    resolution: str = ""
    resolved_at: Optional[int] = None
    long_standing_bug: bool = False

    def resolve(self, resolution: str, timestamp: int, long_standing_bug: bool = False) -> None:
        """Mark the ticket as resolved."""
        if self.status in (TicketStatus.RESOLVED, TicketStatus.WONT_FIX):
            raise ValidationError(f"ticket {self.ticket_id} is already closed")
        self.status = TicketStatus.RESOLVED
        self.resolution = resolution
        self.resolved_at = timestamp
        self.long_standing_bug = long_standing_bug

    def close_wont_fix(self, reason: str, timestamp: int) -> None:
        """Close the ticket without a fix (e.g. the platform is abandoned)."""
        if self.status in (TicketStatus.RESOLVED, TicketStatus.WONT_FIX):
            raise ValidationError(f"ticket {self.ticket_id} is already closed")
        self.status = TicketStatus.WONT_FIX
        self.resolution = reason
        self.resolved_at = timestamp

    @property
    def is_open(self) -> bool:
        """True while the ticket still needs action."""
        return self.status in (TicketStatus.OPEN, TicketStatus.IN_PROGRESS)


class InterventionTracker:
    """Creates and tracks intervention tickets from diagnosis reports."""

    def __init__(self) -> None:
        self._tickets: Dict[str, InterventionTicket] = {}
        self._counter = 0

    def open_from_diagnosis(
        self, report: DiagnosisReport, timestamp: int
    ) -> List[InterventionTicket]:
        """Open one ticket per diagnosed failure (deduplicated per test/run)."""
        tickets = []
        for diagnosis in report.diagnoses:
            if self._already_open(report.run_id, diagnosis.test_name):
                continue
            tickets.append(self._open_ticket(report, diagnosis, timestamp))
        return tickets

    def _already_open(self, run_id: str, test_name: str) -> bool:
        return any(
            ticket.run_id == run_id and ticket.test_name == test_name and ticket.is_open
            for ticket in self._tickets.values()
        )

    def _open_ticket(
        self, report: DiagnosisReport, diagnosis: Diagnosis, timestamp: int
    ) -> InterventionTicket:
        self._counter += 1
        ticket_id = f"ticket-{self._counter:05d}"
        party = (
            InterventionParty.EXPERIMENT
            if diagnosis.category is IssueCategory.EXPERIMENT_SOFTWARE
            else InterventionParty.HOST_IT
        )
        ticket = InterventionTicket(
            ticket_id=ticket_id,
            run_id=report.run_id,
            experiment=report.experiment,
            test_name=diagnosis.test_name,
            category=diagnosis.category,
            party=party,
            opened_at=timestamp,
            description=diagnosis.summary(),
        )
        self._tickets[ticket_id] = ticket
        return ticket

    def ticket(self, ticket_id: str) -> InterventionTicket:
        """Return the ticket with the given ID."""
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise ValidationError(f"unknown ticket {ticket_id!r}") from None

    def all(self) -> List[InterventionTicket]:
        """All tickets, oldest first."""
        return [self._tickets[key] for key in sorted(self._tickets)]

    def open_tickets(self, party: Optional[InterventionParty] = None) -> List[InterventionTicket]:
        """Open tickets, optionally restricted to one party."""
        return [
            ticket for ticket in self.all()
            if ticket.is_open and (party is None or ticket.party is party)
        ]

    def resolved_tickets(self) -> List[InterventionTicket]:
        """All resolved tickets."""
        return [ticket for ticket in self.all() if ticket.status is TicketStatus.RESOLVED]

    def long_standing_bugs_found(self) -> int:
        """How many resolved tickets uncovered long-standing bugs.

        The paper notes the SL6 migration tests "have already identified and
        helped to solve several long-standing bugs".
        """
        return sum(1 for ticket in self.resolved_tickets() if ticket.long_standing_bug)

    def __len__(self) -> int:
        return len(self._tickets)


__all__ = [
    "TicketStatus",
    "InterventionParty",
    "InterventionTicket",
    "InterventionTracker",
]
