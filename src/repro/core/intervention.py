"""Intervention tickets: routing problems to IT or the experiment.

Work flow step (iii) ends with: "Intervention is then required either by the
host of the validation suite or the experiment themselves, depending on the
nature of the reported problem."  The :class:`InterventionTracker` turns a
diagnosis report into tickets addressed to the right party, tracks their
lifecycle and feeds the "identified and helped to solve several long-standing
bugs" statistic of the reporting layer.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.core.diagnosis import Diagnosis, DiagnosisReport
from repro.environment.compatibility import IssueCategory


class TicketStatus(enum.Enum):
    """Lifecycle of an intervention ticket."""

    OPEN = "open"
    IN_PROGRESS = "in-progress"
    RESOLVED = "resolved"
    WONT_FIX = "wont-fix"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class InterventionParty(enum.Enum):
    """Who has to act on a ticket."""

    HOST_IT = "host IT department"
    EXPERIMENT = "experiment"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class InterventionTicket:
    """One problem reported by the validation system."""

    ticket_id: str
    run_id: str
    experiment: str
    test_name: str
    category: IssueCategory
    party: InterventionParty
    opened_at: int
    description: str
    status: TicketStatus = TicketStatus.OPEN
    resolution: str = ""
    resolved_at: Optional[int] = None
    long_standing_bug: bool = False
    #: Environment configuration the problem was observed on (regression
    #: tickets opened by the alerting plugin; empty for diagnosis tickets).
    configuration_key: str = ""
    #: Label of the evolution event suspected to have caused the problem.
    suspected_change: str = ""
    #: How many times a resolved ticket was re-opened on recurrence.
    reopen_count: int = 0

    def resolve(self, resolution: str, timestamp: int, long_standing_bug: bool = False) -> None:
        """Mark the ticket as resolved."""
        if self.status in (TicketStatus.RESOLVED, TicketStatus.WONT_FIX):
            raise ValidationError(f"ticket {self.ticket_id} is already closed")
        self.status = TicketStatus.RESOLVED
        self.resolution = resolution
        self.resolved_at = timestamp
        self.long_standing_bug = long_standing_bug

    def close_wont_fix(self, reason: str, timestamp: int) -> None:
        """Close the ticket without a fix (e.g. the platform is abandoned)."""
        if self.status in (TicketStatus.RESOLVED, TicketStatus.WONT_FIX):
            raise ValidationError(f"ticket {self.ticket_id} is already closed")
        self.status = TicketStatus.WONT_FIX
        self.resolution = reason
        self.resolved_at = timestamp

    def reopen(self, timestamp: int, description: str = "") -> None:
        """Re-open a *resolved* ticket whose problem recurred.

        Re-opening keeps the ticket's identity (and therefore its history in
        reports) instead of opening a duplicate: the status flips back to
        OPEN, the reopen counter advances and the new observation replaces
        the description.  Only resolved tickets re-open — a wont-fix closure
        is a decision, not a fix, so recurrence there is expected and stays
        closed; an open ticket has nothing to re-open.
        """
        if self.status is not TicketStatus.RESOLVED:
            raise ValidationError(
                f"ticket {self.ticket_id} is {self.status.value}, not "
                "resolved; only resolved tickets re-open"
            )
        self.status = TicketStatus.OPEN
        self.resolution = ""
        self.resolved_at = None
        self.opened_at = timestamp
        self.reopen_count += 1
        if description:
            self.description = description

    @property
    def is_open(self) -> bool:
        """True while the ticket still needs action."""
        return self.status in (TicketStatus.OPEN, TicketStatus.IN_PROGRESS)

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view; :meth:`from_dict` round-trips it."""
        return {
            "ticket_id": self.ticket_id,
            "run_id": self.run_id,
            "experiment": self.experiment,
            "test_name": self.test_name,
            "category": self.category.value,
            "party": self.party.value,
            "opened_at": self.opened_at,
            "description": self.description,
            "status": self.status.value,
            "resolution": self.resolution,
            "resolved_at": self.resolved_at,
            "long_standing_bug": self.long_standing_bug,
            "configuration_key": self.configuration_key,
            "suspected_change": self.suspected_change,
            "reopen_count": self.reopen_count,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "InterventionTicket":
        """Reconstruct a ticket serialised by :meth:`to_dict`."""
        try:
            return cls(
                ticket_id=str(payload["ticket_id"]),
                run_id=str(payload["run_id"]),
                experiment=str(payload["experiment"]),
                test_name=str(payload["test_name"]),
                category=IssueCategory(payload["category"]),
                party=InterventionParty(payload["party"]),
                opened_at=int(payload["opened_at"]),  # type: ignore[arg-type]
                description=str(payload["description"]),
                status=TicketStatus(payload.get("status", "open")),
                resolution=str(payload.get("resolution", "")),
                resolved_at=(
                    None
                    if payload.get("resolved_at") is None
                    else int(payload["resolved_at"])  # type: ignore[arg-type]
                ),
                long_standing_bug=bool(payload.get("long_standing_bug", False)),
                configuration_key=str(payload.get("configuration_key", "")),
                suspected_change=str(payload.get("suspected_change", "")),
                reopen_count=int(payload.get("reopen_count", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(
                f"invalid intervention ticket document: {error}"
            ) from error


class InterventionTracker:
    """Creates and tracks intervention tickets from diagnosis reports."""

    def __init__(self) -> None:
        self._tickets: Dict[str, InterventionTicket] = {}
        self._counter = 0

    def open_from_diagnosis(
        self, report: DiagnosisReport, timestamp: int
    ) -> List[InterventionTicket]:
        """Open one ticket per diagnosed failure (deduplicated per test/run)."""
        tickets = []
        for diagnosis in report.diagnoses:
            if self._already_open(report.run_id, diagnosis.test_name):
                continue
            tickets.append(self._open_ticket(report, diagnosis, timestamp))
        return tickets

    def _already_open(self, run_id: str, test_name: str) -> bool:
        return any(
            ticket.run_id == run_id and ticket.test_name == test_name and ticket.is_open
            for ticket in self._tickets.values()
        )

    def _open_ticket(
        self, report: DiagnosisReport, diagnosis: Diagnosis, timestamp: int
    ) -> InterventionTicket:
        party = (
            InterventionParty.EXPERIMENT
            if diagnosis.category is IssueCategory.EXPERIMENT_SOFTWARE
            else InterventionParty.HOST_IT
        )
        return self.open_ticket(
            run_id=report.run_id,
            experiment=report.experiment,
            test_name=diagnosis.test_name,
            category=diagnosis.category,
            party=party,
            opened_at=timestamp,
            description=diagnosis.summary(),
        )

    def open_ticket(
        self,
        *,
        run_id: str,
        experiment: str,
        test_name: str,
        category: IssueCategory,
        party: InterventionParty,
        opened_at: int,
        description: str,
        configuration_key: str = "",
        suspected_change: str = "",
    ) -> InterventionTicket:
        """Open one ticket with the next sequential ID."""
        self._counter += 1
        ticket_id = f"ticket-{self._counter:05d}"
        ticket = InterventionTicket(
            ticket_id=ticket_id,
            run_id=run_id,
            experiment=experiment,
            test_name=test_name,
            category=category,
            party=party,
            opened_at=opened_at,
            description=description,
            configuration_key=configuration_key,
            suspected_change=suspected_change,
        )
        self._tickets[ticket_id] = ticket
        return ticket

    def adopt(self, ticket: InterventionTicket) -> InterventionTicket:
        """Register an existing (e.g. persisted) ticket under its own ID.

        The sequential counter advances past adopted IDs so tickets opened
        afterwards never collide with replayed ones.
        """
        if ticket.ticket_id in self._tickets:
            raise ValidationError(
                f"ticket {ticket.ticket_id!r} is already tracked"
            )
        self._tickets[ticket.ticket_id] = ticket
        match = re.fullmatch(r"ticket-(\d+)", ticket.ticket_id)
        if match:
            self._counter = max(self._counter, int(match.group(1)))
        return ticket

    def ticket(self, ticket_id: str) -> InterventionTicket:
        """Return the ticket with the given ID."""
        try:
            return self._tickets[ticket_id]
        except KeyError:
            raise ValidationError(f"unknown ticket {ticket_id!r}") from None

    def all(self) -> List[InterventionTicket]:
        """All tickets, oldest first."""
        return [self._tickets[key] for key in sorted(self._tickets)]

    def open_tickets(self, party: Optional[InterventionParty] = None) -> List[InterventionTicket]:
        """Open tickets, optionally restricted to one party."""
        return [
            ticket for ticket in self.all()
            if ticket.is_open and (party is None or ticket.party is party)
        ]

    def resolved_tickets(self) -> List[InterventionTicket]:
        """All resolved tickets."""
        return [ticket for ticket in self.all() if ticket.status is TicketStatus.RESOLVED]

    def long_standing_bugs_found(self) -> int:
        """How many resolved tickets uncovered long-standing bugs.

        The paper notes the SL6 migration tests "have already identified and
        helped to solve several long-standing bugs".
        """
        return sum(1 for ticket in self.resolved_tickets() if ticket.long_standing_bug)

    def __len__(self) -> int:
        return len(self._tickets)


__all__ = [
    "TicketStatus",
    "InterventionParty",
    "InterventionTicket",
    "InterventionTracker",
]
