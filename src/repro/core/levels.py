"""DPHEP data preservation levels (Table 1 of the paper).

The DPHEP collaboration defines four preservation levels of increasing
benefit, complexity and cost.  The level an experiment adopts determines how
many validation tests it has to define: a level-3 programme only needs the
analysis-level software to keep working, a level-4 programme must keep the
simulation and reconstruction chains alive as well.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro._common import ConfigurationError


class PreservationLevel(enum.IntEnum):
    """The four DPHEP preservation levels."""

    DOCUMENTATION = 1
    SIMPLIFIED_FORMAT = 2
    ANALYSIS_SOFTWARE = 3
    FULL_SOFTWARE = 4


@dataclass(frozen=True)
class PreservationLevelDefinition:
    """One row of Table 1: level, preservation model and use case."""

    level: PreservationLevel
    preservation_model: str
    use_case: str
    area: str

    @property
    def number(self) -> int:
        """Numeric level (1–4)."""
        return int(self.level)


#: Table 1 of the paper, verbatim in content.
DPHEP_LEVELS: Tuple[PreservationLevelDefinition, ...] = (
    PreservationLevelDefinition(
        level=PreservationLevel.DOCUMENTATION,
        preservation_model="Provide additional documentation",
        use_case="Publication related info search",
        area="documentation",
    ),
    PreservationLevelDefinition(
        level=PreservationLevel.SIMPLIFIED_FORMAT,
        preservation_model="Preserve the data in a simplified format",
        use_case="Outreach, simple training analyses",
        area="outreach",
    ),
    PreservationLevelDefinition(
        level=PreservationLevel.ANALYSIS_SOFTWARE,
        preservation_model=(
            "Preserve the analysis level software and data format based on "
            "the existing reconstruction"
        ),
        use_case="Full scientific analyses, based on the existing reconstruction",
        area="technical",
    ),
    PreservationLevelDefinition(
        level=PreservationLevel.FULL_SOFTWARE,
        preservation_model=(
            "Preserve the simulation and reconstruction software as well as "
            "basic level data"
        ),
        use_case="Retain the full potential of the experimental data",
        area="technical",
    ),
)


def level_definition(level: PreservationLevel) -> PreservationLevelDefinition:
    """Return the Table 1 row for *level*."""
    for definition in DPHEP_LEVELS:
        if definition.level is level or definition.level == level:
            return definition
    raise ConfigurationError(f"unknown preservation level {level!r}")


def preservation_table() -> List[Dict[str, object]]:
    """Table 1 as a list of row dictionaries (used by the Table 1 benchmark)."""
    return [
        {
            "level": definition.number,
            "preservation_model": definition.preservation_model,
            "use_case": definition.use_case,
        }
        for definition in DPHEP_LEVELS
    ]


#: Which functional areas of the experiment software each level must keep alive.
REQUIRED_CAPABILITIES: Dict[PreservationLevel, Tuple[str, ...]] = {
    PreservationLevel.DOCUMENTATION: (),
    PreservationLevel.SIMPLIFIED_FORMAT: ("data-export",),
    PreservationLevel.ANALYSIS_SOFTWARE: ("data-export", "analysis"),
    PreservationLevel.FULL_SOFTWARE: (
        "data-export",
        "analysis",
        "reconstruction",
        "simulation",
        "mc-generation",
    ),
}


def required_capabilities(level: PreservationLevel) -> Tuple[str, ...]:
    """Capabilities the experiment software must retain at *level*."""
    try:
        return REQUIRED_CAPABILITIES[PreservationLevel(level)]
    except (KeyError, ValueError):
        raise ConfigurationError(f"unknown preservation level {level!r}") from None


def requires_full_chain(level: PreservationLevel) -> bool:
    """True when the level requires simulation + reconstruction chains (level 4)."""
    return PreservationLevel(level) is PreservationLevel.FULL_SOFTWARE


__all__ = [
    "PreservationLevel",
    "PreservationLevelDefinition",
    "DPHEP_LEVELS",
    "level_definition",
    "preservation_table",
    "required_capabilities",
    "requires_full_chain",
    "REQUIRED_CAPABILITIES",
]
