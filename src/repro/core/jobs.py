"""Validation jobs and validation runs.

A :class:`ValidationJob` is one executed test with its unique ID, timing and
stored output location; a :class:`ValidationRun` is the set of jobs produced
by running an experiment's suite once on one environment configuration —
the unit that gets a description tag, appears in the run catalogue and is
displayed as a row block on the status web pages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.core.testspec import TestKind, TestOutput
from repro.storage.bookkeeping import format_timestamp


class JobStatus(enum.Enum):
    """Final status of one validation job."""

    PASSED = "passed"
    FAILED = "failed"
    SKIPPED = "skipped"
    NOT_RUN = "not-run"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ValidationJob:
    """One executed validation test."""

    job_id: str
    test_name: str
    experiment: str
    configuration_key: str
    kind: TestKind
    status: JobStatus
    started_at: int
    duration_seconds: float = 0.0
    output: Optional[TestOutput] = None
    output_key: Optional[str] = None
    messages: List[str] = field(default_factory=list)
    chain: Optional[str] = None
    process: str = ""

    @property
    def passed(self) -> bool:
        """True when the job passed."""
        return self.status is JobStatus.PASSED

    def to_document(self) -> Dict[str, object]:
        """Serialise job metadata (not the full output) for the storage."""
        return {
            "job_id": self.job_id,
            "test_name": self.test_name,
            "experiment": self.experiment,
            "configuration_key": self.configuration_key,
            "kind": self.kind.value,
            "status": self.status.value,
            "started_at": self.started_at,
            "started_at_readable": format_timestamp(self.started_at),
            "duration_seconds": self.duration_seconds,
            "output_key": self.output_key,
            "messages": list(self.messages),
            "chain": self.chain,
            "process": self.process,
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "ValidationJob":
        """Reconstruct a job from :meth:`to_document` output.

        The full test output is not part of the document (only its storage
        key), so ``output`` is ``None`` on the reconstructed job; everything
        else round-trips, which lets catalogue and regression tests compare
        runs structurally instead of by string.
        """
        chain = document.get("chain")
        output_key = document.get("output_key")
        return cls(
            job_id=str(document["job_id"]),
            test_name=str(document["test_name"]),
            experiment=str(document["experiment"]),
            configuration_key=str(document["configuration_key"]),
            kind=TestKind(str(document["kind"])),
            status=JobStatus(str(document["status"])),
            started_at=int(document["started_at"]),  # type: ignore[arg-type]
            duration_seconds=float(document.get("duration_seconds", 0.0)),  # type: ignore[arg-type]
            output=None,
            output_key=str(output_key) if output_key is not None else None,
            messages=[str(message) for message in document.get("messages", [])],  # type: ignore[union-attr]
            chain=str(chain) if chain is not None else None,
            process=str(document.get("process", "")),
        )


@dataclass
class ValidationRun:
    """All jobs of one execution of an experiment suite on one configuration."""

    run_id: str
    experiment: str
    configuration_key: str
    description: str
    started_at: int
    software_versions: Dict[str, str] = field(default_factory=dict)
    jobs: List[ValidationJob] = field(default_factory=list)

    def add_job(self, job: ValidationJob) -> None:
        """Append a job, enforcing that it belongs to this run's experiment."""
        if job.experiment != self.experiment:
            raise ValidationError(
                f"job {job.job_id} belongs to {job.experiment}, not {self.experiment}"
            )
        self.jobs.append(job)

    def job_for(self, test_name: str) -> ValidationJob:
        """Return the job for the named test."""
        for job in self.jobs:
            if job.test_name == test_name:
                return job
        raise ValidationError(f"run {self.run_id} has no job for test {test_name!r}")

    def has_job(self, test_name: str) -> bool:
        """True if the run executed the named test."""
        return any(job.test_name == test_name for job in self.jobs)

    # -- aggregate statistics ----------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_passed(self) -> int:
        return sum(1 for job in self.jobs if job.status is JobStatus.PASSED)

    @property
    def n_failed(self) -> int:
        return sum(1 for job in self.jobs if job.status is JobStatus.FAILED)

    @property
    def n_skipped(self) -> int:
        return sum(1 for job in self.jobs if job.status is JobStatus.SKIPPED)

    @property
    def all_passed(self) -> bool:
        """True when every executed job passed (skipped jobs count as failures).

        A skipped job means part of the preservation target could not even be
        exercised, so a run with skips must not be considered successful.
        """
        return self.n_jobs > 0 and self.n_passed == self.n_jobs

    @property
    def overall_status(self) -> str:
        """Aggregate status recorded in the run catalogue."""
        if self.n_jobs == 0:
            return "empty"
        return "passed" if self.all_passed else "failed"

    def pass_fraction(self) -> float:
        """Fraction of jobs that passed."""
        if not self.jobs:
            return 0.0
        return self.n_passed / self.n_jobs

    def failed_jobs(self) -> List[ValidationJob]:
        """All failed jobs, in execution order."""
        return [job for job in self.jobs if job.status is JobStatus.FAILED]

    def jobs_of_kind(self, kind: TestKind) -> List[ValidationJob]:
        """All jobs of one test kind."""
        return [job for job in self.jobs if job.kind is kind]

    def statuses_by_test(self) -> Dict[str, str]:
        """Mapping test name -> status value, as stored in the catalogue."""
        return {job.test_name: job.status.value for job in self.jobs}

    def statuses_by_process(self) -> Dict[str, Dict[str, int]]:
        """Per-process pass/fail counts, the quantity shown in figure 3."""
        summary: Dict[str, Dict[str, int]] = {}
        for job in self.jobs:
            process = job.process or "other"
            bucket = summary.setdefault(process, {"passed": 0, "failed": 0, "skipped": 0})
            if job.status is JobStatus.PASSED:
                bucket["passed"] += 1
            elif job.status is JobStatus.FAILED:
                bucket["failed"] += 1
            elif job.status is JobStatus.SKIPPED:
                bucket["skipped"] += 1
        return summary

    def total_duration_seconds(self) -> float:
        """Accumulated simulated duration of all jobs."""
        return sum(job.duration_seconds for job in self.jobs)

    def to_document(self) -> Dict[str, object]:
        """Serialise run metadata for the storage."""
        return {
            "run_id": self.run_id,
            "experiment": self.experiment,
            "configuration_key": self.configuration_key,
            "description": self.description,
            "started_at": self.started_at,
            "software_versions": dict(self.software_versions),
            "overall_status": self.overall_status,
            "n_jobs": self.n_jobs,
            "n_passed": self.n_passed,
            "n_failed": self.n_failed,
            "n_skipped": self.n_skipped,
            "jobs": [job.to_document() for job in self.jobs],
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "ValidationRun":
        """Reconstruct a run (with its jobs) from :meth:`to_document` output."""
        run = cls(
            run_id=str(document["run_id"]),
            experiment=str(document["experiment"]),
            configuration_key=str(document["configuration_key"]),
            description=str(document["description"]),
            started_at=int(document["started_at"]),  # type: ignore[arg-type]
            software_versions=dict(document.get("software_versions", {})),  # type: ignore[arg-type]
        )
        for job_document in document.get("jobs", []):  # type: ignore[union-attr]
            run.add_job(ValidationJob.from_document(job_document))
        return run


__all__ = ["JobStatus", "ValidationJob", "ValidationRun"]
