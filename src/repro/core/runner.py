"""The validation runner: executes an experiment's suite on one environment.

This is step (ii) of the sp-system work flow: "A regular build of the
experimental software is done automatically according to the current
prescription of the working environment, and the validation tests are
performed."  One invocation of :meth:`ValidationRunner.run` produces a
:class:`~repro.core.jobs.ValidationRun`:

1. every package of the experiment is compiled (one compilation job each,
   artifacts stored as tar-balls);
2. the standalone tests run, grouped into parallel batches;
3. the analysis chains run sequentially, each step consuming the products of
   the previous one; a failing step causes the remaining steps of that chain
   to be skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._common import ValidationError
from repro.buildsys.builder import BuildCampaign, PackageBuilder
from repro.core.jobs import JobStatus, ValidationJob, ValidationRun
from repro.core.testspec import (
    ExecutionContext,
    ExperimentDefinition,
    OutputKind,
    TestKind,
    TestOutput,
    ValidationTestSpec,
)
from repro.environment.compatibility import CompatibilityChecker
from repro.environment.configuration import EnvironmentConfiguration
from repro.hepdata.numerics import NumericContext, context_for_environment
from repro.storage.artifacts import ArtifactStore
from repro.storage.bookkeeping import JobIdAllocator, SimulatedClock, TagRegistry
from repro.storage.catalog import RunCatalog, RunRecord
from repro.storage.common_storage import CommonStorage
from repro.storage.shellvars import ShellVariableInterface


#: Signature of the hook deriving numeric behaviour from an environment.
NumericContextFactory = Callable[[EnvironmentConfiguration], NumericContext]


def default_numeric_context(configuration: EnvironmentConfiguration) -> NumericContext:
    """Benign numeric behaviour: recompilation-level rounding differences only."""
    return context_for_environment(
        label=configuration.key,
        word_size=configuration.word_size,
        compiler_strictness=configuration.compiler.strictness,
        libm_generation=configuration.operating_system.abi_level,
    )


@dataclass
class RunnerSettings:
    """Tunable behaviour of the validation runner."""

    simulated_seconds_per_test: float = 120.0
    seed: int = 20131029
    stop_chain_on_failure: bool = True
    record_in_catalog: bool = True


class ValidationRunner:
    """Builds and validates one experiment on one environment configuration."""

    def __init__(
        self,
        storage: Optional[CommonStorage] = None,
        catalog: Optional[RunCatalog] = None,
        artifact_store: Optional[ArtifactStore] = None,
        clock: Optional[SimulatedClock] = None,
        id_allocator: Optional[JobIdAllocator] = None,
        tag_registry: Optional[TagRegistry] = None,
        builder: Optional[PackageBuilder] = None,
        checker: Optional[CompatibilityChecker] = None,
        shell_interface: Optional[ShellVariableInterface] = None,
        numeric_context_factory: NumericContextFactory = default_numeric_context,
        settings: Optional[RunnerSettings] = None,
    ) -> None:
        # "x if x is not None else default" (not "or"): several of these
        # collaborators define __len__ and an empty instance must not be
        # silently replaced by a fresh private one.
        self.storage = storage if storage is not None else CommonStorage()
        self.catalog = catalog if catalog is not None else RunCatalog(self.storage)
        self.artifact_store = (
            artifact_store if artifact_store is not None else ArtifactStore()
        )
        self.clock = clock if clock is not None else SimulatedClock()
        self.id_allocator = id_allocator if id_allocator is not None else JobIdAllocator()
        self.tag_registry = tag_registry if tag_registry is not None else TagRegistry()
        self.builder = builder if builder is not None else PackageBuilder()
        self.checker = checker if checker is not None else CompatibilityChecker()
        self.shell_interface = (
            shell_interface if shell_interface is not None else ShellVariableInterface()
        )
        self.numeric_context_factory = numeric_context_factory
        self.settings = settings or RunnerSettings()

    # -- public API ----------------------------------------------------------
    def run(
        self,
        experiment: ExperimentDefinition,
        configuration: EnvironmentConfiguration,
        description: Optional[str] = None,
    ) -> ValidationRun:
        """Run the full suite of *experiment* on *configuration*."""
        run_id = self.id_allocator.allocate()
        description = description or f"{experiment.name}-{configuration.key}"
        software_versions = dict(configuration.external_map())
        software_versions["operating_system"] = configuration.operating_system.name
        software_versions["compiler"] = configuration.compiler.name
        run = ValidationRun(
            run_id=run_id,
            experiment=experiment.name,
            configuration_key=configuration.key,
            description=description,
            started_at=self.clock.now,
            software_versions=software_versions,
        )
        campaign = self._run_compilation_phase(run, experiment, configuration)
        numeric_context = self.numeric_context_factory(configuration)
        self._run_standalone_phase(run, experiment, configuration, campaign, numeric_context)
        self._run_chain_phase(run, experiment, configuration, campaign, numeric_context)
        self._record(run)
        return run

    # -- phase 1: compilation -------------------------------------------------
    def _run_compilation_phase(
        self,
        run: ValidationRun,
        experiment: ExperimentDefinition,
        configuration: EnvironmentConfiguration,
    ) -> BuildCampaign:
        campaign = self.builder.build_inventory(experiment.inventory, configuration)
        for package in experiment.inventory.all():
            result = campaign.result_for(package.name)
            job_id = self.id_allocator.allocate()
            if result.succeeded:
                status = JobStatus.PASSED
            elif result.status.value == "skipped":
                status = JobStatus.SKIPPED
            else:
                status = JobStatus.FAILED
            messages = [str(diagnostic) for diagnostic in result.diagnostics]
            if result.tarball is not None:
                self.artifact_store.store(result.tarball, label=run.run_id)
            output = TestOutput(
                kind=OutputKind.YES_NO,
                passed=status is JobStatus.PASSED,
                yes_no=status is JobStatus.PASSED,
                messages=messages,
            )
            job = ValidationJob(
                job_id=job_id,
                test_name=f"compile-{package.name}",
                experiment=experiment.name,
                configuration_key=configuration.key,
                kind=TestKind.COMPILATION,
                status=status,
                started_at=self.clock.now,
                duration_seconds=result.build_seconds,
                output=output,
                output_key=self._store_output(run.run_id, f"compile-{package.name}", output),
                messages=messages,
                process="compilation",
            )
            run.add_job(job)
            self.clock.advance(int(result.build_seconds) + 1)
        return campaign

    # -- phase 2: standalone tests ---------------------------------------------
    def _run_standalone_phase(
        self,
        run: ValidationRun,
        experiment: ExperimentDefinition,
        configuration: EnvironmentConfiguration,
        campaign: BuildCampaign,
        numeric_context: NumericContext,
    ) -> None:
        for test in experiment.standalone_tests:
            job = self._execute_test(
                run, test, configuration, campaign, numeric_context, chain_state=None
            )
            run.add_job(job)

    # -- phase 3: analysis chains ------------------------------------------------
    def _run_chain_phase(
        self,
        run: ValidationRun,
        experiment: ExperimentDefinition,
        configuration: EnvironmentConfiguration,
        campaign: BuildCampaign,
        numeric_context: NumericContext,
    ) -> None:
        for chain in experiment.chains:
            chain_state: Dict[str, object] = {}
            chain_broken = False
            for step in chain.steps:
                if chain_broken and self.settings.stop_chain_on_failure:
                    job = self._skipped_job(
                        run, step, configuration,
                        reason=f"previous step of chain {chain.name!r} failed",
                    )
                else:
                    job = self._execute_test(
                        run, step, configuration, campaign, numeric_context, chain_state
                    )
                if job.status is not JobStatus.PASSED:
                    chain_broken = True
                run.add_job(job)

    # -- job execution -------------------------------------------------------
    def _execute_test(
        self,
        run: ValidationRun,
        test: ValidationTestSpec,
        configuration: EnvironmentConfiguration,
        campaign: BuildCampaign,
        numeric_context: NumericContext,
        chain_state: Optional[Dict[str, object]],
    ) -> ValidationJob:
        job_id = self.id_allocator.allocate()
        started_at = self.clock.now
        duration = self.settings.simulated_seconds_per_test
        # A test cannot run if a package it needs did not build.
        missing_packages = [
            name for name in test.required_packages
            if name in campaign.results and not campaign.result_for(name).succeeded
        ]
        if missing_packages:
            self.clock.advance(1)
            return ValidationJob(
                job_id=job_id,
                test_name=test.name,
                experiment=test.experiment,
                configuration_key=configuration.key,
                kind=test.kind,
                status=JobStatus.SKIPPED,
                started_at=started_at,
                duration_seconds=0.0,
                messages=[
                    "required package(s) failed to build: " + ", ".join(missing_packages)
                ],
                chain=test.chain,
                process=test.process,
            )
        # Environment incompatibilities declared by the test itself.
        issues = self.checker.check(test.requirements, configuration)
        errors = [issue for issue in issues if issue.is_error()]
        messages = [str(issue) for issue in issues]
        if errors:
            self.clock.advance(int(duration * 0.1) + 1)
            output = TestOutput(
                kind=OutputKind.YES_NO, passed=False, yes_no=False, messages=messages
            )
            return ValidationJob(
                job_id=job_id,
                test_name=test.name,
                experiment=test.experiment,
                configuration_key=configuration.key,
                kind=test.kind,
                status=JobStatus.FAILED,
                started_at=started_at,
                duration_seconds=duration * 0.1,
                output=output,
                output_key=self._store_output(run.run_id, test.name, output),
                messages=messages,
                chain=test.chain,
                process=test.process,
            )
        # Run the experiment-provided executor through the thin shell interface.
        shell_environment = self.shell_interface.environment_for(
            run_id=run.run_id,
            test_name=test.name,
            experiment=test.experiment,
            configuration_key=configuration.key,
        )
        context = ExecutionContext(
            configuration=configuration,
            numeric_context=numeric_context,
            seed=self.settings.seed,
            chain_state=chain_state if chain_state is not None else {},
            shell_variables=dict(shell_environment.variables),
        )
        try:
            output = test.executor(context)
            output.validate()
        except ValidationError as error:
            output = TestOutput(
                kind=OutputKind.YES_NO,
                passed=False,
                yes_no=False,
                messages=[f"test execution error: {error}"],
            )
        except Exception as error:  # noqa: BLE001 - a broken experiment test
            # script must never take down the validation framework itself; the
            # crash is recorded as a failed job with the exception as evidence.
            output = TestOutput(
                kind=OutputKind.YES_NO,
                passed=False,
                yes_no=False,
                messages=[f"test crashed: {type(error).__name__}: {error}"],
            )
        output.messages.extend(messages)
        status = JobStatus.PASSED if output.passed else JobStatus.FAILED
        self.clock.advance(int(duration) + 1)
        return ValidationJob(
            job_id=job_id,
            test_name=test.name,
            experiment=test.experiment,
            configuration_key=configuration.key,
            kind=test.kind,
            status=status,
            started_at=started_at,
            duration_seconds=duration,
            output=output,
            output_key=self._store_output(run.run_id, test.name, output),
            messages=list(output.messages),
            chain=test.chain,
            process=test.process,
        )

    def _skipped_job(
        self,
        run: ValidationRun,
        test: ValidationTestSpec,
        configuration: EnvironmentConfiguration,
        reason: str,
    ) -> ValidationJob:
        job_id = self.id_allocator.allocate()
        self.clock.advance(1)
        return ValidationJob(
            job_id=job_id,
            test_name=test.name,
            experiment=test.experiment,
            configuration_key=configuration.key,
            kind=test.kind,
            status=JobStatus.SKIPPED,
            started_at=self.clock.now,
            duration_seconds=0.0,
            messages=[reason],
            chain=test.chain,
            process=test.process,
        )

    # -- persistence ------------------------------------------------------------
    def _store_output(self, run_id: str, test_name: str, output: TestOutput) -> str:
        key = f"{run_id}_{test_name}"
        self.storage.put("results", key, output.to_document())
        return key

    def _record(self, run: ValidationRun) -> None:
        self.storage.put("results", f"runmeta_{run.run_id}", run.to_document())
        self.tag_registry.record(run.description, run.run_id)
        if self.settings.record_in_catalog:
            self.catalog.record(
                RunRecord(
                    run_id=run.run_id,
                    experiment=run.experiment,
                    configuration_key=run.configuration_key,
                    description=run.description,
                    timestamp=run.started_at,
                    software_versions=dict(run.software_versions),
                    test_statuses=run.statuses_by_test(),
                    overall_status=run.overall_status,
                )
            )

    # -- convenience -------------------------------------------------------------
    def load_output(self, output_key: str) -> TestOutput:
        """Re-load a stored test output (used for run-against-run comparison)."""
        document = self.storage.get("results", output_key)
        return TestOutput.from_document(document)  # type: ignore[arg-type]


__all__ = [
    "ValidationRunner",
    "RunnerSettings",
    "default_numeric_context",
    "NumericContextFactory",
]
