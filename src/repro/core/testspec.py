"""Validation test specifications, outputs and experiment definitions.

The experiments define their own validation tests; the sp-system only needs a
uniform way to describe them.  A :class:`ValidationTestSpec` names the test,
states what it needs from the environment, says whether it is a standalone
test (run in parallel) or a step of a sequential analysis chain, and provides
the executor callable that produces a :class:`TestOutput`.  The output "may be
a simple yes/no, a text file, a histogram, a root file or even a link to a
further page" — the :class:`OutputKind` enumeration mirrors those options.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro._common import ValidationError, ensure_identifier
from repro.buildsys.package import PackageInventory
from repro.core.levels import PreservationLevel
from repro.environment.compatibility import SoftwareRequirements
from repro.environment.configuration import EnvironmentConfiguration
from repro.hepdata.histogram import HistogramSet
from repro.hepdata.numerics import NumericContext


class TestKind(enum.Enum):
    """The kinds of validation test the experiments define."""

    # Not a pytest test class, despite the Test* name.
    __test__ = False

    COMPILATION = "compilation"
    STANDALONE = "standalone"
    CHAIN_STEP = "chain-step"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class OutputKind(enum.Enum):
    """The kinds of output file a test can leave on the common storage."""

    YES_NO = "yes-no"
    NUMBERS = "numbers"
    TEXT = "text"
    HISTOGRAMS = "histograms"
    FILE_SUMMARY = "file-summary"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class TestOutput:
    """The result payload written by one validation test.

    Exactly one of the payload fields is expected to be populated, matching
    :attr:`kind`; :meth:`validate` enforces that.
    """

    # Not a pytest test class, despite the Test* name (plain class attribute,
    # not a dataclass field).
    __test__ = False

    kind: OutputKind
    passed: bool
    yes_no: Optional[bool] = None
    numbers: Dict[str, float] = field(default_factory=dict)
    text: str = ""
    histograms: Optional[HistogramSet] = None
    file_summary: Dict[str, float] = field(default_factory=dict)
    messages: List[str] = field(default_factory=list)

    def validate(self) -> None:
        """Check that the payload matches the declared output kind."""
        if self.kind is OutputKind.YES_NO and self.yes_no is None:
            raise ValidationError("yes/no output requires the yes_no field")
        if self.kind is OutputKind.NUMBERS and not self.numbers:
            raise ValidationError("numeric output requires a non-empty numbers dict")
        if self.kind is OutputKind.TEXT and not self.text:
            raise ValidationError("text output requires non-empty text")
        if self.kind is OutputKind.HISTOGRAMS and (
            self.histograms is None or len(self.histograms) == 0
        ):
            raise ValidationError("histogram output requires a non-empty HistogramSet")
        if self.kind is OutputKind.FILE_SUMMARY and not self.file_summary:
            raise ValidationError("file-summary output requires a non-empty summary")

    def to_document(self) -> Dict[str, Any]:
        """Serialise the output for the common storage."""
        document: Dict[str, Any] = {
            "kind": self.kind.value,
            "passed": self.passed,
            "messages": list(self.messages),
        }
        if self.yes_no is not None:
            document["yes_no"] = self.yes_no
        if self.numbers:
            document["numbers"] = dict(self.numbers)
        if self.text:
            document["text"] = self.text
        if self.histograms is not None:
            document["histograms"] = self.histograms.to_dict()
        if self.file_summary:
            document["file_summary"] = dict(self.file_summary)
        return document

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "TestOutput":
        """Reconstruct an output stored by :meth:`to_document`."""
        histograms = None
        if "histograms" in document:
            histograms = HistogramSet.from_dict(document["histograms"])
        return cls(
            kind=OutputKind(document["kind"]),
            passed=bool(document["passed"]),
            yes_no=document.get("yes_no"),
            numbers=dict(document.get("numbers", {})),
            text=str(document.get("text", "")),
            histograms=histograms,
            file_summary=dict(document.get("file_summary", {})),
            messages=list(document.get("messages", [])),
        )


@dataclass
class ExecutionContext:
    """Everything an executor callable receives when a test runs.

    Attributes
    ----------
    configuration:
        The environment the test runs on.
    numeric_context:
        Environment-induced numeric behaviour (see :mod:`repro.hepdata.numerics`).
    seed:
        Deterministic seed for any Monte Carlo the test performs.
    chain_state:
        Mutable dictionary shared by the steps of one analysis chain; a chain
        step finds its predecessor's products here and leaves its own for the
        next step ("many are run sequentially and form discrete parts in one
        of several full analysis chains").
    shell_variables:
        The thin shell-variable interface values exported for the test.
    """

    configuration: EnvironmentConfiguration
    numeric_context: NumericContext
    seed: int = 1
    chain_state: Dict[str, Any] = field(default_factory=dict)
    shell_variables: Dict[str, str] = field(default_factory=dict)


#: Signature of a test executor.
TestExecutor = Callable[[ExecutionContext], TestOutput]


@dataclass
class ValidationTestSpec:
    """One validation test as defined by an experiment."""

    name: str
    experiment: str
    kind: TestKind
    executor: TestExecutor
    description: str = ""
    process: str = ""
    requirements: SoftwareRequirements = field(default_factory=SoftwareRequirements)
    required_packages: Tuple[str, ...] = ()
    chain: Optional[str] = None
    chain_index: int = 0
    capability: str = "analysis"

    def __post_init__(self) -> None:
        ensure_identifier(self.name, "test name")
        ensure_identifier(self.experiment, "experiment name")
        if self.kind is TestKind.CHAIN_STEP and not self.chain:
            raise ValidationError(f"chain step {self.name!r} must name its chain")
        if self.kind is not TestKind.CHAIN_STEP and self.chain:
            raise ValidationError(
                f"test {self.name!r} is not a chain step but names chain {self.chain!r}"
            )
        if self.chain_index < 0:
            raise ValidationError("chain_index must be non-negative")


@dataclass
class AnalysisChain:
    """A sequential chain of validation tests.

    "...many are run sequentially and form discrete parts in one of several
    full analysis chains: from MC generation and simulation, through
    multi-level file production and ending with a full physics analysis and
    subsequent validation of the results."
    """

    name: str
    experiment: str
    description: str = ""
    steps: List[ValidationTestSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        ensure_identifier(self.name, "chain name")

    def add_step(self, step: ValidationTestSpec) -> None:
        """Append a step, enforcing chain membership and ordering."""
        if step.kind is not TestKind.CHAIN_STEP:
            raise ValidationError(f"{step.name!r} is not a chain step")
        if step.chain != self.name:
            raise ValidationError(
                f"step {step.name!r} belongs to chain {step.chain!r}, not {self.name!r}"
            )
        if step.chain_index != len(self.steps):
            raise ValidationError(
                f"step {step.name!r} has index {step.chain_index}, expected {len(self.steps)}"
            )
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    def step_names(self) -> List[str]:
        """Ordered names of the chain steps."""
        return [step.name for step in self.steps]


@dataclass
class ExperimentDefinition:
    """An experiment participating in the preservation programme.

    Bundles the experiment's package inventory, its standalone validation
    tests and its analysis chains, together with the DPHEP preservation level
    it is aiming for.
    """

    name: str
    full_name: str
    preservation_level: PreservationLevel
    inventory: PackageInventory
    standalone_tests: List[ValidationTestSpec] = field(default_factory=list)
    chains: List[AnalysisChain] = field(default_factory=list)
    display_colour: str = "grey"

    def __post_init__(self) -> None:
        ensure_identifier(self.name, "experiment name")
        for test in self.standalone_tests:
            if test.experiment != self.name:
                raise ValidationError(
                    f"test {test.name!r} belongs to {test.experiment!r}, not {self.name!r}"
                )
        for chain in self.chains:
            if chain.experiment != self.name:
                raise ValidationError(
                    f"chain {chain.name!r} belongs to {chain.experiment!r}, not {self.name!r}"
                )

    def compilation_test_count(self) -> int:
        """Number of per-package compilation tests (one per package)."""
        return len(self.inventory)

    def chain_test_count(self) -> int:
        """Number of chain-step tests across all chains."""
        return sum(len(chain) for chain in self.chains)

    def total_test_count(self) -> int:
        """Total number of tests the experiment defines.

        Compilation of every package counts as a test ("firstly the
        compilation of approximately 100 individual H1 software packages ...
        is carried out"), plus standalone tests, plus every chain step.
        """
        return (
            self.compilation_test_count()
            + len(self.standalone_tests)
            + self.chain_test_count()
        )

    def all_tests(self) -> List[ValidationTestSpec]:
        """Standalone tests followed by chain steps, in execution order."""
        tests = list(self.standalone_tests)
        for chain in self.chains:
            tests.extend(chain.steps)
        return tests

    def chain(self, name: str) -> AnalysisChain:
        """Return the chain called *name*."""
        for chain in self.chains:
            if chain.name == name:
                return chain
        raise ValidationError(f"experiment {self.name} has no chain {name!r}")

    def processes(self) -> List[str]:
        """All distinct physics processes covered by the tests."""
        processes = {test.process for test in self.all_tests() if test.process}
        return sorted(processes)


__all__ = [
    "TestKind",
    "OutputKind",
    "TestOutput",
    "ExecutionContext",
    "TestExecutor",
    "ValidationTestSpec",
    "AnalysisChain",
    "ExperimentDefinition",
]
