"""Failure diagnosis: which of the three inputs broke the validation?

The clear separation of the inputs — experiment software, external
dependencies, operating system (figure 1) — is what makes it possible to
attribute a failed validation to one of them and route the intervention to
the right party ("Intervention is then required either by the host of the
validation suite or the experiment themselves, depending on the nature of the
reported problem").  The :class:`FailureDiagnosisEngine` combines three
signals:

* the compatibility issues attached to failed jobs (each carries a category);
* the configuration difference between the failing run and its reference;
* which groups of tests fail together (all chains failing at the simulation
  step points at the simulation software, not the OS).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.jobs import JobStatus, ValidationJob, ValidationRun
from repro.core.regression import RegressionReport
from repro.environment.compatibility import IssueCategory
from repro.environment.configuration import EnvironmentConfiguration


#: Responsible party for each issue category.
RESPONSIBLE_PARTY: Dict[IssueCategory, str] = {
    IssueCategory.OPERATING_SYSTEM: "host IT department",
    IssueCategory.COMPILER: "host IT department",
    IssueCategory.EXTERNAL_DEPENDENCY: "host IT department",
    IssueCategory.EXPERIMENT_SOFTWARE: "experiment",
}


@dataclass
class Diagnosis:
    """Diagnosis for one failed test."""

    test_name: str
    category: IssueCategory
    responsible_party: str
    confidence: float
    evidence: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line summary for intervention tickets."""
        return (
            f"{self.test_name}: {self.category.value} "
            f"(confidence {self.confidence:.0%}, action: {self.responsible_party})"
        )


@dataclass
class DiagnosisReport:
    """All diagnoses of one failing validation run."""

    run_id: str
    experiment: str
    configuration_key: str
    diagnoses: List[Diagnosis] = field(default_factory=list)
    configuration_changes: List[str] = field(default_factory=list)

    def by_category(self) -> Dict[str, int]:
        """Number of failing tests attributed to each category."""
        counts: Dict[str, int] = {}
        for diagnosis in self.diagnoses:
            counts[diagnosis.category.value] = counts.get(diagnosis.category.value, 0) + 1
        return counts

    def dominant_category(self) -> Optional[IssueCategory]:
        """The category blamed for most failures, if any."""
        if not self.diagnoses:
            return None
        counts: Dict[IssueCategory, int] = {}
        for diagnosis in self.diagnoses:
            counts[diagnosis.category] = counts.get(diagnosis.category, 0) + 1
        return max(counts, key=lambda category: (counts[category], category.value))

    def for_party(self, party: str) -> List[Diagnosis]:
        """All diagnoses routed to the given responsible party."""
        return [
            diagnosis for diagnosis in self.diagnoses
            if diagnosis.responsible_party == party
        ]


#: Issue-category keywords found in job messages (fallback evidence).
_MESSAGE_PATTERNS: Tuple[Tuple[IssueCategory, re.Pattern], ...] = (
    (IssueCategory.OPERATING_SYSTEM, re.compile(r"word_size|abi|operating.system|-bit", re.I)),
    (IssueCategory.COMPILER, re.compile(r"compiler|gcc|strictness|standard", re.I)),
    (IssueCategory.EXTERNAL_DEPENDENCY, re.compile(r"external|ROOT|CERNLIB|interface|api", re.I)),
)


class FailureDiagnosisEngine:
    """Attributes failing validation jobs to one of the separated inputs."""

    def diagnose_run(
        self,
        run: ValidationRun,
        reference_configuration: Optional[EnvironmentConfiguration] = None,
        current_configuration: Optional[EnvironmentConfiguration] = None,
        regression_report: Optional[RegressionReport] = None,
    ) -> DiagnosisReport:
        """Diagnose every failed job of *run*.

        When both configurations are supplied, their differences serve as
        additional evidence; when a regression report is supplied, tests that
        regressed only in their numeric output (but still pass) are ignored.
        """
        configuration_changes: List[str] = []
        environment_known_unchanged = False
        if reference_configuration is not None and current_configuration is not None:
            configuration_changes = current_configuration.differences(reference_configuration)
            environment_known_unchanged = not configuration_changes
        report = DiagnosisReport(
            run_id=run.run_id,
            experiment=run.experiment,
            configuration_key=run.configuration_key,
            configuration_changes=configuration_changes,
        )
        for job in run.failed_jobs():
            report.diagnoses.append(
                self._diagnose_job(job, configuration_changes, environment_known_unchanged)
            )
        return report

    def _diagnose_job(
        self,
        job: ValidationJob,
        configuration_changes: List[str],
        environment_known_unchanged: bool = False,
    ) -> Diagnosis:
        evidence: List[str] = []
        votes: Dict[IssueCategory, float] = {category: 0.0 for category in IssueCategory}

        # Strongest signal: explicit compatibility issues in the job messages.
        for message in job.messages:
            matched = False
            for category, pattern in _MESSAGE_PATTERNS:
                if pattern.search(message):
                    votes[category] += 1.0
                    matched = True
            if not matched:
                votes[IssueCategory.EXPERIMENT_SOFTWARE] += 0.5
            evidence.append(message)

        # Medium signal: what changed in the environment since the reference.
        for change in configuration_changes:
            if change.startswith("operating_system") or change.startswith("word_size"):
                votes[IssueCategory.OPERATING_SYSTEM] += 0.75
            elif change.startswith("compiler"):
                votes[IssueCategory.COMPILER] += 0.75
            elif change.startswith("external"):
                votes[IssueCategory.EXTERNAL_DEPENDENCY] += 0.75
            evidence.append(f"environment change: {change}")

        # Strong counter-evidence: the last successful run used exactly the same
        # environment, so keyword matches against OS / compiler / external names
        # in the messages cannot reflect an environment change — the experiment
        # software itself is the prime suspect (the paper's "changes to the
        # experiment software itself" failure class).
        if environment_known_unchanged:
            environment_votes = sum(
                votes[category]
                for category in (
                    IssueCategory.OPERATING_SYSTEM,
                    IssueCategory.COMPILER,
                    IssueCategory.EXTERNAL_DEPENDENCY,
                )
            )
            votes[IssueCategory.EXPERIMENT_SOFTWARE] += environment_votes + 1.0
            evidence.append(
                "environment identical to the last successful run; suspect the "
                "experiment software"
            )

        # Weak prior: with no evidence at all, the experiment software itself
        # (a genuine bug or an un-ported assumption) is the default suspect.
        if all(value == 0.0 for value in votes.values()):
            votes[IssueCategory.EXPERIMENT_SOFTWARE] = 1.0
            evidence.append("no environment-related evidence; suspect experiment software")

        total = sum(votes.values())
        category = max(votes, key=lambda cat: (votes[cat], cat.value))
        confidence = votes[category] / total if total > 0 else 0.0
        return Diagnosis(
            test_name=job.test_name,
            category=category,
            responsible_party=RESPONSIBLE_PARTY[category],
            confidence=confidence,
            evidence=evidence,
        )


__all__ = ["Diagnosis", "DiagnosisReport", "FailureDiagnosisEngine", "RESPONSIBLE_PARTY"]
