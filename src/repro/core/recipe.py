"""Validated configuration recipes.

"The framework is rather used to establish the latest working version of the
computing and software environment and it can help to prepare a production
system by supplying the successfully validated recipe of the latest
configuration.  If a production system is required, then this recipe should be
deployed on a suitable resource at the time: an institute cluster, grid,
cloud, sky, quantum computer, and so on."

A :class:`ValidatedRecipe` captures exactly that: the environment
configuration, the experiment software versions and the validation run that
proved the combination works.  The :class:`RecipeBook` stores recipes on the
common storage and can "deploy" one onto any resource description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.core.jobs import ValidationRun
from repro.environment.configuration import EnvironmentConfiguration
from repro.storage.common_storage import CommonStorage


#: Resources a validated recipe can be deployed on (wording from the paper).
DEPLOYMENT_TARGETS = (
    "institute-cluster",
    "grid",
    "cloud",
    "sky",
    "quantum-computer",
)


@dataclass(frozen=True)
class ValidatedRecipe:
    """A successfully validated environment + software prescription."""

    recipe_id: str
    experiment: str
    configuration: Dict[str, object]
    software_versions: Dict[str, str]
    validated_by_run: str
    validated_at: int
    pass_fraction: float

    def to_document(self) -> Dict[str, object]:
        """Serialise for the recipes namespace of the common storage."""
        return {
            "recipe_id": self.recipe_id,
            "experiment": self.experiment,
            "configuration": dict(self.configuration),
            "software_versions": dict(self.software_versions),
            "validated_by_run": self.validated_by_run,
            "validated_at": self.validated_at,
            "pass_fraction": self.pass_fraction,
        }

    @classmethod
    def from_document(cls, document: Dict[str, object]) -> "ValidatedRecipe":
        """Reconstruct a recipe stored by :meth:`to_document`."""
        return cls(
            recipe_id=str(document["recipe_id"]),
            experiment=str(document["experiment"]),
            configuration=dict(document["configuration"]),
            software_versions=dict(document["software_versions"]),
            validated_by_run=str(document["validated_by_run"]),
            validated_at=int(document["validated_at"]),
            pass_fraction=float(document["pass_fraction"]),
        )


@dataclass
class DeploymentPlan:
    """Instructions for deploying a recipe on a production resource."""

    recipe_id: str
    target: str
    steps: List[str] = field(default_factory=list)

    def rendered(self) -> str:
        """Human-readable deployment plan."""
        lines = [f"Deployment of {self.recipe_id} on {self.target}:"]
        lines.extend(f"  {index + 1}. {step}" for index, step in enumerate(self.steps))
        return "\n".join(lines)


class RecipeBook:
    """Stores validated recipes and produces deployment plans."""

    NAMESPACE = "recipes"

    def __init__(self, storage: Optional[CommonStorage] = None) -> None:
        self.storage = storage or CommonStorage()
        self.storage.create_namespace(self.NAMESPACE)

    def publish_from_run(
        self,
        run: ValidationRun,
        configuration: EnvironmentConfiguration,
        minimum_pass_fraction: float = 1.0,
    ) -> ValidatedRecipe:
        """Publish the recipe proven by a (successful) validation run.

        Only runs whose pass fraction reaches *minimum_pass_fraction* may be
        published — an unvalidated recipe is worse than none, because it would
        be deployed unquestioned on a production resource later.
        """
        if run.configuration_key != configuration.key:
            raise ValidationError(
                "run and configuration do not match: "
                f"{run.configuration_key} vs {configuration.key}"
            )
        if run.pass_fraction() < minimum_pass_fraction:
            raise ValidationError(
                f"run {run.run_id} passed only {run.pass_fraction():.1%} of its tests; "
                f"{minimum_pass_fraction:.1%} required to publish a recipe"
            )
        recipe = ValidatedRecipe(
            recipe_id=f"recipe-{run.experiment}-{run.run_id}",
            experiment=run.experiment,
            configuration=configuration.describe(),
            software_versions=dict(run.software_versions),
            validated_by_run=run.run_id,
            validated_at=run.started_at,
            pass_fraction=run.pass_fraction(),
        )
        self.storage.put(self.NAMESPACE, recipe.recipe_id, recipe.to_document())
        return recipe

    def get(self, recipe_id: str) -> ValidatedRecipe:
        """Load a recipe from the storage."""
        document = self.storage.get(self.NAMESPACE, recipe_id)
        return ValidatedRecipe.from_document(document)  # type: ignore[arg-type]

    def recipes_for(self, experiment: str) -> List[ValidatedRecipe]:
        """All published recipes of one experiment, oldest first."""
        recipes = []
        for key in self.storage.keys(self.NAMESPACE, prefix=f"recipe-{experiment}-"):
            recipes.append(self.get(key))
        return sorted(recipes, key=lambda recipe: recipe.validated_at)

    def latest_for(self, experiment: str) -> Optional[ValidatedRecipe]:
        """The most recently validated recipe of *experiment*, if any."""
        recipes = self.recipes_for(experiment)
        return recipes[-1] if recipes else None

    def deployment_plan(self, recipe_id: str, target: str) -> DeploymentPlan:
        """Produce a deployment plan for *recipe_id* on *target*."""
        if target not in DEPLOYMENT_TARGETS:
            raise ValidationError(
                f"unknown deployment target {target!r}; "
                f"choose one of {', '.join(DEPLOYMENT_TARGETS)}"
            )
        recipe = self.get(recipe_id)
        configuration = recipe.configuration
        steps = [
            f"provision a {target} node with "
            f"{configuration['operating_system']} / {configuration['word_size']}-bit",
            f"install compiler {configuration['compiler']}",
        ]
        for product, version in sorted(dict(configuration["externals"]).items()):
            steps.append(f"install external software {product} {version}")
        steps.append(
            f"deploy the experiment software of {recipe.experiment} at the versions "
            "recorded in the recipe"
        )
        steps.append(
            f"re-run the validation suite and require the pass fraction of run "
            f"{recipe.validated_by_run} ({recipe.pass_fraction:.0%}) to be reproduced"
        )
        return DeploymentPlan(recipe_id=recipe_id, target=target, steps=steps)


__all__ = ["ValidatedRecipe", "DeploymentPlan", "RecipeBook", "DEPLOYMENT_TARGETS"]
