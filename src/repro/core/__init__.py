"""Core of the reproduction: the sp-system validation framework."""

from repro.core.comparison import ComparisonOutcome, ComparisonPolicy, OutputComparator
from repro.core.diagnosis import (
    Diagnosis,
    DiagnosisReport,
    FailureDiagnosisEngine,
    RESPONSIBLE_PARTY,
)
from repro.core.freeze import FreezeManager, FreezeReason, FrozenSystem
from repro.core.intervention import (
    InterventionParty,
    InterventionTicket,
    InterventionTracker,
    TicketStatus,
)
from repro.core.jobs import JobStatus, ValidationJob, ValidationRun
from repro.core.levels import (
    DPHEP_LEVELS,
    PreservationLevel,
    PreservationLevelDefinition,
    level_definition,
    preservation_table,
    required_capabilities,
    requires_full_chain,
)
from repro.core.recipe import DEPLOYMENT_TARGETS, DeploymentPlan, RecipeBook, ValidatedRecipe
from repro.core.regression import RegressionDetector, RegressionReport, TestRegression
from repro.core.service import (
    RegularValidationService,
    ScheduledValidation,
    ServiceReport,
)
from repro.core.runner import (
    RunnerSettings,
    ValidationRunner,
    default_numeric_context,
)
from repro.core.spsystem import SPSystem, ValidationCycleResult
from repro.core.testspec import (
    AnalysisChain,
    ExecutionContext,
    ExperimentDefinition,
    OutputKind,
    TestKind,
    TestOutput,
    ValidationTestSpec,
)
from repro.core.workflow import (
    PhaseTransition,
    PreparationReport,
    PreservationWorkflow,
    WorkflowPhase,
)

__all__ = [
    "ComparisonOutcome",
    "ComparisonPolicy",
    "OutputComparator",
    "Diagnosis",
    "DiagnosisReport",
    "FailureDiagnosisEngine",
    "RESPONSIBLE_PARTY",
    "FreezeManager",
    "FreezeReason",
    "FrozenSystem",
    "InterventionParty",
    "InterventionTicket",
    "InterventionTracker",
    "TicketStatus",
    "JobStatus",
    "ValidationJob",
    "ValidationRun",
    "DPHEP_LEVELS",
    "PreservationLevel",
    "PreservationLevelDefinition",
    "level_definition",
    "preservation_table",
    "required_capabilities",
    "requires_full_chain",
    "DEPLOYMENT_TARGETS",
    "DeploymentPlan",
    "RecipeBook",
    "ValidatedRecipe",
    "RegressionDetector",
    "RegressionReport",
    "TestRegression",
    "RegularValidationService",
    "ScheduledValidation",
    "ServiceReport",
    "RunnerSettings",
    "ValidationRunner",
    "default_numeric_context",
    "SPSystem",
    "ValidationCycleResult",
    "AnalysisChain",
    "ExecutionContext",
    "ExperimentDefinition",
    "OutputKind",
    "TestKind",
    "TestOutput",
    "ValidationTestSpec",
    "PhaseTransition",
    "PreparationReport",
    "PreservationWorkflow",
    "WorkflowPhase",
]
