"""Migration strategies, lifetime modelling and migration planning."""

from repro.migration.lifetime import (
    LifetimeComparison,
    LifetimeResult,
    LifetimeSimulator,
)
from repro.migration.planner import MigrationItem, MigrationPlan, MigrationPlanner
from repro.migration.strategies import (
    ActiveMigrationStrategy,
    FreezeStrategy,
    PreservationStrategy,
    StrategyYearResult,
)

__all__ = [
    "LifetimeComparison",
    "LifetimeResult",
    "LifetimeSimulator",
    "MigrationItem",
    "MigrationPlan",
    "MigrationPlanner",
    "ActiveMigrationStrategy",
    "FreezeStrategy",
    "PreservationStrategy",
    "StrategyYearResult",
]
