"""Migration planner: preparing the move to the next platform.

"The experiments are in the process of migrating to SL6/64bit, and the tests
performed so far using the sp-system have already identified and helped to
solve several long-standing bugs.  The next challenges include the testing of
the SL7 environment and checking the compatibility of the experiments
software with ROOT 6."  The :class:`MigrationPlanner` produces exactly that
kind of assessment: given an experiment and a target configuration it
predicts which packages and tests will break, estimates the porting effort
and orders the work by how much of the suite each fix unblocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.buildsys.builder import PackageBuilder
from repro.buildsys.graph import DependencyGraph
from repro.core.testspec import ExperimentDefinition
from repro.environment.compatibility import CompatibilityChecker, IssueCategory
from repro.environment.configuration import EnvironmentConfiguration


@dataclass
class MigrationItem:
    """One package or test that needs work before the migration can succeed."""

    name: str
    item_type: str
    categories: List[str] = field(default_factory=list)
    blocking: int = 0
    effort_person_weeks: float = 0.0
    details: List[str] = field(default_factory=list)


@dataclass
class MigrationPlan:
    """The full migration assessment for one experiment and target."""

    experiment: str
    source_configuration: str
    target_configuration: str
    items: List[MigrationItem] = field(default_factory=list)
    predicted_pass_fraction: float = 1.0
    total_effort_person_weeks: float = 0.0

    @property
    def is_trivial(self) -> bool:
        """True when nothing needs to be done for the migration."""
        return not self.items

    def ordered_items(self) -> List[MigrationItem]:
        """Items ordered by how much of the suite they block (most first)."""
        return sorted(
            self.items, key=lambda item: (-item.blocking, -item.effort_person_weeks, item.name)
        )

    def rows(self) -> List[Dict[str, object]]:
        """Flatten for report output."""
        return [
            {
                "name": item.name,
                "type": item.item_type,
                "categories": ",".join(item.categories),
                "blocking": item.blocking,
                "effort_person_weeks": round(item.effort_person_weeks, 2),
            }
            for item in self.ordered_items()
        ]


class MigrationPlanner:
    """Predicts the work needed to migrate an experiment to a new environment."""

    def __init__(
        self,
        builder: Optional[PackageBuilder] = None,
        checker: Optional[CompatibilityChecker] = None,
        port_effort_weeks_per_10kloc: float = 0.5,
    ) -> None:
        self.builder = builder or PackageBuilder()
        self.checker = checker or CompatibilityChecker()
        self.port_effort_weeks_per_10kloc = port_effort_weeks_per_10kloc

    def plan(
        self,
        experiment: ExperimentDefinition,
        source: EnvironmentConfiguration,
        target: EnvironmentConfiguration,
    ) -> MigrationPlan:
        """Assess the migration of *experiment* from *source* to *target*."""
        plan = MigrationPlan(
            experiment=experiment.name,
            source_configuration=source.key,
            target_configuration=target.key,
        )
        graph = DependencyGraph(experiment.inventory)
        campaign = self.builder.build_inventory(experiment.inventory, target)
        broken_packages = set(campaign.failed_packages())
        unusable_packages = broken_packages | set(campaign.skipped_packages())

        for package_name in sorted(broken_packages):
            package = experiment.inventory.get(package_name)
            issues = self.checker.errors(package.requirements, target)
            dependents = graph.transitive_dependents(package_name)
            tests_blocked = sum(
                1 for test in experiment.all_tests()
                if any(required in ({package_name} | dependents) for required in test.required_packages)
            )
            plan.items.append(
                MigrationItem(
                    name=package_name,
                    item_type="package",
                    categories=sorted({issue.category.value for issue in issues}),
                    blocking=len(dependents) + tests_blocked + 1,
                    effort_person_weeks=(
                        self.port_effort_weeks_per_10kloc * package.lines_of_code / 10000.0
                    ),
                    details=[str(issue) for issue in issues],
                )
            )

        broken_tests = 0
        total_tests = 0
        for test in experiment.all_tests():
            total_tests += 1
            issues = self.checker.errors(test.requirements, target)
            needs_broken_package = any(
                required in unusable_packages for required in test.required_packages
            )
            if needs_broken_package:
                broken_tests += 1
                continue
            if issues:
                broken_tests += 1
                plan.items.append(
                    MigrationItem(
                        name=test.name,
                        item_type="test",
                        categories=sorted({issue.category.value for issue in issues}),
                        blocking=1,
                        effort_person_weeks=0.2,
                        details=[str(issue) for issue in issues],
                    )
                )

        total_tests += len(experiment.inventory)
        broken_compilations = len(unusable_packages)
        plan.predicted_pass_fraction = (
            (total_tests - broken_tests - broken_compilations) / total_tests
            if total_tests
            else 1.0
        )
        plan.total_effort_person_weeks = sum(
            item.effort_person_weeks for item in plan.items
        )
        return plan

    def compare_targets(
        self,
        experiment: ExperimentDefinition,
        source: EnvironmentConfiguration,
        targets: List[EnvironmentConfiguration],
    ) -> Dict[str, MigrationPlan]:
        """Plan the migration to each of several candidate targets."""
        return {
            target.key: self.plan(experiment, source, target) for target in targets
        }


__all__ = ["MigrationItem", "MigrationPlan", "MigrationPlanner"]
