"""Preservation strategies: freeze versus active migration.

Section 2 of the paper contrasts two ways of reaching a level-4 preservation
goal: freezing the current system inside a virtual machine ("a workable
solution for the medium-term future", but "the operability of the software and
correctness of the results are not guaranteed"), and the approach taken at
DESY — actively adapting and validating the software whenever the environment
changes.  The two :class:`PreservationStrategy` implementations reproduce
exactly that trade-off so the lifetime model can quantify it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._common import ValidationError
from repro.buildsys.builder import PackageBuilder
from repro.buildsys.package import PackageInventory, SoftwarePackage
from repro.environment.compatibility import (
    CompatibilityChecker,
    ExternalRequirement,
    SoftwareRequirements,
)
from repro.environment.configuration import EnvironmentConfiguration


@dataclass
class StrategyYearResult:
    """State of a preserved software stack at the end of one simulated year."""

    year: int
    configuration_key: str
    usable_fraction: float
    security_supported: bool
    migration_effort_person_weeks: float
    notes: List[str] = field(default_factory=list)

    @property
    def fully_usable(self) -> bool:
        """True when every package still builds and the platform is supported."""
        return self.usable_fraction >= 0.999 and self.security_supported


class PreservationStrategy(abc.ABC):
    """Common interface of the freeze and active-migration strategies."""

    name: str = "abstract"

    def __init__(self, builder: Optional[PackageBuilder] = None) -> None:
        self.builder = builder or PackageBuilder()

    @abc.abstractmethod
    def evaluate_year(
        self,
        year: int,
        inventory: PackageInventory,
        recommended: EnvironmentConfiguration,
        supported_os_names: Tuple[str, ...],
    ) -> StrategyYearResult:
        """Evaluate the stack for one simulated year."""


class FreezeStrategy(PreservationStrategy):
    """Freeze the system on its original configuration and never touch it.

    The frozen image keeps building its software by construction, but the
    platform underneath ages: once the frozen OS loses security support the
    system can no longer be operated on general-purpose infrastructure, and
    the usable fraction reflects only what was working at freeze time.
    """

    name = "freeze"

    def __init__(
        self,
        frozen_configuration: EnvironmentConfiguration,
        builder: Optional[PackageBuilder] = None,
    ) -> None:
        super().__init__(builder)
        self.frozen_configuration = frozen_configuration
        self._frozen_fraction: Optional[float] = None

    def evaluate_year(
        self,
        year: int,
        inventory: PackageInventory,
        recommended: EnvironmentConfiguration,
        supported_os_names: Tuple[str, ...],
    ) -> StrategyYearResult:
        if self._frozen_fraction is None:
            campaign = self.builder.build_inventory(inventory, self.frozen_configuration)
            self._frozen_fraction = campaign.usable_fraction()
        supported = self.frozen_configuration.operating_system.name in supported_os_names
        notes = []
        if not supported:
            notes.append(
                f"{self.frozen_configuration.operating_system.name} has no security "
                "support; the frozen image must be isolated from the network"
            )
        return StrategyYearResult(
            year=year,
            configuration_key=self.frozen_configuration.key,
            usable_fraction=self._frozen_fraction if supported else 0.0,
            security_supported=supported,
            migration_effort_person_weeks=0.0,
            notes=notes,
        )


class ActiveMigrationStrategy(PreservationStrategy):
    """Adapt and validate the software whenever the environment changes.

    Every year the inventory is rebuilt on the recommended configuration of
    that year.  Packages that fail are "ported": their requirements are
    relaxed to accept the new environment, at a simulated cost in person-weeks
    proportional to the package size.  This mirrors the paper's claim that
    migrating as changes happen keeps the effort small and the software alive.
    """

    name = "active-migration"

    def __init__(
        self,
        port_effort_weeks_per_10kloc: float = 0.5,
        builder: Optional[PackageBuilder] = None,
    ) -> None:
        super().__init__(builder)
        if port_effort_weeks_per_10kloc <= 0:
            raise ValidationError("porting effort must be positive")
        self.port_effort_weeks_per_10kloc = port_effort_weeks_per_10kloc

    def evaluate_year(
        self,
        year: int,
        inventory: PackageInventory,
        recommended: EnvironmentConfiguration,
        supported_os_names: Tuple[str, ...],
    ) -> StrategyYearResult:
        campaign = self.builder.build_inventory(inventory, recommended)
        effort = 0.0
        ported: List[str] = []
        for package_name in campaign.failed_packages():
            package = inventory.get(package_name)
            inventory.replace(self._port_package(package, recommended))
            effort += self.port_effort_weeks_per_10kloc * package.lines_of_code / 10000.0
            ported.append(package_name)
        if ported:
            campaign = self.builder.build_inventory(inventory, recommended)
        notes = []
        if ported:
            notes.append(
                f"ported {len(ported)} package(s) to {recommended.key}: "
                + ", ".join(sorted(ported))
            )
        supported = recommended.operating_system.name in supported_os_names or bool(
            supported_os_names
        )
        return StrategyYearResult(
            year=year,
            configuration_key=recommended.key,
            usable_fraction=campaign.usable_fraction(),
            security_supported=supported,
            migration_effort_person_weeks=effort,
            notes=notes,
        )

    def _port_package(
        self, package: SoftwarePackage, target: EnvironmentConfiguration
    ) -> SoftwarePackage:
        """Return a ported copy of *package* compatible with *target*."""
        old = package.requirements
        externals = []
        for requirement in old.externals:
            installed = target.external(requirement.product)
            used_apis = requirement.used_apis
            if installed is not None:
                # Porting replaces calls to removed interfaces by their successors.
                used_apis = frozenset(
                    api for api in requirement.used_apis if not installed.removes(api)
                )
            externals.append(
                ExternalRequirement(
                    product=requirement.product,
                    min_api_level=requirement.min_api_level,
                    max_api_level=None,
                    used_apis=used_apis,
                )
            )
        new_requirements = SoftwareRequirements(
            min_compiler=old.min_compiler,
            max_compiler=None,
            max_strictness=max(old.max_strictness, target.compiler.strictness + 1),
            word_sizes=tuple(sorted(set(old.word_sizes) | {target.word_size})),
            cxx_standard=old.cxx_standard,
            min_os_abi=old.min_os_abi,
            max_os_abi=None,
            externals=tuple(externals),
        )
        bumped_version = f"{package.version}.post{1}"
        return package.with_requirements(new_requirements).with_version(bumped_version)


__all__ = [
    "StrategyYearResult",
    "PreservationStrategy",
    "FreezeStrategy",
    "ActiveMigrationStrategy",
]
