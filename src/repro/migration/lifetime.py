"""Software lifetime model: how long does the data stay usable?

The paper's central argument for active migration is that it "substantially
extend[s] the lifetime of the software, and hence the data".  The
:class:`LifetimeSimulator` quantifies that: it replays the environment
timeline year by year, lets a :class:`PreservationStrategy` react to it, and
records for every year whether the experiment software is still fully usable.
The resulting :class:`LifetimeComparison` is the basis of the
freeze-versus-migration ablation benchmark.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro._common import ValidationError
from repro.buildsys.package import PackageInventory
from repro.environment.evolution import EnvironmentTimeline
from repro.migration.strategies import PreservationStrategy, StrategyYearResult


@dataclass
class LifetimeResult:
    """Year-by-year usability of one strategy."""

    strategy_name: str
    start_year: int
    end_year: int
    yearly: List[StrategyYearResult] = field(default_factory=list)

    @property
    def usable_years(self) -> int:
        """Number of years in which the software stack was fully usable."""
        return sum(1 for result in self.yearly if result.fully_usable)

    @property
    def lifetime_years(self) -> int:
        """Years until the first year in which the stack is no longer usable."""
        lifetime = 0
        for result in self.yearly:
            if result.fully_usable:
                lifetime += 1
            else:
                break
        return lifetime

    @property
    def total_effort_person_weeks(self) -> float:
        """Accumulated migration effort over the whole period."""
        return sum(result.migration_effort_person_weeks for result in self.yearly)

    def usable_fraction_by_year(self) -> Dict[int, float]:
        """Mapping year -> fraction of packages usable that year."""
        return {result.year: result.usable_fraction for result in self.yearly}

    def rows(self) -> List[Dict[str, object]]:
        """Flatten for the benchmark harness output."""
        return [
            {
                "year": result.year,
                "strategy": self.strategy_name,
                "configuration": result.configuration_key,
                "usable_fraction": round(result.usable_fraction, 4),
                "security_supported": result.security_supported,
                "effort_person_weeks": round(result.migration_effort_person_weeks, 2),
            }
            for result in self.yearly
        ]


@dataclass
class LifetimeComparison:
    """Side-by-side lifetime results of several strategies."""

    results: Dict[str, LifetimeResult] = field(default_factory=dict)

    def add(self, result: LifetimeResult) -> None:
        """Record the result of one strategy."""
        self.results[result.strategy_name] = result

    def result(self, strategy_name: str) -> LifetimeResult:
        """Return the result of the named strategy."""
        try:
            return self.results[strategy_name]
        except KeyError:
            raise ValidationError(f"no lifetime result for strategy {strategy_name!r}") from None

    def lifetime_extension_years(
        self, baseline: str = "freeze", improved: str = "active-migration"
    ) -> int:
        """How many more usable years the improved strategy provides."""
        return self.result(improved).usable_years - self.result(baseline).usable_years

    def rows(self) -> List[Dict[str, object]]:
        """All strategies' year-by-year rows, interleaved by year."""
        rows: List[Dict[str, object]] = []
        for result in self.results.values():
            rows.extend(result.rows())
        return sorted(rows, key=lambda row: (row["year"], row["strategy"]))


class LifetimeSimulator:
    """Replays the environment timeline against preservation strategies."""

    def __init__(self, timeline: Optional[EnvironmentTimeline] = None) -> None:
        self.timeline = timeline or EnvironmentTimeline()

    def simulate(
        self,
        strategy: PreservationStrategy,
        inventory: PackageInventory,
        start_year: int,
        end_year: int,
    ) -> LifetimeResult:
        """Run one strategy over the given year range.

        The inventory is deep-copied so that the porting performed by the
        active-migration strategy does not leak into other simulations.
        """
        if end_year < start_year:
            raise ValidationError("end_year must not precede start_year")
        working_inventory = copy.deepcopy(inventory)
        result = LifetimeResult(
            strategy_name=strategy.name, start_year=start_year, end_year=end_year
        )
        for snapshot in self.timeline.replay(start_year, end_year):
            year_result = strategy.evaluate_year(
                year=snapshot.year,
                inventory=working_inventory,
                recommended=snapshot.recommended,
                supported_os_names=snapshot.supported_operating_systems,
            )
            result.yearly.append(year_result)
        return result

    def compare(
        self,
        strategies: Sequence[PreservationStrategy],
        inventory: PackageInventory,
        start_year: int,
        end_year: int,
    ) -> LifetimeComparison:
        """Run several strategies over the same period and inventory."""
        comparison = LifetimeComparison()
        for strategy in strategies:
            comparison.add(self.simulate(strategy, inventory, start_year, end_year))
        return comparison


__all__ = ["LifetimeResult", "LifetimeComparison", "LifetimeSimulator"]
