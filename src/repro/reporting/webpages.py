"""Script-based status web pages.

"Script-based web pages are used to record and display available validation
runs for a given description and indicate the status of the compilation for
the individual packages or tests within table cells, which are linked to a
corresponding output file."  The :class:`StatusPageGenerator` produces those
pages as self-contained static HTML: an index of runs per description, and a
per-run page with one coloured cell per test linking to the stored output
document.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional

from repro.core.jobs import JobStatus, ValidationRun
from repro.storage.bookkeeping import TagRegistry, format_timestamp
from repro.storage.catalog import RunCatalog
from repro.storage.common_storage import CommonStorage


#: Cell colours per job status, in the spirit of the original pages.
STATUS_COLOURS = {
    "passed": "#4caf50",
    "failed": "#f44336",
    "skipped": "#ff9800",
    "not-run": "#9e9e9e",
}


class StatusPageGenerator:
    """Generates static HTML status pages and stores them on the common storage."""

    NAMESPACE = "reports"

    def __init__(self, storage: CommonStorage, catalog: RunCatalog) -> None:
        self.storage = storage
        self.catalog = catalog
        self.storage.create_namespace(self.NAMESPACE)

    # -- per-run page ---------------------------------------------------------
    def run_page(self, run: ValidationRun) -> str:
        """Render the status page of one validation run."""
        rows = []
        for job in run.jobs:
            colour = STATUS_COLOURS.get(job.status.value, "#9e9e9e")
            output_link = (
                f'<a href="results/{html.escape(job.output_key)}.json">output</a>'
                if job.output_key
                else "&mdash;"
            )
            rows.append(
                "<tr>"
                f"<td>{html.escape(job.test_name)}</td>"
                f"<td>{html.escape(job.kind.value)}</td>"
                f'<td style="background-color:{colour}">{html.escape(job.status.value)}</td>'
                f"<td>{output_link}</td>"
                f"<td>{html.escape('; '.join(job.messages[:2]))}</td>"
                "</tr>"
            )
        header = (
            f"<h1>Validation run {html.escape(run.run_id)}</h1>"
            f"<p>{html.escape(run.experiment)} on {html.escape(run.configuration_key)} "
            f"&mdash; {html.escape(run.description)} &mdash; "
            f"{format_timestamp(run.started_at)}</p>"
            f"<p>{run.n_passed} passed, {run.n_failed} failed, {run.n_skipped} skipped "
            f"of {run.n_jobs} tests</p>"
        )
        table = (
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr><th>test</th><th>kind</th><th>status</th><th>output</th><th>messages</th></tr>"
            + "".join(rows)
            + "</table>"
        )
        page = _wrap_page(f"sp-system run {run.run_id}", header + table)
        self.storage.put(self.NAMESPACE, f"runpage_{run.run_id}", {"html": page})
        return page

    # -- index page -----------------------------------------------------------
    def index_page(self, tag_registry: Optional[TagRegistry] = None) -> str:
        """Render the index of all recorded runs, grouped by description tag."""
        records = self.catalog.all()
        groups: Dict[str, List] = {}
        for record in records:
            groups.setdefault(record.description, []).append(record)
        sections = []
        for description in sorted(groups):
            rows = []
            for record in groups[description]:
                colour = STATUS_COLOURS.get(
                    "passed" if record.overall_status == "passed" else "failed", "#9e9e9e"
                )
                rows.append(
                    "<tr>"
                    f"<td><a href='runpage_{html.escape(record.run_id)}.html'>"
                    f"{html.escape(record.run_id)}</a></td>"
                    f"<td>{html.escape(record.experiment)}</td>"
                    f"<td>{html.escape(record.configuration_key)}</td>"
                    f"<td>{format_timestamp(record.timestamp)}</td>"
                    f'<td style="background-color:{colour}">'
                    f"{html.escape(record.overall_status)}</td>"
                    f"<td>{record.n_passed}/{record.n_tests}</td>"
                    "</tr>"
                )
            sections.append(
                f"<h2>{html.escape(description)}</h2>"
                "<table border='1' cellspacing='0' cellpadding='3'>"
                "<tr><th>run</th><th>experiment</th><th>configuration</th>"
                "<th>time</th><th>status</th><th>passed</th></tr>"
                + "".join(rows)
                + "</table>"
            )
        body = "<h1>sp-system validation runs</h1>" + "".join(sections)
        page = _wrap_page("sp-system validation runs", body)
        self.storage.put(self.NAMESPACE, "index", {"html": page})
        return page

    # -- summary page ------------------------------------------------------------
    def summary_page(self, matrix_text: str) -> str:
        """Render the figure-3 style summary matrix as a preformatted page."""
        body = (
            "<h1>Summary of the validation tests</h1>"
            f"<pre>{html.escape(matrix_text)}</pre>"
        )
        page = _wrap_page("sp-system summary", body)
        self.storage.put(self.NAMESPACE, "summary", {"html": page})
        return page


def _wrap_page(title: str, body: str) -> str:
    """Wrap a body in a minimal self-contained HTML document."""
    return (
        "<!DOCTYPE html>"
        "<html><head>"
        f"<title>{html.escape(title)}</title>"
        "<meta charset='utf-8'/>"
        "<style>body{font-family:sans-serif} td,th{font-size:12px}</style>"
        "</head><body>"
        + body
        + "</body></html>"
    )


__all__ = ["StatusPageGenerator", "STATUS_COLOURS"]
