"""Script-based status web pages.

"Script-based web pages are used to record and display available validation
runs for a given description and indicate the status of the compilation for
the individual packages or tests within table cells, which are linked to a
corresponding output file."  The :class:`StatusPageGenerator` produces those
pages as self-contained static HTML: an index of runs per description, a
per-run page with one coloured cell per test linking to the stored output
document, and a campaign page showing the worker-pool timeline and
build-cache accounting of a scheduled campaign.

Pages are stored as ``{"html": ...}`` documents in the ``reports`` namespace;
:meth:`~repro.storage.common_storage.CommonStorage.persist` writes them as
browsable ``.html`` files, so every relative link on a page (``index`` →
``runpage_<id>.html``, run page → ``../results/<key>.json``) resolves inside
the persisted directory tree.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Optional

from repro._common import StorageError
from repro.core.jobs import JobStatus, ValidationRun
from repro.storage.bookkeeping import TagRegistry, format_timestamp
from repro.storage.catalog import RunCatalog
from repro.storage.common_storage import CommonStorage


#: Cell colours per job status, in the spirit of the original pages.
STATUS_COLOURS = {
    "passed": "#4caf50",
    "failed": "#f44336",
    "skipped": "#ff9800",
    "not-run": "#9e9e9e",
}

#: Colour for statuses outside STATUS_COLOURS (e.g. "empty", "unknown").
FALLBACK_COLOUR = "#9e9e9e"


class StatusPageGenerator:
    """Generates static HTML status pages and stores them on the common storage."""

    NAMESPACE = "reports"

    def __init__(
        self, storage: CommonStorage, catalog: Optional[RunCatalog] = None
    ) -> None:
        # The catalog is only consulted by the run index; pages that render
        # plain row data (campaign, trends, service) work without one.
        self.storage = storage
        self.catalog = catalog
        self.storage.create_namespace(self.NAMESPACE)

    # -- per-run page ---------------------------------------------------------
    def run_page(self, run: ValidationRun) -> str:
        """Render the status page of one validation run."""
        rows = []
        for job in run.jobs:
            colour = STATUS_COLOURS.get(job.status.value, FALLBACK_COLOUR)
            # Run pages persist below <dir>/reports/, the output documents
            # below <dir>/results/ — the link must climb out of reports/.
            output_link = (
                f'<a href="../results/{html.escape(job.output_key)}.json">output</a>'
                if job.output_key
                else "&mdash;"
            )
            rows.append(
                "<tr>"
                f"<td>{html.escape(job.test_name)}</td>"
                f"<td>{html.escape(job.kind.value)}</td>"
                f'<td style="background-color:{colour}">{html.escape(job.status.value)}</td>'
                f"<td>{output_link}</td>"
                f"<td>{html.escape('; '.join(job.messages[:2]))}</td>"
                "</tr>"
            )
        header = (
            f"<h1>Validation run {html.escape(run.run_id)}</h1>"
            f"<p>{html.escape(run.experiment)} on {html.escape(run.configuration_key)} "
            f"&mdash; {html.escape(run.description)} &mdash; "
            f"{format_timestamp(run.started_at)}</p>"
            f"<p>{run.n_passed} passed, {run.n_failed} failed, {run.n_skipped} skipped "
            f"of {run.n_jobs} tests</p>"
        )
        table = (
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr><th>test</th><th>kind</th><th>status</th><th>output</th><th>messages</th></tr>"
            + "".join(rows)
            + "</table>"
        )
        page = _wrap_page(f"sp-system run {run.run_id}", header + table)
        self.storage.put(self.NAMESPACE, f"runpage_{run.run_id}", {"html": page})
        return page

    # -- index page -----------------------------------------------------------
    def index_page(self, tag_registry: Optional[TagRegistry] = None) -> str:
        """Render the index of all recorded runs, grouped by description tag."""
        if self.catalog is None:
            raise StorageError(
                "the run index needs a RunCatalog; construct the "
                "StatusPageGenerator with one"
            )
        records = self.catalog.all()
        groups: Dict[str, List] = {}
        for record in records:
            groups.setdefault(record.description, []).append(record)
        sections = []
        for description in sorted(groups):
            rows = []
            for record in groups[description]:
                # Look the actual status up: a skipped or not-run record gets
                # its own colour, anything unknown the grey fallback.
                colour = STATUS_COLOURS.get(record.overall_status, FALLBACK_COLOUR)
                rows.append(
                    "<tr>"
                    f"<td><a href='runpage_{html.escape(record.run_id)}.html'>"
                    f"{html.escape(record.run_id)}</a></td>"
                    f"<td>{html.escape(record.experiment)}</td>"
                    f"<td>{html.escape(record.configuration_key)}</td>"
                    f"<td>{format_timestamp(record.timestamp)}</td>"
                    f'<td style="background-color:{colour}">'
                    f"{html.escape(record.overall_status)}</td>"
                    f"<td>{record.n_passed}/{record.n_tests}</td>"
                    "</tr>"
                )
            sections.append(
                f"<h2>{html.escape(description)}</h2>"
                "<table border='1' cellspacing='0' cellpadding='3'>"
                "<tr><th>run</th><th>experiment</th><th>configuration</th>"
                "<th>time</th><th>status</th><th>passed</th></tr>"
                + "".join(rows)
                + "</table>"
            )
        body = "<h1>sp-system validation runs</h1>" + "".join(sections)
        page = _wrap_page("sp-system validation runs", body)
        self.storage.put(self.NAMESPACE, "index", {"html": page})
        return page

    # -- campaign page --------------------------------------------------------
    #: Timeline rows beyond this count are elided to keep the page browsable.
    MAX_TIMELINE_ROWS = 200

    def campaign_page(
        self,
        result,
        cache_journal: Optional[Dict] = None,
        history_link: bool = False,
        deadline_seconds: Optional[float] = None,
        tickets: Optional[List] = None,
        events: Optional[List] = None,
    ) -> str:
        """Render the status page of one scheduled validation campaign.

        *result* is duck-typed (the scheduler's ``CampaignResult``): the page
        shows the pool timeline, per-worker utilisation, the build-cache
        accounting (including cross-experiment shared hits and the per-donor
        breakdown) and one row per matrix cell linking into the existing run
        pages.  Run pages for the campaign's cells are generated alongside,
        so the links are live once the storage is persisted.  With
        *cache_journal* (the ``BuildCache.journal_status`` mapping, passed
        as plain data to keep this layer scheduler-free), the page also
        reports the persisted journal's size.  With *history_link*, the
        page links to the validation-history trends page rendered by
        :meth:`trends_page`.  *deadline_seconds* overrides the schedule's
        own deadline for the late-cell marks and the met/missed verdict.
        *tickets* and *events* are plain row dictionaries (the reporting
        :func:`~repro.reporting.summary.intervention_rows` /
        :func:`~repro.reporting.summary.lifecycle_event_rows` helpers
        produce them) rendered as open-intervention and fired-event tables.
        """
        schedule = result.schedule
        for cell in result.cells:
            if not self.storage.exists(self.NAMESPACE, f"runpage_{cell.run.run_id}"):
                self.run_page(cell.run)
        effective_deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else schedule.deadline_seconds
        )
        late = set(schedule.late_cells(effective_deadline))
        shards = getattr(schedule, "shards", 0)
        header = (
            "<h1>Validation campaign</h1>"
            f"<p>{result.n_cells} matrix cells over {schedule.n_workers} worker(s), "
            f"backend <b>{html.escape(schedule.backend)}</b>"
            + (f" ({shards} shard(s))" if shards else "")
            + f", policy <b>{html.escape(schedule.policy)}</b> &mdash; "
            f"makespan {schedule.makespan_seconds:,.0f} s "
            f"(sequential {schedule.sequential_seconds:,.0f} s, "
            f"{schedule.speedup:.2f}x speedup, "
            f"utilisation {schedule.utilisation:.1%})</p>"
        )
        if history_link:
            header += (
                "<p><a href='trends.html'>validation history: trends and "
                "regressions</a></p>"
            )
        spec = result.spec
        if spec is not None:
            # The submitted spec travels with the page, so an operator can
            # copy it into `campaign --spec file.json` and replay the run.
            spec_json = json.dumps(spec.to_dict(), indent=2, sort_keys=True)
            header += (
                "<h2>Campaign spec</h2>"
                f"<pre>{html.escape(spec_json)}</pre>"
            )
        if effective_deadline is not None:
            verdict = (
                "met"
                if schedule.makespan_seconds <= effective_deadline
                else f"missed &mdash; {len(late)} late cell(s)"
            )
            header += (
                f"<p>deadline {effective_deadline:,.0f} s: {verdict}</p>"
            )
        cache = result.cache_statistics
        shared_hits = getattr(cache, "shared_hits", 0)
        cache_table = (
            "<h2>Build cache</h2>"
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr><th>hits</th><th>misses</th><th>stores</th>"
            "<th>evictions</th><th>hit rate</th>"
            "<th>shared hits (cross-experiment)</th></tr>"
            f"<tr><td>{cache.hits}</td><td>{cache.misses}</td>"
            f"<td>{cache.stores}</td><td>{cache.evictions}</td>"
            f"<td>{cache.hit_rate:.1%}</td>"
            f"<td>{shared_hits}</td></tr>"
            "</table>"
        )
        donated = getattr(cache, "donated_by_experiment", {})
        if donated:
            cache_table += "<p>hits donated across experiments: " + ", ".join(
                f"{html.escape(experiment)} &rarr; {count}"
                for experiment, count in sorted(donated.items())
            ) + "</p>"
        if cache_journal is not None:
            cache_table += (
                f"<p>persisted cache journal: {cache_journal.get('records', 0)} "
                f"record(s) ({cache_journal.get('entries', 0)} entries, "
                f"{cache_journal.get('tombstones', 0)} tombstones), "
                f"{cache_journal.get('artifacts', 0)} artifact payload(s), "
                f"{cache_journal.get('bytes', 0):,} bytes</p>"
            )
        worker_rows = []
        for worker_index in range(schedule.n_workers):
            busy = schedule.busy_seconds_per_worker.get(worker_index, 0.0)
            n_tasks = len(schedule.assignments_for_worker(worker_index))
            status = "failed" if worker_index in schedule.failed_workers else "healthy"
            worker_rows.append(
                "<tr>"
                f"<td>worker {worker_index}</td><td>{status}</td>"
                f"<td>{n_tasks}</td><td>{busy:,.0f}</td>"
                "</tr>"
            )
        worker_table = (
            "<h2>Per-worker utilisation</h2>"
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr><th>worker</th><th>state</th><th>tasks</th><th>busy seconds</th></tr>"
            + "".join(worker_rows)
            + "</table>"
        )
        cell_rows = []
        for cell in result.cells:
            run = cell.run
            colour = STATUS_COLOURS.get(run.overall_status, FALLBACK_COLOUR)
            end_seconds = schedule.cell_end_seconds.get(cell.index)
            finished = f"{end_seconds:,.0f}" if end_seconds is not None else "&mdash;"
            deadline_note = " (late)" if cell.index in late else ""
            cell_rows.append(
                "<tr>"
                f"<td>{cell.index}</td>"
                f"<td>{html.escape(cell.experiment)}</td>"
                f"<td>{html.escape(cell.configuration_key)}</td>"
                f"<td><a href='runpage_{html.escape(run.run_id)}.html'>"
                f"{html.escape(run.run_id)}</a></td>"
                f'<td style="background-color:{colour}">'
                f"{html.escape(run.overall_status)}</td>"
                f"<td>{finished}{deadline_note}</td>"
                "</tr>"
            )
        cell_table = (
            "<h2>Matrix cells</h2>"
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr><th>cell</th><th>experiment</th><th>configuration</th>"
            "<th>run</th><th>status</th><th>finished at (s)</th></tr>"
            + "".join(cell_rows)
            + "</table>"
        )
        timeline_rows = []
        for assignment in schedule.assignments[: self.MAX_TIMELINE_ROWS]:
            timeline_rows.append(
                "<tr>"
                f"<td>{html.escape(assignment.task_id)}</td>"
                f"<td>worker {assignment.worker_index}</td>"
                f"<td>{assignment.start_seconds:,.0f}</td>"
                f"<td>{assignment.end_seconds:,.0f}</td>"
                f"<td>{assignment.attempt}</td>"
                "</tr>"
            )
        elided = len(schedule.assignments) - len(timeline_rows)
        timeline_table = (
            "<h2>Pool timeline</h2>"
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr><th>task</th><th>worker</th><th>start (s)</th>"
            "<th>end (s)</th><th>attempt</th></tr>"
            + "".join(timeline_rows)
            + "</table>"
            + (f"<p>... and {elided} more task(s)</p>" if elided > 0 else "")
        )
        lifecycle_tables = ""
        if tickets is not None:
            lifecycle_tables += self._rows_table(
                "Open intervention tickets",
                ["ticket", "experiment", "configuration", "category",
                 "status", "suspected change", "description"],
                tickets,
            )
        if events is not None:
            lifecycle_tables += self._rows_table(
                "Fired lifecycle events",
                ["seq", "event", "campaign", "payload"],
                events,
            )
        page = _wrap_page(
            "sp-system validation campaign",
            header + cache_table + worker_table + cell_table
            + timeline_table + lifecycle_tables,
        )
        self.storage.put(self.NAMESPACE, "campaign", {"html": page})
        return page

    # -- validation history page -----------------------------------------------
    def trends_page(
        self,
        trend_rows: List[Dict[str, object]],
        regression_rows: List[Dict[str, object]],
        diff_rows: Optional[List[Dict[str, object]]] = None,
        history_status: Optional[Dict[str, int]] = None,
        evolution_rows: Optional[List[Dict[str, object]]] = None,
    ) -> str:
        """Render the longitudinal trends / regressions page.

        Every argument is plain row data (the ``trend_rows`` /
        ``regression_rows`` / ``diff_rows`` helpers of the history package
        produce them), so the reporting layer needs no import of the
        history subsystem.  The page is stored as the ``trends`` report
        document, which the campaign page links to.
        """
        body = "<h1>Validation history: trends and regressions</h1>"
        if history_status:
            body += (
                f"<p>{history_status.get('events', 0)} validation event(s) "
                f"across {history_status.get('campaigns', 0)} campaign(s) and "
                f"{history_status.get('cells', 0)} matrix cell(s); "
                f"{history_status.get('evolutions', 0)} recorded environment "
                "evolution event(s)</p>"
            )
        body += self._rows_table(
            "Per-experiment health across campaigns",
            ["experiment", "campaign", "cells", "validated", "broken",
             "pass_fraction"],
            trend_rows,
        )
        highlight = {
            "regressed": STATUS_COLOURS["failed"],
            "flaky": STATUS_COLOURS["skipped"],
            "never-validated": FALLBACK_COLOUR,
            "healthy": STATUS_COLOURS["passed"],
        }
        body += self._rows_table(
            "Cell classification (regressions first)",
            ["experiment", "configuration", "classification", "events",
             "flips", "first_bad", "suspected_change"],
            regression_rows,
            colour_column="classification",
            colours=highlight,
        )
        if diff_rows is not None:
            body += self._rows_table(
                "Campaign diff (flipped cells)",
                ["experiment", "configuration", "change", "from", "to"],
                diff_rows,
            )
        if evolution_rows:
            body += self._rows_table(
                "Recorded environment evolution events",
                ["year", "kind", "subject", "detail"],
                evolution_rows,
            )
        page = _wrap_page("sp-system validation history", body)
        self.storage.put(self.NAMESPACE, "trends", {"html": page})
        return page

    # -- live service dashboard -------------------------------------------------
    def service_page(
        self,
        snapshot: List[Dict[str, object]],
        tenants: List[Dict[str, object]],
        submissions: List[Dict[str, object]],
        worker: Optional[Dict[str, object]] = None,
        events: Optional[List[Dict[str, object]]] = None,
        metrics: Optional[List[List[object]]] = None,
    ) -> str:
        """Render the validation-service live dashboard.

        Every argument is plain row data (the :mod:`repro.service.telemetry`
        helpers produce it; *metrics* is
        ``MetricsRegistry.summary_rows()`` output), so the reporting layer
        needs no import of the service or telemetry subsystems.  The daemon
        re-renders this page on every heartbeat; it is stored as the
        ``service`` report document.
        """
        body = "<h1>Validation service: live status</h1>"
        if worker:
            state = "alive" if worker.get("alive") else "stopped"
            body += (
                f"<p>heartbeat worker: {state}, "
                f"{worker.get('beats', 0)} beat(s), "
                f"{worker.get('failures', 0)} failure(s), "
                f"{worker.get('restarts', 0)} restart(s)</p>"
            )
            last_error = worker.get("last_error")
            if last_error:
                body += (
                    "<p style='color:#f44336'>last worker error: "
                    f"{html.escape(str(last_error))}</p>"
                )
        body += self._rows_table(
            "Service snapshot", ["metric", "value"], snapshot
        )
        body += self._rows_table(
            "Tenants (fair share, rate limits, usage accounting)",
            ["tenant", "weight", "rate/s", "queued", "submitted", "completed",
             "failed", "cancelled", "rejected", "cells", "build s",
             "cache hits", "shared hits", "donated", "cache bytes"],
            tenants,
        )
        highlight = {
            "completed": STATUS_COLOURS["passed"],
            "failed": STATUS_COLOURS["failed"],
            "cancelled": STATUS_COLOURS["skipped"],
            "running": "#2196f3",
            "queued": FALLBACK_COLOUR,
        }
        body += self._rows_table(
            "Submissions",
            ["submission", "tenant", "priority", "status", "campaign",
             "cells", "error"],
            submissions,
            colour_column="status",
            colours=highlight,
        )
        if metrics:
            body += self._rows_table(
                "Telemetry metrics",
                ["kind", "series", "value"],
                [
                    {"kind": kind, "series": series, "value": value}
                    for kind, series, value in metrics
                ],
            )
        if events:
            body += self._rows_table(
                "Recent lifecycle events",
                ["seq", "event", "campaign", "payload"],
                events,
            )
        page = _wrap_page("sp-system validation service", body)
        self.storage.put(self.NAMESPACE, "service", {"html": page})
        return page

    # -- telemetry page ----------------------------------------------------------
    def telemetry_page(
        self,
        phase_rows: List[List[object]],
        metric_rows: Optional[List[List[object]]] = None,
        span_count: int = 0,
    ) -> str:
        """Render the per-phase timing + metrics report.

        *phase_rows* is ``SpanTracer.phase_rows()`` output
        (``[category, name, calls, cumulative, self]``) and *metric_rows*
        is ``MetricsRegistry.summary_rows()`` output — plain row data, so
        the reporting layer needs no import of the telemetry subsystem.
        Stored as the ``telemetry`` report document
        (``reports/telemetry.html`` once persisted).
        """
        body = (
            "<h1>Telemetry: hot-path timings and metrics</h1>"
            f"<p>{span_count} recorded span(s)</p>"
        )
        body += self._rows_table(
            "Per-phase timings (seconds, cumulative vs self)",
            ["category", "span", "calls", "cumulative s", "self s"],
            [
                {
                    "category": category,
                    "span": name,
                    "calls": calls,
                    "cumulative s": round(cumulative, 6),
                    "self s": round(self_seconds, 6),
                }
                for category, name, calls, cumulative, self_seconds in phase_rows
            ],
        )
        if metric_rows is not None:
            body += self._rows_table(
                "Metric series",
                ["kind", "series", "value"],
                [
                    {"kind": kind, "series": series, "value": value}
                    for kind, series, value in metric_rows
                ],
            )
        page = _wrap_page("sp-system telemetry", body)
        self.storage.put(self.NAMESPACE, "telemetry", {"html": page})
        return page

    def _rows_table(
        self,
        title: str,
        columns: List[str],
        rows: List[Dict[str, object]],
        colour_column: Optional[str] = None,
        colours: Optional[Dict[str, str]] = None,
    ) -> str:
        """A titled HTML table over plain row dictionaries."""
        if not rows:
            return f"<h2>{html.escape(title)}</h2><p>nothing recorded</p>"
        cells = []
        for row in rows:
            rendered = []
            for column in columns:
                value = html.escape(str(row.get(column, "")))
                if colour_column == column and colours:
                    colour = colours.get(str(row.get(column)), FALLBACK_COLOUR)
                    rendered.append(
                        f'<td style="background-color:{colour}">{value}</td>'
                    )
                else:
                    rendered.append(f"<td>{value}</td>")
            cells.append("<tr>" + "".join(rendered) + "</tr>")
        return (
            f"<h2>{html.escape(title)}</h2>"
            "<table border='1' cellspacing='0' cellpadding='3'>"
            "<tr>"
            + "".join(f"<th>{html.escape(column)}</th>" for column in columns)
            + "</tr>"
            + "".join(cells)
            + "</table>"
        )

    # -- summary page ------------------------------------------------------------
    def summary_page(self, matrix_text: str) -> str:
        """Render the figure-3 style summary matrix as a preformatted page."""
        body = (
            "<h1>Summary of the validation tests</h1>"
            f"<pre>{html.escape(matrix_text)}</pre>"
        )
        page = _wrap_page("sp-system summary", body)
        self.storage.put(self.NAMESPACE, "summary", {"html": page})
        return page


def _wrap_page(title: str, body: str) -> str:
    """Wrap a body in a minimal self-contained HTML document."""
    return (
        "<!DOCTYPE html>"
        "<html><head>"
        f"<title>{html.escape(title)}</title>"
        "<meta charset='utf-8'/>"
        "<style>body{font-family:sans-serif} td,th{font-size:12px}</style>"
        "</head><body>"
        + body
        + "</body></html>"
    )


__all__ = ["StatusPageGenerator", "STATUS_COLOURS", "FALLBACK_COLOUR"]
