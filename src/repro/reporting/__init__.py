"""Reporting: summary matrices, status web pages and tabular exports."""

from repro.reporting.figures import (
    comparison_table,
    fraction_series,
    horizontal_bar_chart,
    pass_fail_strip,
)
from repro.reporting.export import (
    catalog_to_rows,
    matrix_to_csv,
    matrix_to_json,
    rows_to_csv,
    rows_to_json,
    rows_to_text,
)
from repro.reporting.summary import MatrixCell, SummaryMatrix, ValidationSummaryBuilder
from repro.reporting.webpages import STATUS_COLOURS, StatusPageGenerator

__all__ = [
    "comparison_table",
    "fraction_series",
    "horizontal_bar_chart",
    "pass_fail_strip",
    "catalog_to_rows",
    "matrix_to_csv",
    "matrix_to_json",
    "rows_to_csv",
    "rows_to_json",
    "rows_to_text",
    "MatrixCell",
    "SummaryMatrix",
    "ValidationSummaryBuilder",
    "STATUS_COLOURS",
    "StatusPageGenerator",
]
