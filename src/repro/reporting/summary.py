"""Summary matrices over validation runs (the content of figure 3).

Figure 3 of the paper is "a summary of the validation tests carried out by the
HERA experiments within the sp-system", showing, per experiment (ZEUS / H1 /
HERMES) and per process, how the tests fare under the different configurations
of operating system and external dependencies.  The
:class:`ValidationSummaryBuilder` produces exactly that matrix from the run
catalogue, plus the headline numbers quoted in the text (total number of runs,
number of configurations, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._common import format_table
from repro.core.jobs import ValidationRun
from repro.storage.catalog import RunCatalog, RunRecord


@dataclass
class MatrixCell:
    """One cell of the figure-3 matrix: an experiment/process/configuration bin."""

    experiment: str
    process: str
    configuration_key: str
    n_passed: int = 0
    n_failed: int = 0
    n_skipped: int = 0

    @property
    def n_total(self) -> int:
        """Total number of test executions aggregated in the cell."""
        return self.n_passed + self.n_failed + self.n_skipped

    @property
    def status(self) -> str:
        """Aggregate status of the cell: ok / problems / not-run."""
        if self.n_total == 0:
            return "not-run"
        if self.n_failed > 0:
            return "problems"
        if self.n_skipped > 0:
            return "incomplete"
        return "ok"

    @property
    def pass_fraction(self) -> float:
        """Fraction of executions that passed."""
        if self.n_total == 0:
            return 0.0
        return self.n_passed / self.n_total


@dataclass
class SummaryMatrix:
    """The full experiment × process × configuration summary."""

    experiments: List[str]
    configurations: List[str]
    cells: Dict[Tuple[str, str, str], MatrixCell] = field(default_factory=dict)
    experiment_colours: Dict[str, str] = field(default_factory=dict)
    total_runs: int = 0

    def cell(self, experiment: str, process: str, configuration_key: str) -> MatrixCell:
        """Return (creating if necessary) the cell for the given coordinates."""
        key = (experiment, process, configuration_key)
        if key not in self.cells:
            self.cells[key] = MatrixCell(
                experiment=experiment,
                process=process,
                configuration_key=configuration_key,
            )
        return self.cells[key]

    def processes_for(self, experiment: str) -> List[str]:
        """All processes with at least one cell for *experiment*."""
        return sorted({
            process for (exp, process, _key) in self.cells if exp == experiment
        })

    def rows(self) -> List[Dict[str, object]]:
        """Flatten the matrix into rows (one per experiment/process/configuration)."""
        rows = []
        for (experiment, process, configuration_key) in sorted(self.cells):
            cell = self.cells[(experiment, process, configuration_key)]
            rows.append(
                {
                    "experiment": experiment,
                    "process": process,
                    "configuration": configuration_key,
                    "passed": cell.n_passed,
                    "failed": cell.n_failed,
                    "skipped": cell.n_skipped,
                    "status": cell.status,
                }
            )
        return rows

    def render_text(self) -> str:
        """Render the matrix as an aligned text table, grouped by experiment."""
        blocks = []
        for experiment in self.experiments:
            colour = self.experiment_colours.get(experiment, "")
            title = f"{experiment}" + (f" ({colour})" if colour else "")
            headers = ["process"] + self.configurations
            rows = []
            for process in self.processes_for(experiment):
                row = [process]
                for configuration_key in self.configurations:
                    cell = self.cells.get((experiment, process, configuration_key))
                    if cell is None or cell.n_total == 0:
                        row.append("-")
                    else:
                        row.append(f"{cell.n_passed}/{cell.n_total} {cell.status}")
                rows.append(row)
            blocks.append(title + "\n" + format_table(headers, rows))
        footer = f"total validation runs recorded: {self.total_runs}"
        return "\n\n".join(blocks + [footer])

    def overall_pass_fraction(self) -> float:
        """Pass fraction over every cell of the matrix."""
        passed = sum(cell.n_passed for cell in self.cells.values())
        total = sum(cell.n_total for cell in self.cells.values())
        return passed / total if total else 0.0

    def problem_cells(self) -> List[MatrixCell]:
        """All cells with at least one failure."""
        return [cell for cell in self.cells.values() if cell.n_failed > 0]


class ValidationSummaryBuilder:
    """Builds summary matrices from validation runs or the run catalogue."""

    def __init__(self, experiment_colours: Optional[Dict[str, str]] = None) -> None:
        self.experiment_colours = experiment_colours or {
            "ZEUS": "orange",
            "H1": "blue",
            "HERMES": "red",
        }

    def from_runs(self, runs: Sequence[ValidationRun]) -> SummaryMatrix:
        """Build the matrix from in-memory validation runs (per-process detail)."""
        experiments = sorted({run.experiment for run in runs})
        configurations = sorted({run.configuration_key for run in runs})
        matrix = SummaryMatrix(
            experiments=self._order_experiments(experiments),
            configurations=configurations,
            experiment_colours=dict(self.experiment_colours),
            total_runs=len(runs),
        )
        for run in runs:
            per_process = run.statuses_by_process()
            for process, counts in per_process.items():
                cell = matrix.cell(run.experiment, process, run.configuration_key)
                cell.n_passed += counts["passed"]
                cell.n_failed += counts["failed"]
                cell.n_skipped += counts["skipped"]
        return matrix

    def from_campaign(self, campaign) -> SummaryMatrix:
        """Build the matrix from a scheduled campaign's validation runs.

        Accepts any object with a ``runs()`` method returning validation runs
        (duck-typed so the scheduler package can stay a pure consumer of the
        reporting layer).
        """
        return self.from_runs(campaign.runs())

    def from_catalog(self, catalog: RunCatalog) -> SummaryMatrix:
        """Build a coarser matrix from the run catalogue.

        The catalogue stores per-test statuses without the process attribute,
        so the process dimension is reduced to the test-name prefix (the part
        before the first ``-``), which is how the script-based web pages of
        the sp-system group their table rows.
        """
        records = catalog.all()
        experiments = sorted({record.experiment for record in records})
        configurations = sorted({record.configuration_key for record in records})
        matrix = SummaryMatrix(
            experiments=self._order_experiments(experiments),
            configurations=configurations,
            experiment_colours=dict(self.experiment_colours),
            total_runs=len(records),
        )
        for record in records:
            for test_name, status in record.test_statuses.items():
                process = test_name.split("-", 1)[0]
                cell = matrix.cell(record.experiment, process, record.configuration_key)
                if status == "passed":
                    cell.n_passed += 1
                elif status == "failed":
                    cell.n_failed += 1
                elif status == "skipped":
                    cell.n_skipped += 1
        return matrix

    def headline_numbers(self, catalog: RunCatalog) -> Dict[str, int]:
        """The headline statistics quoted in section 3.3 of the paper."""
        records = catalog.all()
        return {
            "total_runs": len(records),
            "experiments": len({record.experiment for record in records}),
            "configurations": len({record.configuration_key for record in records}),
            "total_test_executions": sum(record.n_tests for record in records),
            "total_failures": sum(record.n_failed for record in records),
        }

    def _order_experiments(self, experiments: List[str]) -> List[str]:
        """Order experiments the way figure 3 stacks them: ZEUS, H1, HERMES."""
        preferred = ["ZEUS", "H1", "HERMES"]
        ordered = [name for name in preferred if name in experiments]
        ordered.extend(name for name in experiments if name not in ordered)
        return ordered


def build_cache_rows(statistics) -> List[Dict[str, object]]:
    """Rows describing build-cache accounting (hits, misses, hit rate).

    *statistics* is duck-typed (any object with ``hits``/``misses``/``stores``/
    ``evictions``/``hit_rate``), so the reporting layer needs no import of the
    scheduler package.  Cross-experiment sharing (``shared_hits`` and the
    per-donor ``donated_by_experiment`` breakdown of the content-addressed
    cache) is reported when the statistics object carries it.
    """
    rows = [
        {"quantity": "build cache hits", "value": statistics.hits},
        {"quantity": "build cache misses", "value": statistics.misses},
        {"quantity": "build cache stores", "value": statistics.stores},
        {"quantity": "build cache evictions", "value": statistics.evictions},
        {"quantity": "build cache hit rate", "value": f"{statistics.hit_rate:.1%}"},
        {
            "quantity": "build cache shared hits (cross-experiment)",
            "value": getattr(statistics, "shared_hits", 0),
        },
    ]
    for experiment, count in sorted(
        getattr(statistics, "donated_by_experiment", {}).items()
    ):
        rows.append(
            {"quantity": f"  hits donated by {experiment}", "value": count}
        )
    return rows


def cache_journal_rows(status: Dict[str, int]) -> List[Dict[str, object]]:
    """Rows describing the persisted build-cache journal's size.

    *status* is the mapping :meth:`BuildCache.journal_status` returns
    (``records``/``entries``/``tombstones``/``artifacts``/``bytes``), passed
    as plain data so the reporting layer needs no scheduler import.
    """
    return [
        {"quantity": "cache journal records", "value": status.get("records", 0)},
        {"quantity": "  entry records", "value": status.get("entries", 0)},
        {"quantity": "  tombstone records", "value": status.get("tombstones", 0)},
        {"quantity": "cache artifact payloads", "value": status.get("artifacts", 0)},
        {"quantity": "cache journal bytes", "value": status.get("bytes", 0)},
    ]


def campaign_schedule_rows(
    schedule, deadline_seconds: Optional[float] = None
) -> List[Dict[str, object]]:
    """Rows describing the simulated worker-pool timeline of a campaign.

    *deadline_seconds* overrides the schedule's own deadline for the
    late-cell report and the met/missed verdict — the what-if question
    ("would this timeline have met a tighter deadline?") the schedule's
    :meth:`~repro.scheduler.pool.PoolSchedule.late_cells` already answers.
    """
    rows = [
        {"quantity": "execution backend", "value": schedule.backend},
        {"quantity": "scheduling policy", "value": schedule.policy},
        {"quantity": "workers", "value": schedule.n_workers},
        {"quantity": "slots per worker", "value": schedule.slots_per_worker},
    ]
    if getattr(schedule, "shards", 0):
        rows.append({"quantity": "shards", "value": schedule.shards})
    rows += [
        {"quantity": "sequential seconds", "value": f"{schedule.sequential_seconds:.0f}"},
        {"quantity": "pooled makespan seconds", "value": f"{schedule.makespan_seconds:.0f}"},
        {"quantity": "critical path seconds", "value": f"{schedule.critical_path_seconds:.0f}"},
        {"quantity": "speedup", "value": f"{schedule.speedup:.2f}x"},
        {"quantity": "slot utilisation", "value": f"{schedule.utilisation:.1%}"},
        {"quantity": "task retries after worker failures", "value": schedule.n_retries},
        {"quantity": "failed workers", "value": len(schedule.failed_workers)},
    ]
    effective_deadline = (
        deadline_seconds
        if deadline_seconds is not None
        else schedule.deadline_seconds
    )
    if effective_deadline is not None:
        late = schedule.late_cells(effective_deadline)
        met = schedule.makespan_seconds <= effective_deadline
        rows.append(
            {
                "quantity": "deadline seconds",
                "value": f"{effective_deadline:.0f}",
            }
        )
        rows.append(
            {
                "quantity": "deadline verdict",
                "value": (
                    "met" if met
                    else f"missed ({len(late)} late cell(s): "
                    + ", ".join(str(index) for index in late[:8])
                    + (", ..." if len(late) > 8 else "")
                    + ")"
                ),
            }
        )
    return rows


def intervention_rows(tickets) -> List[Dict[str, object]]:
    """Rows describing intervention tickets (duck-typed, newest last).

    Each ticket needs ``ticket_id``/``experiment``/``configuration_key``/
    ``category``/``status``/``suspected_change``/``description`` — the
    shape :class:`~repro.core.intervention.InterventionTicket` provides —
    so the reporting layer needs no import of the core package.
    """
    rows = []
    for ticket in tickets:
        rows.append(
            {
                "ticket": ticket.ticket_id,
                "experiment": ticket.experiment,
                "configuration": ticket.configuration_key or "-",
                "category": getattr(ticket.category, "value", ticket.category),
                "status": getattr(ticket.status, "value", ticket.status),
                "suspected change": ticket.suspected_change or "-",
                "reopened": getattr(ticket, "reopen_count", 0),
                "description": ticket.description,
            }
        )
    return rows


def lifecycle_event_rows(events) -> List[Dict[str, object]]:
    """Rows describing fired lifecycle events (duck-typed).

    Each event needs ``sequence``/``name``/``campaign_id``/``payload`` —
    the shape :class:`~repro.scheduler.lifecycle.LifecycleEvent` provides.
    """
    rows = []
    for event in events:
        payload = ", ".join(
            f"{key}={value}" for key, value in sorted(event.payload.items())
        )
        rows.append(
            {
                "seq": event.sequence,
                "event": event.name,
                "campaign": event.campaign_id or "-",
                "payload": payload or "-",
            }
        )
    return rows


def render_campaign_report(
    campaign, deadline_seconds: Optional[float] = None
) -> str:
    """Render the operational summary of one scheduled validation campaign.

    *campaign* is duck-typed: it needs ``n_cells``/``rounds``/``dag``/
    ``schedule``/``cache_statistics`` attributes (the scheduler's
    ``CampaignResult`` provides them).  *deadline_seconds* overrides the
    schedule's deadline for the late-cell verdict.
    """
    counts = campaign.dag.counts_by_kind()
    header_rows = [
        {"quantity": "matrix cells executed", "value": campaign.n_cells},
        {"quantity": "campaign rounds", "value": campaign.rounds},
        {"quantity": "scheduled tasks", "value": len(campaign.dag)},
    ] + [
        {"quantity": f"  {kind} tasks", "value": count}
        for kind, count in sorted(counts.items())
    ]
    rows = (
        header_rows
        + campaign_schedule_rows(
            campaign.schedule, deadline_seconds=deadline_seconds
        )
        + build_cache_rows(campaign.cache_statistics)
    )
    table = format_table(
        ["quantity", "value"], [[row["quantity"], row["value"]] for row in rows]
    )
    return "campaign schedule and build-cache summary\n" + table


__all__ = [
    "MatrixCell",
    "SummaryMatrix",
    "ValidationSummaryBuilder",
    "build_cache_rows",
    "cache_journal_rows",
    "campaign_schedule_rows",
    "intervention_rows",
    "lifecycle_event_rows",
    "render_campaign_report",
]
