"""Tabular exports (CSV / JSON) of validation results.

The original sp-system keeps everything as files on the common storage; for
downstream analysis of the validation history this module adds flat exports
of the run catalogue and of summary matrices, plus the plain-text rendering
used by the benchmark harness to print the rows a table or figure reports.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Optional, Sequence

from repro._common import format_table
from repro.reporting.summary import SummaryMatrix
from repro.storage.catalog import RunCatalog


def catalog_to_rows(catalog: RunCatalog) -> List[Dict[str, object]]:
    """Flatten the run catalogue into one dictionary per run."""
    rows = []
    for record in catalog.all():
        rows.append(
            {
                "run_id": record.run_id,
                "experiment": record.experiment,
                "configuration": record.configuration_key,
                "description": record.description,
                "timestamp": record.timestamp,
                "n_tests": record.n_tests,
                "n_passed": record.n_passed,
                "n_failed": record.n_failed,
                "overall_status": record.overall_status,
            }
        )
    return rows


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as CSV text (header derived from the first row)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def rows_to_json(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as pretty-printed JSON."""
    return json.dumps(list(rows), indent=2, sort_keys=True)


def rows_to_text(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned text table (benchmark harness output)."""
    if not rows:
        return "(no rows)"
    columns = list(columns) if columns is not None else list(rows[0].keys())
    return format_table(columns, [[row.get(column, "") for column in columns] for row in rows])


def matrix_to_csv(matrix: SummaryMatrix) -> str:
    """Export a summary matrix as CSV."""
    return rows_to_csv(matrix.rows())


def matrix_to_json(matrix: SummaryMatrix) -> str:
    """Export a summary matrix as JSON."""
    return rows_to_json(matrix.rows())


__all__ = [
    "catalog_to_rows",
    "rows_to_csv",
    "rows_to_json",
    "rows_to_text",
    "matrix_to_csv",
    "matrix_to_json",
]
