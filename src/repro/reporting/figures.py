"""Text figures: bar charts and year series for terminal reports.

The original sp-system publishes its results as simple script-generated web
pages; for terminal use the reproduction adds equally simple text figures.
They are deliberately dependency-free (no plotting libraries are available on
a preservation system decades from now — which is rather the point of the
paper) and are used by the examples and the benchmark harness to visualise
the figure-3 matrix and the lifetime comparison.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro._common import ValidationError


def horizontal_bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    sort_by_value: bool = False,
) -> str:
    """Render a labelled horizontal bar chart.

    Bars are scaled to the largest value; zero and negative values render as
    empty bars (negative values do not occur in validation counts).
    """
    if width <= 0:
        raise ValidationError("chart width must be positive")
    if not values:
        return "(no data)"
    items = list(values.items())
    if sort_by_value:
        items.sort(key=lambda item: item[1], reverse=True)
    label_width = max(len(str(label)) for label, _value in items)
    maximum = max(value for _label, value in items)
    scale = (width / maximum) if maximum > 0 else 0.0
    lines = []
    for label, value in items:
        bar_length = int(round(max(value, 0.0) * scale))
        bar = "#" * bar_length
        suffix = f" {value:g}{unit}"
        lines.append(f"{str(label).ljust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def fraction_series(
    series: Mapping[str, Mapping[int, float]],
    levels: str = " .:-=+*#%@",
) -> str:
    """Render one character-per-year usability series for several strategies.

    Each value must lie in [0, 1]; it is mapped onto the ``levels`` ramp
    (space = 0, last character = 1).  Used for the freeze-vs-migration
    comparison where each year has a "fraction of packages still usable".
    """
    if not series:
        return "(no data)"
    if len(levels) < 2:
        raise ValidationError("the character ramp needs at least two levels")
    all_years = sorted({year for values in series.values() for year in values})
    if not all_years:
        return "(no data)"
    label_width = max(len(name) for name in series)
    lines = [" " * label_width + "  " + " ".join(str(year)[-2:] for year in all_years)]
    for name, values in series.items():
        cells = []
        for year in all_years:
            value = values.get(year)
            if value is None:
                cells.append("? ")
                continue
            if not 0.0 <= value <= 1.0 + 1e-9:
                raise ValidationError(
                    f"series {name!r} year {year}: value {value} outside [0, 1]"
                )
            index = int(round(min(value, 1.0) * (len(levels) - 1)))
            cells.append(levels[index] * 2)
        lines.append(f"{name.ljust(label_width)}  " + " ".join(cells))
    lines.append(
        " " * label_width
        + f"  (ramp: '{levels[0]}'=0% ... '{levels[-1]}'=100% of packages usable)"
    )
    return "\n".join(lines)


def pass_fail_strip(statuses: Sequence[str], symbols: Optional[Dict[str, str]] = None) -> str:
    """Render a compact strip of job outcomes (one character per job).

    The default symbols follow the web page colours: ``.`` passed, ``F``
    failed, ``s`` skipped, ``?`` anything else.
    """
    mapping = symbols or {"passed": ".", "failed": "F", "skipped": "s"}
    return "".join(mapping.get(status, "?") for status in statuses)


def comparison_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str],
    highlight_column: Optional[str] = None,
    highlight_predicate=lambda value: False,
) -> str:
    """Render rows as a table, marking highlighted cells with ``<<``.

    A tiny convenience over :func:`repro._common.format_table` used by the
    migration reports to draw attention to regressed entries.
    """
    from repro._common import format_table

    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            text = str(value)
            if column == highlight_column and highlight_predicate(value):
                text += " <<"
            rendered.append(text)
        rendered_rows.append(rendered)
    return format_table(list(columns), rendered_rows)


__all__ = [
    "horizontal_bar_chart",
    "fraction_series",
    "pass_fail_strip",
    "comparison_table",
]
