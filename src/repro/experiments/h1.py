"""The H1 experiment: a full level-4 preservation programme.

Figure 2 of the paper outlines the H1 validation tests: the compilation of
approximately 100 individual software packages plus a series of validation
tests over the full spectrum of the H1 software — standalone executables run
in parallel and several sequential full analysis chains — expected to
comprise up to 500 tests in total.  :func:`build_h1_experiment` constructs a
synthetic experiment definition with exactly that structure; the counts are
tunable so the expensive benchmarks can run a scaled-down but structurally
identical suite.
"""

from __future__ import annotations

from typing import List, Optional

from repro.buildsys.package import PackageCategory
from repro.core.levels import PreservationLevel
from repro.core.testspec import ExperimentDefinition, TestKind, ValidationTestSpec
from repro.environment.compatibility import ExternalRequirement, SoftwareRequirements
from repro.experiments import executors
from repro.experiments.chains import FULL_CHAIN_STEPS, build_analysis_chain
from repro.experiments.inventories import (
    InventoryQuirks,
    build_inventory,
    shared_external_packages,
)
from repro.hepdata.generator import GeneratorSettings, default_processes


#: The physics processes whose full chains H1 validates.
H1_PROCESSES = ("nc_dis", "cc_dis", "photoproduction", "heavy_flavour")

#: Control variables histogrammed by the per-package regression tests.
_REGRESSION_VARIABLES = ("q2", "x", "multiplicity")


def build_h1_experiment(
    n_packages: int = 100,
    events_per_chain: int = 200,
    events_per_test: int = 60,
    regression_tests_per_package: int = 3,
    quirks: Optional[InventoryQuirks] = None,
    scale: float = 1.0,
    shared_externals: bool = False,
) -> ExperimentDefinition:
    """Build the synthetic H1 experiment definition.

    With the default parameters the experiment defines close to 500 tests
    (~100 compilations, ~370 standalone tests, 28 chain steps), matching the
    expectation stated in the paper.  *scale* < 1 shrinks the package count,
    the number of standalone tests and the event counts proportionally while
    keeping the structure (all categories, all processes, all chain steps).
    """
    scale = max(min(scale, 1.0), 0.01)
    n_packages = max(int(round(n_packages * scale)), 8)
    events_per_chain = max(int(round(events_per_chain * scale)), 10)
    events_per_test = max(int(round(events_per_test * scale)), 10)
    regression_tests_per_package = max(
        int(round(regression_tests_per_package * scale)), 0 if scale < 1.0 else 1
    )

    inventory = build_inventory("H1", n_packages, quirks or InventoryQuirks())
    if shared_externals:
        for package in shared_external_packages("H1"):
            inventory.add(package)
    standalone: List[ValidationTestSpec] = []

    generator_settings = {
        settings.process: settings for settings in default_processes()
    }

    # 1. One smoke test per package: does the installed executable start?
    for package in inventory.all():
        standalone.append(
            ValidationTestSpec(
                name=f"smoke-{package.name}",
                experiment="H1",
                kind=TestKind.STANDALONE,
                executor=executors.smoke_test_executor(package.name),
                description=f"start-up check of the {package.name} executable",
                process="infrastructure",
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    # 2. ROOT I/O round-trip per analysis package.
    for package in inventory.by_category(PackageCategory.ANALYSIS):
        standalone.append(
            ValidationTestSpec(
                name=f"rootio-{package.name}",
                experiment="H1",
                kind=TestKind.STANDALONE,
                executor=executors.root_io_executor(package.name),
                description=f"ROOT file write/read round trip of {package.name}",
                process="infrastructure",
                requirements=SoftwareRequirements(
                    externals=(
                        ExternalRequirement(
                            product="ROOT",
                            min_api_level=1,
                            used_apis=frozenset({"TFile", "TTree"}),
                        ),
                    )
                ),
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    # 3. Calibration constant re-derivation per calibration package.
    for index, package in enumerate(inventory.by_category(PackageCategory.CALIBRATION)):
        standalone.append(
            ValidationTestSpec(
                name=f"calibration-{package.name}",
                experiment="H1",
                kind=TestKind.STANDALONE,
                executor=executors.calibration_constants_executor(
                    subsystem=package.name, nominal_value=1.0 + 0.01 * index
                ),
                description=f"re-derive calibration constants with {package.name}",
                process="calibration",
                required_packages=(package.name,),
                capability="reconstruction",
            )
        )

    # 4. Conditions-database access checks.
    for package in inventory.by_category(PackageCategory.DATABASE):
        standalone.append(
            ValidationTestSpec(
                name=f"database-{package.name}",
                experiment="H1",
                kind=TestKind.STANDALONE,
                executor=executors.database_access_executor("H1"),
                description=f"conditions database access through {package.name}",
                process="infrastructure",
                requirements=SoftwareRequirements(
                    externals=(ExternalRequirement(product="MySQL", min_api_level=1),)
                ),
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    # 5. Kinematic reconstruction consistency per physics process.
    for process in H1_PROCESSES:
        standalone.append(
            ValidationTestSpec(
                name=f"kinematics-{process}",
                experiment="H1",
                kind=TestKind.STANDALONE,
                executor=executors.kinematics_consistency_executor(
                    "H1", process, n_events=events_per_test
                ),
                description=f"electron vs Jacquet-Blondel kinematics for {process}",
                process=process,
                capability="reconstruction",
            )
        )

    # 6. Simplified-format export (level-2 obligation kept alive alongside level 4).
    standalone.append(
        ValidationTestSpec(
            name="data-export-simplified",
            experiment="H1",
            kind=TestKind.STANDALONE,
            executor=executors.data_export_executor("H1", n_events=events_per_test),
            description="export of the simplified outreach data format",
            process="outreach",
            capability="data-export",
        )
    )

    # 7. Per-package control-histogram regression tests (the bulk of the suite).
    regression_targets = (
        inventory.by_category(PackageCategory.ANALYSIS)
        + inventory.by_category(PackageCategory.RECONSTRUCTION)
        + inventory.by_category(PackageCategory.SIMULATION)
    )
    for package in regression_targets:
        for variable_index in range(regression_tests_per_package):
            variable = _REGRESSION_VARIABLES[variable_index % len(_REGRESSION_VARIABLES)]
            process = H1_PROCESSES[variable_index % len(H1_PROCESSES)]
            standalone.append(
                ValidationTestSpec(
                    name=f"regression-{package.name}-{variable}-{variable_index}",
                    experiment="H1",
                    kind=TestKind.STANDALONE,
                    executor=executors.control_histogram_executor(
                        "H1", process, variable, n_events=events_per_test
                    ),
                    description=(
                        f"control distribution of {variable} produced with {package.name}"
                    ),
                    process=process,
                    required_packages=(package.name,),
                    capability="analysis",
                )
            )

    # Full analysis chains, one per physics process (level 4: MC generation
    # and simulation through file production to physics analysis).
    chains = [
        build_analysis_chain(
            experiment="H1",
            process=process,
            generator_settings=generator_settings[process],
            n_events=events_per_chain,
            chain_name=f"h1-{process.replace('_', '-')}-chain",
            steps=FULL_CHAIN_STEPS,
        )
        for process in H1_PROCESSES
    ]

    return ExperimentDefinition(
        name="H1",
        full_name="H1 experiment at HERA",
        preservation_level=PreservationLevel.FULL_SOFTWARE,
        inventory=inventory,
        standalone_tests=standalone,
        chains=chains,
        display_colour="blue",
    )


__all__ = ["build_h1_experiment", "H1_PROCESSES"]
