"""Synthetic experiment definitions for the HERA collaborations.

The three HERA experiments named in the paper — H1, ZEUS and HERMES — are
provided as ready-made :class:`~repro.core.testspec.ExperimentDefinition`
builders, together with the building blocks (package inventories, test
executors and analysis chains) needed to define further experiments.
"""

from repro.experiments.declarative import experiment_from_spec, spec_from_experiment
from repro.experiments.chains import (
    ANALYSIS_ONLY_STEPS,
    FULL_CHAIN_STEPS,
    STEP_CAPABILITY,
    build_analysis_chain,
)
from repro.experiments.h1 import H1_PROCESSES, build_h1_experiment
from repro.experiments.hermes import HERMES_PROCESSES, build_hermes_experiment
from repro.experiments.inventories import (
    InventoryQuirks,
    build_inventory,
    shared_external_packages,
)
from repro.experiments.zeus import ZEUS_PROCESSES, build_zeus_experiment


def build_hera_experiments(scale: float = 1.0, shared_externals: bool = False):
    """Build all three HERA experiment definitions at the given scale.

    With *shared_externals*, every experiment's inventory carries the
    HERA-wide external products, so a campaign over several experiments
    compiles each of them exactly once (the content-addressed build cache
    recognises the replicas as one build).
    """
    return [
        build_zeus_experiment(scale=scale, shared_externals=shared_externals),
        build_h1_experiment(scale=scale, shared_externals=shared_externals),
        build_hermes_experiment(scale=scale, shared_externals=shared_externals),
    ]


__all__ = [
    "ANALYSIS_ONLY_STEPS",
    "FULL_CHAIN_STEPS",
    "STEP_CAPABILITY",
    "build_analysis_chain",
    "H1_PROCESSES",
    "build_h1_experiment",
    "HERMES_PROCESSES",
    "build_hermes_experiment",
    "InventoryQuirks",
    "build_inventory",
    "shared_external_packages",
    "ZEUS_PROCESSES",
    "build_zeus_experiment",
    "build_hera_experiments",
    "experiment_from_spec",
    "spec_from_experiment",
]
