"""Executor factories for the synthetic experiment validation tests.

The experiments' real validation tests wrap their own executables behind the
thin shell-variable interface.  In the reproduction each test is a Python
callable built by one of the factories in this module: smoke tests,
kinematics-consistency checks, histogram producers, database and ROOT I/O
checks, and the individual steps of the full analysis chains.  Every factory
returns a function with the :data:`repro.core.testspec.TestExecutor`
signature, so the validation runner treats them exactly like user-supplied
test scripts.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

from repro._common import stable_fraction
from repro.core.testspec import ExecutionContext, OutputKind, TestOutput
from repro.hepdata.analysis import PhysicsAnalysis, SelectionCuts
from repro.hepdata.dst import DSTProducer, MicroDSTProducer
from repro.hepdata.generator import GeneratorSettings, MonteCarloGenerator
from repro.hepdata.histogram import Histogram1D, HistogramSet
from repro.hepdata.reconstruction import EventReconstruction
from repro.hepdata.simulation import DetectorSimulation, detector_for_experiment


def smoke_test_executor(package_name: str) -> Callable[[ExecutionContext], TestOutput]:
    """A yes/no test that an installed executable starts and exits cleanly.

    The outcome only depends on the numeric context's defects: a genuinely
    broken environment (e.g. an interface silently removed) makes a fraction
    of executables fail to start.
    """

    def execute(context: ExecutionContext) -> TestOutput:
        broken = context.numeric_context.has_defect("removed-interface-returns-zero") and (
            stable_fraction("smoke", package_name, context.configuration.key) < 0.5
        )
        return TestOutput(
            kind=OutputKind.YES_NO,
            passed=not broken,
            yes_no=not broken,
            messages=[] if not broken else [f"{package_name} executable aborted at start-up"],
        )

    return execute


def calibration_constants_executor(
    subsystem: str, nominal_value: float, tolerance: float = 0.05
) -> Callable[[ExecutionContext], TestOutput]:
    """Check that re-derived calibration constants stay near their nominal value."""

    def execute(context: ExecutionContext) -> TestOutput:
        derived = context.numeric_context.perturb_scalar(
            nominal_value, f"calib:{subsystem}"
        )
        deviation = abs(derived - nominal_value) / abs(nominal_value)
        passed = deviation <= tolerance
        return TestOutput(
            kind=OutputKind.NUMBERS,
            passed=passed,
            numbers={
                "nominal": nominal_value,
                "derived": derived,
                "relative_deviation": deviation,
            },
            messages=[] if passed else [
                f"calibration constant of {subsystem} moved by {deviation:.2%}"
            ],
        )

    return execute


def database_access_executor(
    experiment: str,
) -> Callable[[ExecutionContext], TestOutput]:
    """Yes/no check that the conditions database can be reached."""

    def execute(context: ExecutionContext) -> TestOutput:
        available = context.configuration.has_external("MySQL")
        return TestOutput(
            kind=OutputKind.YES_NO,
            passed=available,
            yes_no=available,
            messages=[] if available else [
                f"{experiment} conditions database client found no MySQL installation"
            ],
        )

    return execute


def kinematics_consistency_executor(
    experiment: str, process: str, n_events: int = 60
) -> Callable[[ExecutionContext], TestOutput]:
    """Compare the electron and Jacquet–Blondel kinematic reconstructions."""

    def execute(context: ExecutionContext) -> TestOutput:
        generator = MonteCarloGenerator(
            GeneratorSettings(process=process), context.numeric_context
        )
        record = generator.generate(n_events, seed=context.seed)
        simulation = DetectorSimulation(
            detector_for_experiment(experiment), context.numeric_context
        )
        simulated = simulation.simulate(record, seed=context.seed + 1)
        reconstruction = EventReconstruction(context.numeric_context)
        reconstructed = reconstruction.reconstruct(simulated)
        with_lepton = [
            event for event in reconstructed if event.kinematics.has_scattered_lepton
        ]
        consistent = [event for event in with_lepton if event.kinematics.consistent()]
        fraction = len(consistent) / len(with_lepton) if with_lepton else 0.0
        passed = fraction >= 0.25 and bool(with_lepton)
        return TestOutput(
            kind=OutputKind.NUMBERS,
            passed=passed,
            numbers={
                "n_events": float(len(reconstructed)),
                "n_with_lepton": float(len(with_lepton)),
                "consistency_fraction": fraction,
            },
            messages=[] if passed else [
                "electron and hadron (Jacquet-Blondel) kinematics disagree"
            ],
        )

    return execute


def control_histogram_executor(
    experiment: str, process: str, variable: str = "q2", n_events: int = 80
) -> Callable[[ExecutionContext], TestOutput]:
    """Produce a control histogram of one variable for regression comparison."""

    def execute(context: ExecutionContext) -> TestOutput:
        generator = MonteCarloGenerator(
            GeneratorSettings(process=process), context.numeric_context
        )
        record = generator.generate(n_events, seed=context.seed)
        histograms = HistogramSet()
        if variable == "q2":
            histogram = Histogram1D("q2", 30, 4.0, 10000.0, log_bins=True)
            histogram.fill_many([event.q_squared for event in record])
        elif variable == "multiplicity":
            histogram = Histogram1D("multiplicity", 30, 0.0, 60.0)
            histogram.fill_many([len(event.particles) for event in record])
        else:
            histogram = Histogram1D("x", 30, 1e-5, 1.0, log_bins=True)
            histogram.fill_many([event.bjorken_x for event in record])
        histograms.add(histogram)
        passed = histogram.total > 0
        return TestOutput(
            kind=OutputKind.HISTOGRAMS,
            passed=passed,
            histograms=histograms,
            messages=[] if passed else ["control histogram is empty"],
        )

    return execute


def root_io_executor(package_name: str) -> Callable[[ExecutionContext], TestOutput]:
    """Write-and-read-back check of the ROOT based I/O layer."""

    def execute(context: ExecutionContext) -> TestOutput:
        root = context.configuration.external("ROOT")
        if root is None:
            return TestOutput(
                kind=OutputKind.YES_NO,
                passed=False,
                yes_no=False,
                messages=["ROOT is not installed on this configuration"],
            )
        written = 1000.0
        read_back = context.numeric_context.perturb_scalar(
            written, f"rootio:{package_name}:{root.version}"
        )
        passed = math.isclose(written, read_back, rel_tol=1e-6)
        return TestOutput(
            kind=OutputKind.FILE_SUMMARY,
            passed=passed,
            file_summary={
                "objects_written": written,
                "objects_read": read_back,
                "root_api_level": float(root.api_level),
            },
            messages=[] if passed else [
                f"{package_name}: ROOT file read back {read_back:.1f} of {written:.0f} objects"
            ],
        )

    return execute


def data_export_executor(
    experiment: str, n_events: int = 50
) -> Callable[[ExecutionContext], TestOutput]:
    """Level-2 style export of a simplified data format (outreach use case)."""

    def execute(context: ExecutionContext) -> TestOutput:
        generator = MonteCarloGenerator(numeric_context=context.numeric_context)
        record = generator.generate(n_events, seed=context.seed + 7)
        summary = record.summary()
        passed = summary["n_events"] == float(n_events)
        return TestOutput(
            kind=OutputKind.FILE_SUMMARY,
            passed=passed,
            file_summary=summary,
            messages=[] if passed else ["simplified-format export lost events"],
        )

    return execute


__all__ = [
    "smoke_test_executor",
    "calibration_constants_executor",
    "database_access_executor",
    "kinematics_consistency_executor",
    "control_histogram_executor",
    "root_io_executor",
    "data_export_executor",
]
