"""The ZEUS experiment: a level-4 programme with a more compact test suite.

ZEUS appears in figure 3 of the paper (orange, top block) with its own set of
processes validated under the different sp-system configurations.  The
synthetic definition mirrors the H1 structure — per-package compilations,
standalone tests and full analysis chains — at a somewhat smaller scale.
"""

from __future__ import annotations

from typing import List, Optional

from repro.buildsys.package import PackageCategory
from repro.core.levels import PreservationLevel
from repro.core.testspec import ExperimentDefinition, TestKind, ValidationTestSpec
from repro.environment.compatibility import ExternalRequirement, SoftwareRequirements
from repro.experiments import executors
from repro.experiments.chains import FULL_CHAIN_STEPS, build_analysis_chain
from repro.experiments.inventories import (
    InventoryQuirks,
    build_inventory,
    shared_external_packages,
)
from repro.hepdata.generator import GeneratorSettings, default_processes


#: The processes ZEUS validates in the reproduction.
ZEUS_PROCESSES = ("nc_dis", "photoproduction", "heavy_flavour")


def build_zeus_experiment(
    n_packages: int = 60,
    events_per_chain: int = 150,
    events_per_test: int = 50,
    regression_tests_per_package: int = 2,
    quirks: Optional[InventoryQuirks] = None,
    scale: float = 1.0,
    shared_externals: bool = False,
) -> ExperimentDefinition:
    """Build the synthetic ZEUS experiment definition (level 4, ~200 tests).

    With *shared_externals*, the inventory also carries the HERA-wide
    external products whose builds the content-addressed cache shares
    across experiments.
    """
    scale = max(min(scale, 1.0), 0.01)
    n_packages = max(int(round(n_packages * scale)), 8)
    events_per_chain = max(int(round(events_per_chain * scale)), 10)
    events_per_test = max(int(round(events_per_test * scale)), 10)
    regression_tests_per_package = max(
        int(round(regression_tests_per_package * scale)), 0 if scale < 1.0 else 1
    )

    inventory = build_inventory(
        "ZEUS",
        n_packages,
        quirks or InventoryQuirks(n_not_ported_to_newest_abi=1, n_legacy_root_api=2),
    )
    if shared_externals:
        for package in shared_external_packages("ZEUS"):
            inventory.add(package)
    standalone: List[ValidationTestSpec] = []
    generator_settings = {
        settings.process: settings for settings in default_processes()
    }

    for package in inventory.all():
        standalone.append(
            ValidationTestSpec(
                name=f"smoke-{package.name}",
                experiment="ZEUS",
                kind=TestKind.STANDALONE,
                executor=executors.smoke_test_executor(package.name),
                description=f"start-up check of the {package.name} executable",
                process="infrastructure",
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    for package in inventory.by_category(PackageCategory.ANALYSIS):
        standalone.append(
            ValidationTestSpec(
                name=f"rootio-{package.name}",
                experiment="ZEUS",
                kind=TestKind.STANDALONE,
                executor=executors.root_io_executor(package.name),
                description=f"ROOT file write/read round trip of {package.name}",
                process="infrastructure",
                requirements=SoftwareRequirements(
                    externals=(
                        ExternalRequirement(
                            product="ROOT",
                            min_api_level=1,
                            used_apis=frozenset({"TFile", "TTree"}),
                        ),
                    )
                ),
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    for index, package in enumerate(inventory.by_category(PackageCategory.CALIBRATION)):
        standalone.append(
            ValidationTestSpec(
                name=f"calibration-{package.name}",
                experiment="ZEUS",
                kind=TestKind.STANDALONE,
                executor=executors.calibration_constants_executor(
                    subsystem=package.name, nominal_value=2.0 + 0.02 * index
                ),
                description=f"re-derive calibration constants with {package.name}",
                process="calibration",
                required_packages=(package.name,),
                capability="reconstruction",
            )
        )

    for package in inventory.by_category(PackageCategory.DATABASE):
        standalone.append(
            ValidationTestSpec(
                name=f"database-{package.name}",
                experiment="ZEUS",
                kind=TestKind.STANDALONE,
                executor=executors.database_access_executor("ZEUS"),
                description=f"conditions database access through {package.name}",
                process="infrastructure",
                requirements=SoftwareRequirements(
                    externals=(ExternalRequirement(product="MySQL", min_api_level=1),)
                ),
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    for process in ZEUS_PROCESSES:
        standalone.append(
            ValidationTestSpec(
                name=f"kinematics-{process}",
                experiment="ZEUS",
                kind=TestKind.STANDALONE,
                executor=executors.kinematics_consistency_executor(
                    "ZEUS", process, n_events=events_per_test
                ),
                description=f"electron vs Jacquet-Blondel kinematics for {process}",
                process=process,
                capability="reconstruction",
            )
        )

    standalone.append(
        ValidationTestSpec(
            name="data-export-simplified",
            experiment="ZEUS",
            kind=TestKind.STANDALONE,
            executor=executors.data_export_executor("ZEUS", n_events=events_per_test),
            description="export of the simplified outreach data format",
            process="outreach",
            capability="data-export",
        )
    )

    regression_targets = (
        inventory.by_category(PackageCategory.ANALYSIS)
        + inventory.by_category(PackageCategory.RECONSTRUCTION)
    )
    variables = ("q2", "multiplicity")
    for package in regression_targets:
        for variable_index in range(regression_tests_per_package):
            variable = variables[variable_index % len(variables)]
            process = ZEUS_PROCESSES[variable_index % len(ZEUS_PROCESSES)]
            standalone.append(
                ValidationTestSpec(
                    name=f"regression-{package.name}-{variable}-{variable_index}",
                    experiment="ZEUS",
                    kind=TestKind.STANDALONE,
                    executor=executors.control_histogram_executor(
                        "ZEUS", process, variable, n_events=events_per_test
                    ),
                    description=(
                        f"control distribution of {variable} produced with {package.name}"
                    ),
                    process=process,
                    required_packages=(package.name,),
                    capability="analysis",
                )
            )

    chains = [
        build_analysis_chain(
            experiment="ZEUS",
            process=process,
            generator_settings=generator_settings[process],
            n_events=events_per_chain,
            chain_name=f"zeus-{process.replace('_', '-')}-chain",
            steps=FULL_CHAIN_STEPS,
        )
        for process in ZEUS_PROCESSES
    ]

    return ExperimentDefinition(
        name="ZEUS",
        full_name="ZEUS experiment at HERA",
        preservation_level=PreservationLevel.FULL_SOFTWARE,
        inventory=inventory,
        standalone_tests=standalone,
        chains=chains,
        display_colour="orange",
    )


__all__ = ["build_zeus_experiment", "ZEUS_PROCESSES"]
