"""Synthetic package inventories for the HERA experiments.

The sp-system compiles the experiments' software packages on every validation
run; H1 alone has on the order of one hundred packages.  The real package
lists are internal to the collaborations, so this module generates synthetic
inventories with the properties the validation framework actually exercises:
realistic category mix, a layered dependency graph (core → database →
simulation/reconstruction → analysis), and a small, controlled number of
packages that carry migration problems (32-bit assumptions, not yet ported to
the newest OS ABI, legacy ROOT interfaces, intolerance of stricter
compilers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro._common import stable_hash
from repro.buildsys.package import (
    Language,
    PackageCategory,
    PackageInventory,
    SoftwarePackage,
)
from repro.environment.compatibility import ExternalRequirement, SoftwareRequirements


@dataclass(frozen=True)
class InventoryQuirks:
    """How many packages carry each kind of migration problem.

    The defaults keep the standard five sp-system configurations mostly green
    (the paper's figure 3 shows predominantly successful tests) while leaving
    known work for the newest platforms:

    * ``n_not_ported_to_newest_abi`` packages fail on OS releases newer than
      SL5/SL6 (max_os_abi limited) — the SL6/SL7 migration work;
    * ``n_legacy_root_api`` packages use interfaces removed in ROOT 6;
    * ``n_strictness_limited`` packages break under the next compiler
      generation (gcc 4.8);
    * ``n_32bit_only`` packages have never been ported to 64 bit.
    """

    n_not_ported_to_newest_abi: int = 2
    n_legacy_root_api: int = 3
    n_strictness_limited: int = 2
    n_32bit_only: int = 0
    max_abi_for_unported: int = 2


#: Subsystem name fragments per category, used to generate package names.
_CATEGORY_NAMES: Dict[PackageCategory, Tuple[str, ...]] = {
    PackageCategory.CORE: ("bank", "steering", "geometry", "kernel", "records", "pointers"),
    PackageCategory.DATABASE: ("dbio", "conditions", "runcatalog", "keytable"),
    PackageCategory.SIMULATION: ("simrec", "geant-interface", "fastsim", "digitiser", "mcprod"),
    PackageCategory.RECONSTRUCTION: (
        "tracking", "calorimeter", "vertexing", "muon-id", "electron-id", "jetfinder",
        "trigger-emulation",
    ),
    PackageCategory.CALIBRATION: ("calib-tracker", "calib-calo", "alignment", "dead-material"),
    PackageCategory.ANALYSIS: (
        "physics-utils", "ntuple-maker", "selection", "unfolding", "cross-section",
        "systematics", "luminosity",
    ),
    PackageCategory.UTILITIES: ("tape-io", "histogramming", "random-service", "bookkeeping"),
    PackageCategory.MONITORING: ("dqm", "event-display", "logbook"),
}

#: Fraction of the inventory assigned to each category.
_CATEGORY_WEIGHTS: Tuple[Tuple[PackageCategory, float], ...] = (
    (PackageCategory.CORE, 0.12),
    (PackageCategory.DATABASE, 0.06),
    (PackageCategory.SIMULATION, 0.14),
    (PackageCategory.RECONSTRUCTION, 0.22),
    (PackageCategory.CALIBRATION, 0.10),
    (PackageCategory.ANALYSIS, 0.22),
    (PackageCategory.UTILITIES, 0.08),
    (PackageCategory.MONITORING, 0.06),
)


def build_inventory(
    experiment: str,
    n_packages: int,
    quirks: Optional[InventoryQuirks] = None,
    prefix: Optional[str] = None,
) -> PackageInventory:
    """Build a synthetic package inventory of *n_packages* for *experiment*."""
    quirks = quirks or InventoryQuirks()
    prefix = prefix or experiment.lower()
    inventory = PackageInventory(experiment)
    counts = _category_counts(n_packages)
    packages: List[SoftwarePackage] = []
    per_category_names: Dict[PackageCategory, List[str]] = {}

    for category, count in counts.items():
        names = []
        base_names = _CATEGORY_NAMES[category]
        for index in range(count):
            base = base_names[index % len(base_names)]
            suffix = "" if index < len(base_names) else f"-{index // len(base_names) + 1}"
            names.append(f"{prefix}-{base}{suffix}")
        per_category_names[category] = names

    core_names = per_category_names.get(PackageCategory.CORE, [])
    database_names = per_category_names.get(PackageCategory.DATABASE, [])
    reco_names = per_category_names.get(PackageCategory.RECONSTRUCTION, [])
    sim_names = per_category_names.get(PackageCategory.SIMULATION, [])

    for category, names in per_category_names.items():
        for index, name in enumerate(names):
            dependencies = _dependencies_for(
                category, index, core_names, database_names, sim_names, reco_names
            )
            language = _language_for(experiment, category, name)
            lines = 2000 + (stable_hash(experiment, name, "loc") % 40000)
            fragility = 0.05 + (stable_hash(experiment, name, "fragility") % 30) / 100.0
            packages.append(
                SoftwarePackage(
                    name=name,
                    version=f"{1 + stable_hash(name) % 5}.{stable_hash(name, 'minor') % 10}",
                    experiment=experiment,
                    category=category,
                    language=language,
                    lines_of_code=lines,
                    dependencies=tuple(dependencies),
                    requirements=_baseline_requirements(category),
                    fragility=min(fragility, 0.6),
                    description=f"{category.value} package {name} of {experiment}",
                )
            )

    packages = _apply_quirks(packages, quirks)
    for package in packages:
        inventory.add(package)
    return inventory


#: The shared external products the HERA collaborations all pin: compiler
#: support libraries, ROOT-like analysis toolkits, OS-level libraries.  Their
#: content is experiment-independent by construction (name, version, language
#: and size derive from the product alone), so the content-addressed build
#: cache recognises two experiments' replicas as one build.
_SHARED_EXTERNAL_SPECS: Tuple[Tuple[str, str, Language], ...] = (
    ("ext-cernlib", "2006.b", Language.FORTRAN),
    ("ext-root-toolkit", "5.34", Language.CPP),
    ("ext-mysql-client", "5.0.96", Language.C),
    ("ext-geant-runtime", "3.21", Language.FORTRAN),
)


def shared_external_packages(experiment: str) -> List[SoftwarePackage]:
    """Replicas of the shared external-package set, owned by *experiment*.

    Every experiment keeps its own replica (the inventory model requires the
    owning-experiment attribute to match), but everything that determines the
    build — name, version, sources, requirements — is byte-identical across
    experiments, so their :attr:`~repro.buildsys.package.SoftwarePackage.key`
    and content identity digests coincide and campaigns over several
    experiments compile each external exactly once.
    """
    packages = []
    for name, version, language in _SHARED_EXTERNAL_SPECS:
        packages.append(
            SoftwarePackage(
                name=name,
                version=version,
                experiment=experiment,
                category=PackageCategory.UTILITIES,
                language=language,
                lines_of_code=3000 + stable_hash("shared-external", name, "loc") % 20000,
                dependencies=(),
                requirements=_baseline_requirements(PackageCategory.UTILITIES),
                fragility=0.05,
                description=f"shared external product {name} {version}",
            )
        )
    return packages


def _category_counts(n_packages: int) -> Dict[PackageCategory, int]:
    """Split *n_packages* over the categories according to the weights."""
    counts: Dict[PackageCategory, int] = {}
    assigned = 0
    for category, weight in _CATEGORY_WEIGHTS[:-1]:
        count = max(1, int(round(n_packages * weight)))
        counts[category] = count
        assigned += count
    last_category = _CATEGORY_WEIGHTS[-1][0]
    counts[last_category] = max(1, n_packages - assigned)
    # Trim any overshoot from the largest categories so the total is exact.
    total = sum(counts.values())
    ordered = sorted(counts, key=lambda cat: counts[cat], reverse=True)
    index = 0
    while total > n_packages and index < 1000:
        category = ordered[index % len(ordered)]
        if counts[category] > 1:
            counts[category] -= 1
            total -= 1
        index += 1
    return counts


def _dependencies_for(
    category: PackageCategory,
    index: int,
    core_names: Sequence[str],
    database_names: Sequence[str],
    sim_names: Sequence[str],
    reco_names: Sequence[str],
) -> List[str]:
    """Layered dependency structure: everything builds on the core layer."""
    dependencies: List[str] = []
    if category is PackageCategory.CORE:
        if index > 0 and core_names:
            dependencies.append(core_names[0])
        return dependencies
    if core_names:
        dependencies.append(core_names[index % len(core_names)])
    if category in (PackageCategory.SIMULATION, PackageCategory.RECONSTRUCTION,
                    PackageCategory.CALIBRATION) and database_names:
        dependencies.append(database_names[index % len(database_names)])
    if category is PackageCategory.ANALYSIS and reco_names:
        dependencies.append(reco_names[index % len(reco_names)])
    if category is PackageCategory.MONITORING and reco_names:
        dependencies.append(reco_names[index % len(reco_names)])
    if category is PackageCategory.CALIBRATION and reco_names:
        dependencies.append(reco_names[index % len(reco_names)])
    return list(dict.fromkeys(dependencies))


def _language_for(experiment: str, category: PackageCategory, name: str) -> Language:
    """HERA-era software: mostly Fortran, analysis layers increasingly C++."""
    if category in (PackageCategory.ANALYSIS, PackageCategory.MONITORING):
        return Language.CPP if stable_hash(experiment, name, "lang") % 3 else Language.PYTHON
    if category is PackageCategory.UTILITIES:
        return Language.C
    return Language.FORTRAN if stable_hash(experiment, name, "lang") % 4 else Language.CPP


def _baseline_requirements(category: PackageCategory) -> SoftwareRequirements:
    """Requirements shared by healthy, already-ported packages."""
    externals: List[ExternalRequirement] = []
    if category in (PackageCategory.ANALYSIS, PackageCategory.MONITORING):
        externals.append(
            ExternalRequirement(product="ROOT", min_api_level=1, used_apis=frozenset({"TTree", "TH1"}))
        )
    if category is PackageCategory.DATABASE:
        externals.append(ExternalRequirement(product="MySQL", min_api_level=1))
    if category is PackageCategory.SIMULATION:
        externals.append(ExternalRequirement(product="GEANT3", min_api_level=1))
        externals.append(ExternalRequirement(product="MCGEN", min_api_level=1))
    if category in (PackageCategory.RECONSTRUCTION, PackageCategory.CALIBRATION):
        externals.append(ExternalRequirement(product="CERNLIB", min_api_level=1))
    return SoftwareRequirements(
        min_compiler="3.4",
        max_strictness=6,
        word_sizes=(32, 64),
        externals=tuple(externals),
    )


def _apply_quirks(
    packages: List[SoftwarePackage], quirks: InventoryQuirks
) -> List[SoftwarePackage]:
    """Inject the configured number of migration problems into the inventory.

    Quirky packages are chosen deterministically from the analysis and
    monitoring layers (leaf packages), so that a failing quirky package does
    not cascade into skipping most of the inventory.
    """
    result = list(packages)
    leaf_indices = [
        index for index, package in enumerate(result)
        if package.category in (PackageCategory.ANALYSIS, PackageCategory.MONITORING,
                                PackageCategory.UTILITIES)
    ]
    cursor = 0

    def take() -> Optional[int]:
        nonlocal cursor
        if cursor >= len(leaf_indices):
            return None
        index = leaf_indices[cursor]
        cursor += 1
        return index

    for _ in range(quirks.n_not_ported_to_newest_abi):
        index = take()
        if index is None:
            break
        package = result[index]
        requirements = SoftwareRequirements(
            min_compiler=package.requirements.min_compiler,
            max_strictness=package.requirements.max_strictness,
            word_sizes=package.requirements.word_sizes,
            max_os_abi=quirks.max_abi_for_unported,
            externals=package.requirements.externals,
        )
        result[index] = package.with_requirements(requirements)

    for _ in range(quirks.n_legacy_root_api):
        index = take()
        if index is None:
            break
        package = result[index]
        externals = tuple(
            requirement for requirement in package.requirements.externals
            if requirement.product != "ROOT"
        ) + (
            ExternalRequirement(
                product="ROOT",
                min_api_level=1,
                used_apis=frozenset({"TTree", "TH1", "CINT", "RootCintDictionary"}),
            ),
        )
        requirements = SoftwareRequirements(
            min_compiler=package.requirements.min_compiler,
            max_strictness=package.requirements.max_strictness,
            word_sizes=package.requirements.word_sizes,
            max_os_abi=package.requirements.max_os_abi,
            externals=externals,
        )
        result[index] = package.with_requirements(requirements)

    for _ in range(quirks.n_strictness_limited):
        index = take()
        if index is None:
            break
        package = result[index]
        requirements = SoftwareRequirements(
            min_compiler=package.requirements.min_compiler,
            max_strictness=3,
            word_sizes=package.requirements.word_sizes,
            max_os_abi=package.requirements.max_os_abi,
            externals=package.requirements.externals,
        )
        result[index] = package.with_requirements(requirements)

    for _ in range(quirks.n_32bit_only):
        index = take()
        if index is None:
            break
        package = result[index]
        requirements = SoftwareRequirements(
            min_compiler=package.requirements.min_compiler,
            max_strictness=package.requirements.max_strictness,
            word_sizes=(32,),
            max_os_abi=package.requirements.max_os_abi,
            externals=package.requirements.externals,
        )
        result[index] = package.with_requirements(requirements)

    return result


__all__ = ["InventoryQuirks", "build_inventory", "shared_external_packages"]
