"""Declarative experiment definitions.

"By design the sp-system is expandable and able to host and validate the
requirements of multiple experiments."  New experiments join the framework by
supplying a *recipe* of their software and tests.  This module lets such a
recipe be written as a plain dictionary (JSON/YAML friendly) and turned into a
full :class:`~repro.core.testspec.ExperimentDefinition`, and conversely lets
an existing definition be summarised back into a specification document that
can be stored on the common storage.

Specification format (all sections optional unless noted)::

    {
        "name": "NEWEXP",                      # required
        "full_name": "A new experiment",
        "preservation_level": 4,               # 1-4, default 4
        "colour": "green",
        "packages": {"count": 40,              # synthetic inventory size
                      "quirks": {"not_ported_to_newest_abi": 1,
                                 "legacy_root_api": 1,
                                 "strictness_limited": 0,
                                 "only_32bit": 0}},
        "processes": ["nc_dis", "photoproduction"],
        "events_per_chain": 100,
        "events_per_test": 40,
        "standalone": {"smoke_tests": true,
                        "root_io_tests": true,
                        "database_tests": true,
                        "calibration_tests": true,
                        "kinematics_tests": true,
                        "data_export_test": true,
                        "regression_tests_per_package": 1}
    }
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro._common import ValidationError
from repro.buildsys.package import PackageCategory
from repro.core.levels import PreservationLevel, requires_full_chain
from repro.core.testspec import ExperimentDefinition, TestKind, ValidationTestSpec
from repro.environment.compatibility import ExternalRequirement, SoftwareRequirements
from repro.experiments import executors
from repro.experiments.chains import ANALYSIS_ONLY_STEPS, FULL_CHAIN_STEPS, build_analysis_chain
from repro.experiments.inventories import InventoryQuirks, build_inventory
from repro.hepdata.generator import GeneratorSettings, default_processes


#: Processes the declarative builder knows generator settings for.
_KNOWN_PROCESSES = {settings.process: settings for settings in default_processes()}


def experiment_from_spec(spec: Dict[str, object]) -> ExperimentDefinition:
    """Build an :class:`ExperimentDefinition` from a specification dictionary."""
    if "name" not in spec:
        raise ValidationError("experiment specification requires a 'name'")
    name = str(spec["name"])
    full_name = str(spec.get("full_name", name))
    level = PreservationLevel(int(spec.get("preservation_level", 4)))
    colour = str(spec.get("colour", "grey"))

    packages_spec = dict(spec.get("packages", {}))
    quirks_spec = dict(packages_spec.get("quirks", {}))
    quirks = InventoryQuirks(
        n_not_ported_to_newest_abi=int(quirks_spec.get("not_ported_to_newest_abi", 0)),
        n_legacy_root_api=int(quirks_spec.get("legacy_root_api", 0)),
        n_strictness_limited=int(quirks_spec.get("strictness_limited", 0)),
        n_32bit_only=int(quirks_spec.get("only_32bit", 0)),
    )
    n_packages = int(packages_spec.get("count", 30))
    if n_packages < 4:
        raise ValidationError("an experiment needs at least 4 packages")
    inventory = build_inventory(name, n_packages, quirks)

    processes = list(spec.get("processes", ["nc_dis"]))
    unknown = [process for process in processes if process not in _KNOWN_PROCESSES]
    if unknown:
        raise ValidationError(
            f"unknown processes {unknown}; known: {sorted(_KNOWN_PROCESSES)}"
        )
    events_per_chain = int(spec.get("events_per_chain", 100))
    events_per_test = int(spec.get("events_per_test", 40))
    if events_per_chain <= 0 or events_per_test <= 0:
        raise ValidationError("event counts must be positive")

    standalone_spec = dict(spec.get("standalone", {}))
    standalone = _build_standalone_tests(
        name, inventory, processes, events_per_test, standalone_spec
    )

    steps = FULL_CHAIN_STEPS if requires_full_chain(level) else ANALYSIS_ONLY_STEPS
    chains = [
        build_analysis_chain(
            experiment=name,
            process=process,
            generator_settings=_KNOWN_PROCESSES[process],
            n_events=events_per_chain,
            chain_name=f"{name.lower()}-{process.replace('_', '-')}-chain",
            steps=steps,
        )
        for process in processes
    ]

    return ExperimentDefinition(
        name=name,
        full_name=full_name,
        preservation_level=level,
        inventory=inventory,
        standalone_tests=standalone,
        chains=chains,
        display_colour=colour,
    )


def _build_standalone_tests(
    name: str,
    inventory,
    processes: List[str],
    events_per_test: int,
    options: Dict[str, object],
) -> List[ValidationTestSpec]:
    """Assemble the standalone test list according to the spec options."""
    tests: List[ValidationTestSpec] = []

    if options.get("smoke_tests", True):
        for package in inventory.all():
            tests.append(
                ValidationTestSpec(
                    name=f"smoke-{package.name}",
                    experiment=name,
                    kind=TestKind.STANDALONE,
                    executor=executors.smoke_test_executor(package.name),
                    description=f"start-up check of {package.name}",
                    process="infrastructure",
                    required_packages=(package.name,),
                )
            )
    if options.get("root_io_tests", True):
        for package in inventory.by_category(PackageCategory.ANALYSIS):
            tests.append(
                ValidationTestSpec(
                    name=f"rootio-{package.name}",
                    experiment=name,
                    kind=TestKind.STANDALONE,
                    executor=executors.root_io_executor(package.name),
                    description=f"ROOT I/O round trip of {package.name}",
                    process="infrastructure",
                    requirements=SoftwareRequirements(
                        externals=(
                            ExternalRequirement(
                                product="ROOT", min_api_level=1,
                                used_apis=frozenset({"TFile", "TTree"}),
                            ),
                        )
                    ),
                    required_packages=(package.name,),
                )
            )
    if options.get("database_tests", True):
        for package in inventory.by_category(PackageCategory.DATABASE):
            tests.append(
                ValidationTestSpec(
                    name=f"database-{package.name}",
                    experiment=name,
                    kind=TestKind.STANDALONE,
                    executor=executors.database_access_executor(name),
                    description=f"conditions database access through {package.name}",
                    process="infrastructure",
                    requirements=SoftwareRequirements(
                        externals=(ExternalRequirement(product="MySQL", min_api_level=1),)
                    ),
                    required_packages=(package.name,),
                )
            )
    if options.get("calibration_tests", True):
        for index, package in enumerate(inventory.by_category(PackageCategory.CALIBRATION)):
            tests.append(
                ValidationTestSpec(
                    name=f"calibration-{package.name}",
                    experiment=name,
                    kind=TestKind.STANDALONE,
                    executor=executors.calibration_constants_executor(
                        package.name, nominal_value=1.0 + 0.01 * index
                    ),
                    description=f"calibration constants of {package.name}",
                    process="calibration",
                    required_packages=(package.name,),
                    capability="reconstruction",
                )
            )
    if options.get("kinematics_tests", True):
        for process in processes:
            tests.append(
                ValidationTestSpec(
                    name=f"kinematics-{process}",
                    experiment=name,
                    kind=TestKind.STANDALONE,
                    executor=executors.kinematics_consistency_executor(
                        name, process, n_events=events_per_test
                    ),
                    description=f"kinematic consistency for {process}",
                    process=process,
                    capability="reconstruction",
                )
            )
    if options.get("data_export_test", True):
        tests.append(
            ValidationTestSpec(
                name="data-export-simplified",
                experiment=name,
                kind=TestKind.STANDALONE,
                executor=executors.data_export_executor(name, n_events=events_per_test),
                description="simplified outreach format export",
                process="outreach",
                capability="data-export",
            )
        )
    regression_per_package = int(options.get("regression_tests_per_package", 0))
    if regression_per_package > 0:
        variables = ("q2", "x", "multiplicity")
        targets = (
            inventory.by_category(PackageCategory.ANALYSIS)
            + inventory.by_category(PackageCategory.RECONSTRUCTION)
        )
        for package in targets:
            for index in range(regression_per_package):
                variable = variables[index % len(variables)]
                process = processes[index % len(processes)]
                tests.append(
                    ValidationTestSpec(
                        name=f"regression-{package.name}-{variable}-{index}",
                        experiment=name,
                        kind=TestKind.STANDALONE,
                        executor=executors.control_histogram_executor(
                            name, process, variable, n_events=events_per_test
                        ),
                        description=f"control distribution of {variable} ({package.name})",
                        process=process,
                        required_packages=(package.name,),
                    )
                )
    return tests


def spec_from_experiment(experiment: ExperimentDefinition) -> Dict[str, object]:
    """Summarise an experiment definition back into a specification document.

    The summary is content-level (counts and structure), suitable for storing
    on the common storage so that the framework can display what each hosted
    experiment has registered.
    """
    return {
        "name": experiment.name,
        "full_name": experiment.full_name,
        "preservation_level": int(experiment.preservation_level),
        "colour": experiment.display_colour,
        "packages": {"count": len(experiment.inventory)},
        "processes": [
            process for process in experiment.processes()
            if process in _KNOWN_PROCESSES
        ],
        "test_counts": {
            "compilation": experiment.compilation_test_count(),
            "standalone": len(experiment.standalone_tests),
            "chain_steps": experiment.chain_test_count(),
            "total": experiment.total_test_count(),
        },
        "chains": {chain.name: chain.step_names() for chain in experiment.chains},
    }


__all__ = ["experiment_from_spec", "spec_from_experiment"]
