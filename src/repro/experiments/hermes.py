"""The HERMES experiment: a level-3 programme (analysis-level preservation).

HERMES appears in figure 3 (red, bottom block) with the smallest set of
validated processes.  In the reproduction HERMES adopts DPHEP level 3:
analysis-level software and data formats are preserved on top of the existing
reconstruction, so its chains omit the detector-simulation and DST steps and
its suite is considerably smaller than the H1 one — which is exactly the
relationship the counts in the paper's figures suggest.
"""

from __future__ import annotations

from typing import List, Optional

from repro.buildsys.package import PackageCategory
from repro.core.levels import PreservationLevel
from repro.core.testspec import ExperimentDefinition, TestKind, ValidationTestSpec
from repro.environment.compatibility import ExternalRequirement, SoftwareRequirements
from repro.experiments import executors
from repro.experiments.chains import ANALYSIS_ONLY_STEPS, build_analysis_chain
from repro.experiments.inventories import (
    InventoryQuirks,
    build_inventory,
    shared_external_packages,
)
from repro.hepdata.generator import GeneratorSettings


#: HERMES validates spin-physics style DIS processes; the toy generator
#: approximates them with low-Q2 neutral current samples.
HERMES_PROCESSES = ("nc_dis", "photoproduction")


def build_hermes_experiment(
    n_packages: int = 30,
    events_per_chain: int = 100,
    events_per_test: int = 40,
    quirks: Optional[InventoryQuirks] = None,
    scale: float = 1.0,
    shared_externals: bool = False,
) -> ExperimentDefinition:
    """Build the synthetic HERMES experiment definition (level 3, ~80 tests).

    With *shared_externals*, the inventory also carries the HERA-wide
    external products (:func:`~repro.experiments.inventories.shared_external_packages`)
    whose builds the content-addressed cache shares across experiments.
    """
    scale = max(min(scale, 1.0), 0.01)
    n_packages = max(int(round(n_packages * scale)), 8)
    events_per_chain = max(int(round(events_per_chain * scale)), 10)
    events_per_test = max(int(round(events_per_test * scale)), 10)

    inventory = build_inventory(
        "HERMES",
        n_packages,
        quirks
        or InventoryQuirks(
            n_not_ported_to_newest_abi=1, n_legacy_root_api=1, n_strictness_limited=1
        ),
    )
    if shared_externals:
        for package in shared_external_packages("HERMES"):
            inventory.add(package)
    standalone: List[ValidationTestSpec] = []

    for package in inventory.all():
        standalone.append(
            ValidationTestSpec(
                name=f"smoke-{package.name}",
                experiment="HERMES",
                kind=TestKind.STANDALONE,
                executor=executors.smoke_test_executor(package.name),
                description=f"start-up check of the {package.name} executable",
                process="infrastructure",
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    for package in inventory.by_category(PackageCategory.ANALYSIS):
        standalone.append(
            ValidationTestSpec(
                name=f"rootio-{package.name}",
                experiment="HERMES",
                kind=TestKind.STANDALONE,
                executor=executors.root_io_executor(package.name),
                description=f"ROOT file write/read round trip of {package.name}",
                process="infrastructure",
                requirements=SoftwareRequirements(
                    externals=(
                        ExternalRequirement(
                            product="ROOT",
                            min_api_level=1,
                            used_apis=frozenset({"TFile", "TTree"}),
                        ),
                    )
                ),
                required_packages=(package.name,),
                capability="analysis",
            )
        )

    for process in HERMES_PROCESSES:
        standalone.append(
            ValidationTestSpec(
                name=f"kinematics-{process}",
                experiment="HERMES",
                kind=TestKind.STANDALONE,
                executor=executors.kinematics_consistency_executor(
                    "HERMES", process, n_events=events_per_test
                ),
                description=f"electron vs Jacquet-Blondel kinematics for {process}",
                process=process,
                capability="reconstruction",
            )
        )

    standalone.append(
        ValidationTestSpec(
            name="data-export-simplified",
            experiment="HERMES",
            kind=TestKind.STANDALONE,
            executor=executors.data_export_executor("HERMES", n_events=events_per_test),
            description="export of the simplified outreach data format",
            process="outreach",
            capability="data-export",
        )
    )

    # Level 3: the chains are based on the existing reconstruction, so the
    # simulation and DST-production steps are not part of the programme.
    chains = [
        build_analysis_chain(
            experiment="HERMES",
            process=process,
            generator_settings=GeneratorSettings(
                process=process, q2_min=1.0 if process == "nc_dis" else 4.0, q2_max=100.0,
                mean_charged_multiplicity=6.0, cross_section_pb=52000.0,
            ),
            n_events=events_per_chain,
            chain_name=f"hermes-{process.replace('_', '-')}-chain",
            steps=ANALYSIS_ONLY_STEPS,
        )
        for process in HERMES_PROCESSES
    ]

    return ExperimentDefinition(
        name="HERMES",
        full_name="HERMES experiment at HERA",
        preservation_level=PreservationLevel.ANALYSIS_SOFTWARE,
        inventory=inventory,
        standalone_tests=standalone,
        chains=chains,
        display_colour="red",
    )


__all__ = ["build_hermes_experiment", "HERMES_PROCESSES"]
