"""Full analysis chains: from MC generation to the validated physics result.

Figure 2 of the paper describes the H1 validation tests as partly standalone
and partly "run sequentially [forming] discrete parts in one of several full
analysis chains: from MC generation and simulation, through multi-level file
production and ending with a full physics analysis and subsequent validation
of the results."  :func:`build_analysis_chain` constructs exactly such a
chain for one physics process: seven sequential steps that pass their
products to each other through the shared chain state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.testspec import (
    AnalysisChain,
    ExecutionContext,
    OutputKind,
    TestKind,
    TestOutput,
    ValidationTestSpec,
)
from repro.environment.compatibility import SoftwareRequirements
from repro.hepdata.analysis import PhysicsAnalysis, SelectionCuts
from repro.hepdata.dst import DSTProducer, MicroDSTProducer
from repro.hepdata.generator import GeneratorSettings, MonteCarloGenerator
from repro.hepdata.reconstruction import EventReconstruction
from repro.hepdata.simulation import DetectorSimulation, detector_for_experiment


#: Ordered step names of a full (level 4) analysis chain.
FULL_CHAIN_STEPS = (
    "mc-generation",
    "detector-simulation",
    "reconstruction",
    "dst-production",
    "microdst-production",
    "physics-analysis",
    "result-validation",
)

#: Steps needed for a level-3 (analysis software only) chain.
ANALYSIS_ONLY_STEPS = (
    "mc-generation",
    "reconstruction",
    "microdst-production",
    "physics-analysis",
    "result-validation",
)

#: Which preservation capability each step exercises.
STEP_CAPABILITY = {
    "mc-generation": "mc-generation",
    "detector-simulation": "simulation",
    "reconstruction": "reconstruction",
    "dst-production": "reconstruction",
    "microdst-production": "analysis",
    "physics-analysis": "analysis",
    "result-validation": "analysis",
}


def build_analysis_chain(
    experiment: str,
    process: str,
    generator_settings: GeneratorSettings,
    n_events: int = 200,
    chain_name: Optional[str] = None,
    steps: Tuple[str, ...] = FULL_CHAIN_STEPS,
    requirements: Optional[SoftwareRequirements] = None,
    required_packages: Tuple[str, ...] = (),
) -> AnalysisChain:
    """Build a sequential analysis chain for one physics process."""
    chain_name = chain_name or f"{process}-chain"
    requirements = requirements or SoftwareRequirements()
    chain = AnalysisChain(
        name=chain_name,
        experiment=experiment,
        description=(
            f"full analysis chain for the {process} process of {experiment}: "
            + " -> ".join(steps)
        ),
    )
    executors = _step_executors(experiment, process, generator_settings, n_events)
    for index, step_name in enumerate(steps):
        spec = ValidationTestSpec(
            name=f"{chain_name}-{index:02d}-{step_name}",
            experiment=experiment,
            kind=TestKind.CHAIN_STEP,
            executor=executors[step_name],
            description=f"{step_name} step of the {process} chain",
            process=process,
            requirements=requirements,
            required_packages=required_packages,
            chain=chain_name,
            chain_index=index,
            capability=STEP_CAPABILITY[step_name],
        )
        chain.add_step(spec)
    return chain


def _step_executors(
    experiment: str,
    process: str,
    generator_settings: GeneratorSettings,
    n_events: int,
) -> Dict[str, Callable[[ExecutionContext], TestOutput]]:
    """Build the executor for every chain step."""

    def mc_generation(context: ExecutionContext) -> TestOutput:
        generator = MonteCarloGenerator(generator_settings, context.numeric_context)
        record = generator.generate(n_events, seed=context.seed)
        context.chain_state["generated"] = record
        summary = record.summary()
        passed = summary["n_events"] == float(n_events) and summary["mean_q2"] > 0
        return TestOutput(
            kind=OutputKind.NUMBERS,
            passed=passed,
            numbers=summary,
            messages=[] if passed else ["MC generation produced an inconsistent sample"],
        )

    def detector_simulation(context: ExecutionContext) -> TestOutput:
        record = context.chain_state.get("generated")
        if record is None:
            return _missing_input("detector-simulation", "generated")
        simulation = DetectorSimulation(
            detector_for_experiment(experiment), context.numeric_context
        )
        simulated = simulation.simulate(record, seed=context.seed + 1)
        context.chain_state["simulated"] = simulated
        summary = simulated.summary()
        # The detector must keep a reasonable fraction of the generated events.
        retention = summary["mean_multiplicity"] / max(record.summary()["mean_multiplicity"], 1e-9)
        passed = summary["n_events"] > 0 and retention > 0.3
        summary["multiplicity_retention"] = retention
        return TestOutput(
            kind=OutputKind.NUMBERS,
            passed=passed,
            numbers=summary,
            messages=[] if passed else ["detector simulation lost too many particles"],
        )

    def reconstruction(context: ExecutionContext) -> TestOutput:
        simulated = context.chain_state.get("simulated", context.chain_state.get("generated"))
        if simulated is None:
            return _missing_input("reconstruction", "simulated")
        reconstructor = EventReconstruction(context.numeric_context)
        reconstructed = reconstructor.reconstruct(simulated)
        context.chain_state["reconstructed"] = reconstructed
        with_lepton = [
            event for event in reconstructed if event.kinematics.has_scattered_lepton
        ]
        consistent = sum(1 for event in with_lepton if event.kinematics.consistent())
        fraction = consistent / len(with_lepton) if with_lepton else 0.0
        passed = bool(with_lepton) and fraction >= 0.25
        return TestOutput(
            kind=OutputKind.NUMBERS,
            passed=passed,
            numbers={
                "n_reconstructed": float(len(reconstructed)),
                "n_with_lepton": float(len(with_lepton)),
                "kinematic_consistency": fraction,
            },
            messages=[] if passed else ["kinematic reconstruction is internally inconsistent"],
        )

    def dst_production(context: ExecutionContext) -> TestOutput:
        reconstructed = context.chain_state.get("reconstructed")
        if reconstructed is None:
            return _missing_input("dst-production", "reconstructed")
        producer = DSTProducer(production_tag=f"{experiment}-{process}")
        dst = producer.produce(reconstructed)
        context.chain_state["dst"] = dst
        summary = dst.summary()
        passed = summary["n_records"] == float(len(reconstructed))
        return TestOutput(
            kind=OutputKind.FILE_SUMMARY,
            passed=passed,
            file_summary=summary,
            messages=[] if passed else ["DST production dropped events"],
        )

    def microdst_production(context: ExecutionContext) -> TestOutput:
        dst = context.chain_state.get("dst")
        if dst is None:
            # Level-3 chains skip the DST level and go straight from the
            # reconstruction output to the analysis ntuple.
            reconstructed = context.chain_state.get("reconstructed")
            if reconstructed is None:
                return _missing_input("microdst-production", "dst")
            dst = DSTProducer(production_tag=f"{experiment}-{process}").produce(reconstructed)
        micro = MicroDSTProducer().produce(dst)
        context.chain_state["microdst"] = micro
        passed = len(micro) == len(dst)
        return TestOutput(
            kind=OutputKind.FILE_SUMMARY,
            passed=passed,
            file_summary={
                "n_rows": float(len(micro)),
                "n_dst_records": float(len(dst)),
                "mean_q2": float(micro.column("q2").mean()) if len(micro) else 0.0,
            },
            messages=[] if passed else ["micro-DST production dropped rows"],
        )

    def physics_analysis(context: ExecutionContext) -> TestOutput:
        micro = context.chain_state.get("microdst")
        if micro is None:
            return _missing_input("physics-analysis", "microdst")
        # The selection and the measurement binning follow the kinematic range
        # of the generated process, so that even small validation samples leave
        # a non-empty selected sample and a measurable cross section.
        min_q2 = generator_settings.q2_min * 1.2
        max_q2 = generator_settings.q2_max
        n_bins = 6
        ratio = (max_q2 / min_q2) ** (1.0 / n_bins)
        q2_bins = tuple(min_q2 * ratio ** index for index in range(n_bins + 1))
        analysis = PhysicsAnalysis(
            process=process,
            cuts=SelectionCuts(min_q2=min_q2, max_q2=max_q2),
            q2_bins=q2_bins,
            numeric_context=context.numeric_context,
        )
        result = analysis.run(micro)
        context.chain_state["analysis_result"] = result
        passed = result.n_selected_events > 0
        return TestOutput(
            kind=OutputKind.HISTOGRAMS,
            passed=passed,
            histograms=result.histograms,
            messages=[] if passed else ["physics analysis selected no events"],
        )

    def result_validation(context: ExecutionContext) -> TestOutput:
        result = context.chain_state.get("analysis_result")
        if result is None:
            return _missing_input("result-validation", "analysis_result")
        summary = dict(result.summary)
        efficiency = summary.get("selection_efficiency", 0.0)
        total_xsec = summary.get("total_cross_section_pb", 0.0)
        messages = []
        if not 0.005 <= efficiency <= 1.0:
            messages.append(
                f"selection efficiency {efficiency:.3f} is outside the expected range"
            )
        if total_xsec <= 0.0:
            messages.append("measured total cross section is not positive")
        passed = not messages
        return TestOutput(
            kind=OutputKind.NUMBERS,
            passed=passed,
            numbers=summary,
            messages=messages,
        )

    return {
        "mc-generation": mc_generation,
        "detector-simulation": detector_simulation,
        "reconstruction": reconstruction,
        "dst-production": dst_production,
        "microdst-production": microdst_production,
        "physics-analysis": physics_analysis,
        "result-validation": result_validation,
    }


def _missing_input(step: str, expected_key: str) -> TestOutput:
    return TestOutput(
        kind=OutputKind.YES_NO,
        passed=False,
        yes_no=False,
        messages=[f"{step}: expected chain product {expected_key!r} is missing"],
    )


__all__ = [
    "FULL_CHAIN_STEPS",
    "ANALYSIS_ONLY_STEPS",
    "STEP_CAPABILITY",
    "build_analysis_chain",
]
