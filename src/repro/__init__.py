"""repro: a reproduction of the DESY/DPHEP sp-system validation framework.

The package implements the validation framework described in
"A Validation Framework for the Long Term Preservation of High Energy
Physics Data" (Ozerov and South, DESY), together with every substrate the
framework depends on: environment and external-software catalogues, a
simulated virtualization layer, an automated build system, the common
sp-system storage, a synthetic HEP analysis-chain substrate and the three
HERA experiment definitions (H1, ZEUS, HERMES).

Typical use::

    from repro import CampaignSpec, SPSystem
    from repro.experiments import build_h1_experiment

    system = SPSystem()
    system.provision_standard_images()
    system.register_experiment(build_h1_experiment(scale=0.2))
    result = system.validate("H1", "SL6_64bit_gcc4.4")
    print(result.summary())

    # Whole campaigns go through the unified execution API: a CampaignSpec
    # submitted to the system, dispatched on a pluggable backend.
    campaign = system.submit(CampaignSpec(workers=4)).result()
    print(campaign.render_text())
"""

from repro._common import ReproError
from repro.core.spsystem import CampaignHandle, SPSystem, ValidationCycleResult
from repro.history import ValidationHistoryLedger
from repro.scheduler import (
    CampaignResult,
    CampaignScheduler,
    CampaignSpec,
    ValidationRequest,
    WorkerFailure,
)

__version__ = "1.3.0"

__all__ = [
    "SPSystem",
    "ValidationCycleResult",
    "CampaignHandle",
    "CampaignResult",
    "CampaignScheduler",
    "CampaignSpec",
    "ValidationRequest",
    "ValidationHistoryLedger",
    "WorkerFailure",
    "ReproError",
    "__version__",
]
