"""Persistent intervention tickets: the ``interventions`` storage namespace.

:class:`~repro.core.intervention.InterventionTracker` is an in-memory
object; the :class:`InterventionStore` gives it a home in the common
storage so tickets opened by the regression-alerting plugin survive
restarts and travel with the persisted installation.  Documents live under
``ticket_<ticket-id>`` keys in the mirrored ``interventions`` namespace —
mirrored, because resolving a ticket rewrites its document in place.

This module (with :mod:`repro.core.intervention` itself) is the only
sanctioned construction site for trackers — the lifecycle-purity audit in
``scripts/ci.sh`` forbids ``InterventionTracker()`` elsewhere, so every
automated ticket flows through the plugin layer.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.intervention import (
    InterventionParty,
    InterventionTicket,
    InterventionTracker,
)
from repro.environment.compatibility import IssueCategory
from repro.history.regressions import RegressionFinding
from repro.storage.common_storage import CommonStorage, register_mirrored_namespace


def new_intervention_tracker() -> InterventionTracker:
    """A fresh in-memory tracker (diagnosis tickets, tests).

    The single sanctioned constructor call outside the core module: callers
    that only need transient tickets (``SPSystem.validate``'s diagnosis
    flow) get their tracker here instead of constructing one directly.
    """
    return InterventionTracker()


class InterventionStore:
    """An :class:`InterventionTracker` persisted to the common storage.

    Construction replays every persisted ticket document into a fresh
    tracker (advancing the ID counter past them), so stores over the same
    storage always agree and new tickets never collide with replayed ones.
    """

    NAMESPACE = register_mirrored_namespace("interventions")
    KEY_PREFIX = "ticket_"

    def __init__(self, storage: CommonStorage) -> None:
        self.storage = storage
        self._namespace = storage.create_namespace(self.NAMESPACE)
        self.tracker = new_intervention_tracker()
        for key in self._namespace.keys(prefix=self.KEY_PREFIX):
            self.tracker.adopt(
                InterventionTicket.from_dict(self._namespace.get(key))  # type: ignore[arg-type]
            )

    @classmethod
    def exists_in(cls, storage: CommonStorage) -> bool:
        """True when *storage* carries persisted tickets."""
        return cls.NAMESPACE in storage.namespaces() and bool(
            storage.keys(cls.NAMESPACE, prefix=cls.KEY_PREFIX)
        )

    # -- queries --------------------------------------------------------------
    def tickets(self) -> List[InterventionTicket]:
        """All tickets, oldest first."""
        return self.tracker.all()

    def open_tickets(
        self, party: Optional[InterventionParty] = None
    ) -> List[InterventionTicket]:
        """Open tickets, optionally restricted to one party."""
        return self.tracker.open_tickets(party)

    def ticket(self, ticket_id: str) -> InterventionTicket:
        """The ticket with the given ID (raises on unknown IDs)."""
        return self.tracker.ticket(ticket_id)

    def next_timestamp(self) -> int:
        """A logical timestamp one past every recorded ticket event.

        The CLI resolves tickets without a live system clock; advancing
        past the newest opened/resolved stamp keeps resolution times
        monotone and deterministic.
        """
        latest = 0
        for ticket in self.tracker.all():
            latest = max(latest, ticket.opened_at, ticket.resolved_at or 0)
        return latest + 1

    # -- mutations (each one persists the touched document) --------------------
    def open_from_finding(
        self,
        finding: RegressionFinding,
        timestamp: int,
        reopen_window: Optional[int] = None,
    ) -> Optional[InterventionTicket]:
        """Open a ticket for a regression finding, deduplicated per cell.

        One open ticket per (experiment, configuration) cell: a regression
        that persists across campaigns keeps its original ticket instead of
        flooding the tracker.  Returns ``None`` when the cell already has
        an open ticket.

        With *reopen_window* (seconds on the installation's logical clock),
        a cell whose newest ticket was *resolved* within the window
        **re-opens** that ticket on recurrence instead of opening a
        duplicate — the recurrence is evidence the fix did not hold, and
        the re-opened ticket keeps its identity (and its advancing
        ``reopen_count``) in the reports.  A resolution older than the
        window, a wont-fix closure, or ``reopen_window=None`` (the legacy
        behaviour) opens a fresh ticket.

        Party routing follows the paper's rule: a configuration-fingerprint
        flip is direct evidence the *environment* moved (an evolved
        external such as ROOT), so the ticket goes to the host IT
        department as an external-dependency issue; otherwise the
        experiment's own software is suspected and the experiment acts.
        """
        for ticket in self.tracker.open_tickets():
            if (
                ticket.experiment == finding.experiment
                and ticket.configuration_key == finding.configuration_key
            ):
                return None
        if reopen_window is not None:
            recurrence = self._reopenable_ticket(finding, timestamp, reopen_window)
            if recurrence is not None:
                recurrence.reopen(timestamp, description=finding.summary())
                self._persist(recurrence)
                return recurrence
        category = (
            IssueCategory.EXTERNAL_DEPENDENCY
            if finding.fingerprint_changed
            else IssueCategory.EXPERIMENT_SOFTWARE
        )
        party = (
            InterventionParty.EXPERIMENT
            if category is IssueCategory.EXPERIMENT_SOFTWARE
            else InterventionParty.HOST_IT
        )
        ticket = self.tracker.open_ticket(
            run_id=finding.first_bad.run_id if finding.first_bad else "unknown",
            experiment=finding.experiment,
            test_name="campaign-regression",
            category=category,
            party=party,
            opened_at=timestamp,
            description=finding.summary(),
            configuration_key=finding.configuration_key,
            suspected_change=(
                finding.suspected_event.label if finding.suspected_event else ""
            ),
        )
        self._persist(ticket)
        return ticket

    def _reopenable_ticket(
        self, finding: RegressionFinding, timestamp: int, reopen_window: int
    ) -> Optional[InterventionTicket]:
        """The cell's newest *resolved* ticket inside the reopen window."""
        candidate: Optional[InterventionTicket] = None
        for ticket in self.tracker.resolved_tickets():
            if (
                ticket.experiment != finding.experiment
                or ticket.configuration_key != finding.configuration_key
                or ticket.resolved_at is None
            ):
                continue
            if timestamp - ticket.resolved_at > reopen_window:
                continue
            if candidate is None or ticket.resolved_at > candidate.resolved_at:
                candidate = ticket
        return candidate

    def resolve(
        self,
        ticket_id: str,
        resolution: str,
        timestamp: Optional[int] = None,
        long_standing_bug: bool = False,
    ) -> InterventionTicket:
        """Resolve a ticket and persist the updated document."""
        ticket = self.tracker.ticket(ticket_id)
        ticket.resolve(
            resolution,
            self.next_timestamp() if timestamp is None else timestamp,
            long_standing_bug=long_standing_bug,
        )
        self._persist(ticket)
        return ticket

    def close_wont_fix(
        self, ticket_id: str, reason: str, timestamp: Optional[int] = None
    ) -> InterventionTicket:
        """Close a ticket without a fix and persist the updated document."""
        ticket = self.tracker.ticket(ticket_id)
        ticket.close_wont_fix(
            reason, self.next_timestamp() if timestamp is None else timestamp
        )
        self._persist(ticket)
        return ticket

    def _persist(self, ticket: InterventionTicket) -> None:
        self._namespace.put(
            f"{self.KEY_PREFIX}{ticket.ticket_id}", ticket.to_dict()
        )


__all__ = ["InterventionStore", "new_intervention_tracker"]
