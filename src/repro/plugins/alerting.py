"""Regression alerting: ``campaign_finished`` → tickets + events.

The paper's longitudinal promise is that the system *reacts* when an
environment evolution breaks an experiment.  This plugin closes that loop:
on every ``campaign_finished`` it runs the history
:class:`~repro.history.regressions.RegressionDetector` over the ledger
(which the system-level history recorder has just updated — observer order
is pinned), emits one ``regression_detected`` event per validated→broken
cell, and opens a persisted :class:`~repro.plugins.interventions.InterventionStore`
ticket naming the suspected evolution event.

Opt-in via ``CampaignSpec(plugins=("regression-alerts",))`` or
``campaign --plugin regression-alerts``: the ``interventions`` namespace
is only ever written when the plugin is requested, so default campaigns
stay byte-identical to the pre-plugin storage layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.history.regressions import RegressionDetector, regression_event_payload
from repro.plugins.interventions import InterventionStore
from repro.scheduler.lifecycle import (
    EVENT_CAMPAIGN_FINISHED,
    EVENT_REGRESSION_DETECTED,
    EventContext,
    LifecycleEvent,
    LifecycleObserver,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.intervention import InterventionTicket
    from repro.core.spsystem import SPSystem


#: Default re-open window (seconds on the installation's logical clock): a
#: cell whose ticket was resolved less than 30 days before the regression
#: recurs re-opens that ticket instead of opening a duplicate.
DEFAULT_REOPEN_WINDOW_SECONDS = 30 * 24 * 3600


class RegressionAlertPlugin(LifecycleObserver):
    """Turns ledger regressions into events and persisted tickets."""

    name = "regression-alerts"
    events = frozenset({EVENT_CAMPAIGN_FINISHED})

    def __init__(
        self,
        system: "SPSystem",
        reopen_window: int = DEFAULT_REOPEN_WINDOW_SECONDS,
    ) -> None:
        self.system = system
        self.store = InterventionStore(system.storage)
        self.reopen_window = reopen_window
        #: Tickets opened by this plugin instance (one submission's worth).
        self.opened: List["InterventionTicket"] = []

    def handle(self, event: LifecycleEvent, context: EventContext) -> None:
        ledger = self.system.history
        if ledger is None:
            # Nothing to detect against: the campaign did not record
            # history and no ledger was mounted.
            return
        for finding in RegressionDetector(ledger).regressions():
            context.registry.emit(
                EVENT_REGRESSION_DETECTED,
                campaign_id=event.campaign_id,
                payload=regression_event_payload(finding),
                subjects={"finding": finding},
            )
            ticket = self.store.open_from_finding(
                finding,
                timestamp=self.system.clock.now,
                reopen_window=self.reopen_window,
            )
            if ticket is not None:
                self.opened.append(ticket)


__all__ = ["RegressionAlertPlugin"]
