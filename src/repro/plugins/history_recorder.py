"""History ingestion as a lifecycle plugin.

This used to be ``SPSystem._ingest_campaign_history``, called inline from
``submit``; it now rides the lifecycle bus so that history recording is
just one observer among many.  The behaviour is bit-identical to the old
inline call: the ``record_history`` tri-state is honoured (``None`` = auto:
record exactly when the system already carries a ledger), ingestion is
idempotent per run ID, and the cache-provenance classification
(uncached/warm/cold) is unchanged.

The plugin also owns evolution recording: a
``replace_configuration(configuration, event=...)`` emits
``evolution_recorded`` and this observer lands the event on the ledger —
but only when a ledger exists, mirroring the manual
``system.history.record_evolution`` calls it replaces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.scheduler.lifecycle import (
    EVENT_CAMPAIGN_FINISHED,
    EVENT_EVOLUTION_RECORDED,
    EventContext,
    LifecycleEvent,
    LifecycleObserver,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spsystem import CampaignHandle, SPSystem
    from repro.scheduler.campaign import CampaignResult


class HistoryRecorderPlugin(LifecycleObserver):
    """Ingests completed campaigns and evolution events into the ledger.

    Registered system-wide (first, before any per-submission plugins), so
    observers added later — e.g. the regression alerter — always see the
    campaign *after* its cells have landed on the ledger.
    """

    name = "history-recorder"
    events = frozenset({EVENT_CAMPAIGN_FINISHED, EVENT_EVOLUTION_RECORDED})

    def __init__(self, system: "SPSystem") -> None:
        self.system = system

    def handle(self, event: LifecycleEvent, context: EventContext) -> None:
        if event.name == EVENT_EVOLUTION_RECORDED:
            self._record_evolution(context)
        else:
            self._ingest_campaign(context)

    def _record_evolution(self, context: EventContext) -> None:
        environment_event = context.subjects.get("event")
        if environment_event is None or self.system.history is None:
            return
        self.system.history.record_evolution(
            environment_event, self.system.clock.now
        )

    def _ingest_campaign(self, context: EventContext) -> int:
        """Ingest every cell of a completed campaign into the ledger.

        Idempotent per run ID, so replays over inherited state never
        duplicate events.  Returns the number of newly ingested events.
        """
        handle: "CampaignHandle" = context.subjects["handle"]  # type: ignore[assignment]
        campaign: "CampaignResult" = context.subjects["campaign"]  # type: ignore[assignment]
        spec = handle.spec
        record = (
            spec.record_history
            if spec.record_history is not None
            else self.system.history is not None
        )
        if not record:
            return 0
        ledger = self.system.enable_history()
        statistics = campaign.cache_statistics
        if campaign.spec is not None and not campaign.spec.use_cache:
            provenance = "uncached"
        elif statistics.hits > 0:
            provenance = "warm"
        else:
            provenance = "cold"
        ingested = 0
        telemetry = self.system.telemetry
        with telemetry.tracer.span(
            "ledger_ingest", category="ledger", cells=len(campaign.cells)
        ):
            for cell in campaign.cells:
                event = ledger.ingest_cycle(
                    cell.result,
                    configuration=self.system.configuration(cell.configuration_key),
                    campaign_id=handle.campaign_id,
                    backend=campaign.backend,
                    cache_provenance=provenance,
                )
                if event is not None:
                    ingested += 1
        telemetry.metrics.increment("ledger_events_total", amount=ingested)
        return ingested


__all__ = ["HistoryRecorderPlugin"]
