"""System-coupled lifecycle plugins and the named-plugin registry.

:mod:`repro.scheduler.lifecycle` is the generic bus (it knows nothing of
the system it observes); this package holds the plugins that *do* touch
the system — history ingestion, regression alerting, persistent
intervention tickets.  :data:`CAMPAIGN_PLUGINS` maps the replayable names
a :class:`~repro.scheduler.spec.CampaignSpec` may carry in its ``plugins``
field to observer factories taking the owning
:class:`~repro.core.spsystem.SPSystem`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro._common import SchedulingError
from repro.plugins.alerting import RegressionAlertPlugin
from repro.plugins.history_recorder import HistoryRecorderPlugin
from repro.plugins.interventions import InterventionStore, new_intervention_tracker
from repro.scheduler.lifecycle import LifecycleObserver

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spsystem import SPSystem

#: Spec-addressable plugin name -> factory(system).  Names travel inside
#: serialised campaign specs, so renaming one breaks replayability — add,
#: never rename.
CAMPAIGN_PLUGINS: Dict[str, Callable[["SPSystem"], LifecycleObserver]] = {
    RegressionAlertPlugin.name: RegressionAlertPlugin,
}


def campaign_plugin(name: str, system: "SPSystem") -> LifecycleObserver:
    """Instantiate the named spec plugin for *system*."""
    try:
        factory = CAMPAIGN_PLUGINS[name]
    except KeyError:
        known = ", ".join(sorted(CAMPAIGN_PLUGINS))
        raise SchedulingError(
            f"unknown campaign plugin {name!r} (known: {known})"
        ) from None
    return factory(system)


__all__ = [
    "CAMPAIGN_PLUGINS",
    "HistoryRecorderPlugin",
    "InterventionStore",
    "RegressionAlertPlugin",
    "campaign_plugin",
    "new_intervention_tracker",
]
